"""E3 -- PIM with 3 iterations vs output queueing with k=16.

Paper (section 3): "Simulation studies show that, for a 16x16 switch and
a variety of cell arrival patterns, random-access input buffers plus
parallel iterative matching yield throughput and latency nearly as good
as that of output queueing with k = 16 and unbounded buffer capacity.
Thus its performance is close to the maximum attainable in the absence
of advance knowledge of traffic demands."
"""

import random

from repro.analysis.experiments import ExperimentReport
from repro.analysis.tables import Table
from repro.constants import AN2_PIM_ITERATIONS
from repro.core.matching.pim import ParallelIterativeMatcher
from repro.switch.fabric import OutputQueueFabric, VoqFabric, run_fabric
from repro.traffic.arrivals import BernoulliUniform, BurstyOnOff, Hotspot

N = 16
SLOTS = 6_000
WARMUP = 1_000


def measure(fabric, traffic):
    metrics = run_fabric(fabric, traffic, SLOTS, warmup_slots=WARMUP)
    latency = metrics.latency
    return (
        metrics.utilization(N),
        latency.mean if latency.count else 0.0,
    )


def run_experiment():
    patterns = {
        "uniform 0.8": lambda s: BernoulliUniform(N, 0.8, random.Random(s)),
        "uniform 0.95": lambda s: BernoulliUniform(N, 0.95, random.Random(s)),
        "bursty 0.7": lambda s: BurstyOnOff(N, 0.7, 16.0, random.Random(s)),
        "hotspot 0.6": lambda s: Hotspot(
            N, 0.6, hot_output=0, hot_fraction=0.25, rng=random.Random(s)
        ),
    }
    rows = {}
    for name, factory in patterns.items():
        pim = VoqFabric(
            N, ParallelIterativeMatcher(N, AN2_PIM_ITERATIONS, random.Random(9))
        )
        pim_tp, pim_lat = measure(pim, factory(100))
        outq = OutputQueueFabric(N)  # k = 16, unbounded
        outq_tp, outq_lat = measure(outq, factory(100))
        rows[name] = (pim_tp, pim_lat, outq_tp, outq_lat)
    return rows


def test_e3_pim_vs_output_queueing(benchmark, report_sink):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    report = ExperimentReport(
        "E3", "PIM (3 iterations) vs output queueing (k=16, unbounded)"
    )
    table = Table(
        [
            "pattern",
            "PIM tput",
            "PIM latency",
            "OutQ tput",
            "OutQ latency",
        ]
    )
    for name, (pim_tp, pim_lat, outq_tp, outq_lat) in rows.items():
        table.add_row(name, pim_tp, pim_lat, outq_tp, outq_lat)
    report.add_table(table)

    throughput_close = all(
        outq_tp - pim_tp <= 0.03 for pim_tp, _, outq_tp, _ in rows.values()
    )
    report.check(
        "throughput within 3% of output queueing",
        "nearly as good, all patterns",
        "yes" if throughput_close else "no",
        holds=throughput_close,
    )
    # Latency "nearly as good": same order of magnitude away from
    # saturation; compare the sub-saturation patterns.
    calm = ["uniform 0.8", "bursty 0.7", "hotspot 0.6"]
    latency_ratio = max(
        (rows[name][1] + 1.0) / (rows[name][3] + 1.0) for name in calm
    )
    report.check(
        "latency ratio below saturation",
        "small constant factor",
        f"max x{latency_ratio:.2f}",
        holds=latency_ratio < 5.0,
    )
    report_sink(report)
    assert report.all_hold
