"""E1 -- Head-of-line blocking: FIFO's 58% ceiling vs random-access buffers.

Paper (section 3): "Karol et al. have shown that head-of-line blocking
limits switch throughput to 58% of each link, when the destinations of
incoming cells are uniformly distributed among all outputs", and AN2's
random-access input buffers plus PIM avoid it.

This bench sweeps offered load on a saturating 16x16 switch and prints
the delivered throughput for FIFO input queueing vs PIM; the crossover
signature is FIFO saturating near 0.58-0.60 while PIM tracks the load
until ~0.97.
"""

import random

from repro.analysis.experiments import ExperimentReport
from repro.analysis.tables import Table
from repro.constants import AN2_PIM_ITERATIONS
from repro.core.matching.fifo import FifoScheduler
from repro.core.matching.pim import ParallelIterativeMatcher
from repro.switch.fabric import FifoFabric, VoqFabric, run_fabric
from repro.traffic.arrivals import BernoulliUniform

N = 16
SLOTS = 6_000
WARMUP = 1_000
LOADS = [0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0]


def throughput(fabric_factory, load, seed):
    fabric = fabric_factory(seed)
    traffic = BernoulliUniform(N, load, random.Random(seed + 1000))
    metrics = run_fabric(fabric, traffic, SLOTS, warmup_slots=WARMUP)
    return metrics.utilization(N)


def run_sweep():
    fifo_factory = lambda seed: FifoFabric(N, FifoScheduler(N, random.Random(seed)))
    pim_factory = lambda seed: VoqFabric(
        N, ParallelIterativeMatcher(N, AN2_PIM_ITERATIONS, random.Random(seed))
    )
    rows = []
    for load in LOADS:
        rows.append(
            (
                load,
                throughput(fifo_factory, load, seed=1),
                throughput(pim_factory, load, seed=2),
            )
        )
    return rows


def test_e1_hol_blocking(benchmark, report_sink):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    report = ExperimentReport(
        "E1", "FIFO head-of-line blocking vs PIM (16x16, uniform arrivals)"
    )
    table = Table(["offered load", "FIFO throughput", "PIM-3 throughput"])
    for load, fifo_tp, pim_tp in rows:
        table.add_row(load, fifo_tp, pim_tp)
    report.add_table(table)

    fifo_saturated = rows[-1][1]
    pim_saturated = rows[-1][2]
    report.check(
        "FIFO saturation throughput",
        "~0.58 (0.59-0.63 at N=16)",
        f"{fifo_saturated:.3f}",
        holds=0.55 <= fifo_saturated <= 0.65,
    )
    report.check(
        "PIM-3 saturation throughput",
        "> 0.9 (near output queueing)",
        f"{pim_saturated:.3f}",
        holds=pim_saturated > 0.9,
    )
    # Below the FIFO ceiling both organisations carry the offered load.
    low_load_gap = abs(rows[0][1] - rows[0][2])
    report.check(
        "equal at low load (0.4)",
        "difference ~ 0",
        f"{low_load_gap:.3f}",
        holds=low_load_gap < 0.02,
    )
    report_sink(report)
    assert report.all_hold
