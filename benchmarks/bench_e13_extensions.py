"""E13 -- The section-2 extensions: circuit paging and local reroute.

Paper (section 2):

- paging: "Switch software could 'page out' a circuit by releasing its
  buffers, removing it from the routing table, and notifying the
  downstream switch...  If further cells... subsequently arrived, it
  could be 'paged in' by generating a setup cell to recreate the
  circuit" -- we measure the buffer memory reclaimed and the transparent
  page-in;
- local reroute: "to drop cells only when the path of their virtual
  circuit goes through a failed link...  the virtual circuit can be
  rerouted by sending a new circuit setup cell from the point where the
  path was broken" -- we verify the selectivity.
"""

from repro._types import host_id, switch_id
from repro.analysis.experiments import ExperimentReport
from repro.analysis.tables import Table
from repro.core.routing.paging import PagingDaemon
from repro.core.routing.reroute import installed_path
from repro.net.host import HostConfig
from repro.net.network import Network
from repro.net.packet import Packet
from repro.net.topology import Topology
from repro.switch.switch import SwitchConfig


def paging_experiment():
    topo = Topology.line(3)
    topo.add_host(0)
    topo.add_host(1)
    topo.connect("h0", "s0", port_a=0, bps=622_000_000)
    topo.connect("h1", "s2", port_a=0, bps=622_000_000)
    net = Network(
        topo,
        seed=61,
        switch_config=SwitchConfig(
            frame_slots=32,
            enable_paging=True,
            paging_idle_us=4_000.0,
            boot_reconfig_delay_us=2_000.0,
            ping_interval_us=800.0,
            ack_timeout_us=300.0,
        ),
        host_config=HostConfig(frame_slots=32),
    )
    net.start()
    net.run_until_converged(timeout_us=500_000)

    # Many circuits, only one stays active.
    circuits = [net.setup_circuit("h0", "h1") for _ in range(12)]
    for circuit in circuits:
        net.host("h0").send_packet(
            circuit.vc,
            Packet(source=host_id(0), destination=host_id(1), size=96),
        )
    net.run(30_000)

    def pinned_buffers():
        return sum(
            d.allocation
            for s in net.switches.values()
            for c in s.cards
            for d in c.downstream.values()
        )

    buffers_before = pinned_buffers()
    daemons = [
        PagingDaemon(s, idle_threshold_us=5_000.0, scan_interval_us=3_000.0)
        for s in net.switches.values()
    ]
    for daemon in daemons:
        daemon.start()
    net.run(40_000)
    buffers_after = pinned_buffers()
    paged_out = sum(s.stats.page_outs for s in net.switches.values())

    # A paged circuit transparently pages back in on new traffic.
    delivered_before = len(net.host("h1").delivered)
    revived = circuits[0]
    net.host("h0").send_packet(
        revived.vc,
        Packet(source=host_id(0), destination=host_id(1), size=96),
    )
    net.run(60_000)
    page_ins = sum(s.stats.page_ins for s in net.switches.values())
    delivered_after = len(net.host("h1").delivered)
    return (
        buffers_before,
        buffers_after,
        paged_out,
        page_ins,
        delivered_after - delivered_before,
    )


def reroute_experiment():
    topo = Topology()
    for i in range(4):
        topo.add_switch(i)
    topo.connect("s0", "s1")
    topo.connect("s1", "s3")
    topo.connect("s0", "s2")
    topo.connect("s2", "s3")
    topo.add_host(0)
    topo.add_host(1)
    topo.connect("h0", "s0", port_a=0, bps=622_000_000)
    topo.connect("h1", "s3", port_a=0, bps=622_000_000)
    net = Network(
        topo,
        seed=62,
        switch_config=SwitchConfig(
            frame_slots=32,
            enable_local_reroute=True,
            boot_reconfig_delay_us=2_000.0,
            ping_interval_us=800.0,
            ack_timeout_us=300.0,
        ),
        host_config=HostConfig(frame_slots=32),
    )
    net.start()
    net.run_until_converged(timeout_us=500_000)
    circuit = net.setup_circuit("h0", "h1")
    mid = installed_path(net, circuit.vc, host_id(0))[2]
    other = switch_id(2) if mid == switch_id(1) else switch_id(1)

    net.fail_link("s0", str(mid))
    net.run_until(
        lambda: net.switch("s0").stats.reroutes >= 1, timeout_us=100_000
    )
    net.run(30_000)
    new_path = installed_path(net, circuit.vc, host_id(0))
    net.host("h0").send_packet(
        circuit.vc,
        Packet(source=host_id(0), destination=host_id(1), size=480),
    )
    net.run(100_000)
    return (
        str(mid),
        str(other),
        [str(n) for n in new_path],
        len(net.host("h1").delivered),
        net.switch("s0").stats.reroutes,
        net.switch("s0").stats.broken_circuits,
    )


def run_experiment():
    return paging_experiment(), reroute_experiment()


def test_e13_paging_and_local_reroute(benchmark, report_sink):
    paging, reroute = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    buffers_before, buffers_after, paged_out, page_ins, revived_delivered = paging
    old_mid, new_mid, new_path, delivered, reroutes, broken = reroute

    report = ExperimentReport("E13", "circuit paging and local reroute")
    table = Table(["metric", "value"])
    table.add_row("buffer cells pinned before paging", buffers_before)
    table.add_row("buffer cells pinned after paging", buffers_after)
    table.add_row("circuits paged out", paged_out)
    table.add_row("page-ins on fresh traffic", page_ins)
    table.add_row("rerouted path", " -> ".join(new_path))
    report.add_table(table)

    report.check(
        "paging reclaims idle-circuit buffers",
        "pinned memory shrinks",
        f"{buffers_before} -> {buffers_after} cells",
        holds=buffers_after < buffers_before * 0.5,
    )
    report.check(
        "page-in is transparent",
        "new cells recreate the circuit and deliver",
        f"{page_ins} page-ins, {revived_delivered} packet delivered",
        holds=page_ins >= 1 and revived_delivered == 1,
    )
    report.check(
        "local reroute bypasses the failed link",
        f"path moves off {old_mid} onto {new_mid}",
        " -> ".join(new_path),
        holds=new_mid in new_path and old_mid not in new_path,
    )
    report.check(
        "service restored after reroute",
        "packet delivered on the new path (a circuit may be counted "
        "broken transiently if the old up*/down* tree forbade the detour)",
        f"{delivered} delivered, {reroutes} reroutes, {broken} transient",
        holds=delivered == 1 and reroutes >= 1,
    )
    report_sink(report)
    assert report.all_hold
