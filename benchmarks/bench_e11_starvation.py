"""E11 -- Starvation: maximum matching starves, PIM's randomness does not.

Paper (section 3): "maximum matching can lead to starvation.  For
example, suppose input 1 consistently has cells for outputs 2 and 3, and
input 4 consistently has cells for output 3.  The maximum match always
pairs input 1 with output 2 and input 4 with output 3, and the virtual
circuit [from input 1 to output 3] will be starved.  In contrast, the
randomness in parallel iterative matching protects against starvation."

(The paper's sentence names "input 1 with output 2" as starved; from its
own premise the starved circuit is input 1 -> output 3 -- the one the
unique maximum matching never serves.  We reproduce the phenomenon.)
"""

import random

from repro.analysis.experiments import ExperimentReport
from repro.analysis.stats import jain_fairness
from repro.analysis.tables import Table
from repro.core.matching.islip import IslipMatcher
from repro.core.matching.maximum import MaximumMatcher
from repro.core.matching.pim import ParallelIterativeMatcher
from repro.switch.fabric import VoqFabric, run_fabric
from repro.traffic.arrivals import StarvationPattern

N = 16
SLOTS = 4_000
FLOWS = [(1, 2), (1, 3), (4, 3)]


def service_counts(scheduler):
    # AN2-style per-VC buffers: each circuit keeps its own (bounded)
    # queue, so a backlogged circuit cannot crowd a sibling out of the
    # buffer pool -- the *scheduler* alone decides who gets served.
    fabric = VoqFabric(N, scheduler, per_vc_capacity=64)
    metrics = run_fabric(fabric, StarvationPattern(N), SLOTS)
    return {flow: metrics.delivered_per_pair.get(flow, 0) for flow in FLOWS}


def run_experiment():
    return {
        "maximum matching": service_counts(MaximumMatcher(N)),
        "PIM (3 iterations)": service_counts(
            ParallelIterativeMatcher(N, 3, random.Random(8))
        ),
        "iSLIP (3 iterations)": service_counts(IslipMatcher(N, 3)),
    }


def test_e11_starvation(benchmark, report_sink):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    report = ExperimentReport(
        "E11", "the paper's starvation pattern (1->{2,3}, 4->{3})"
    )
    table = Table(
        ["scheduler", "1->2 served", "1->3 served", "4->3 served", "fairness"]
    )
    for name, counts in results.items():
        table.add_row(
            name,
            counts[(1, 2)],
            counts[(1, 3)],
            counts[(4, 3)],
            jain_fairness([float(counts[f]) for f in FLOWS]),
        )
    report.add_table(table)

    maximum = results["maximum matching"]
    report.check(
        "maximum matching starves 1->3",
        "0 cells served (buffer fills, then stays starved)",
        f"{maximum[(1, 3)]} cells in {SLOTS} slots",
        holds=maximum[(1, 3)] <= 64,  # at most the buffer drain
    )
    pim = results["PIM (3 iterations)"]
    minimum_share = min(pim.values()) / SLOTS
    report.check(
        "PIM serves every circuit",
        "randomness prevents starvation",
        f"min service share {minimum_share:.2f} of slots",
        holds=min(pim.values()) > SLOTS * 0.2,
    )
    pim_fair = jain_fairness([float(pim[f]) for f in FLOWS])
    max_fair = jain_fairness([float(maximum[f]) for f in FLOWS])
    report.check(
        "PIM fairness (Jain) vs maximum matching",
        "strictly better (the paper claims protection, not equality)",
        f"{pim_fair:.3f} vs {max_fair:.3f}",
        holds=pim_fair > max_fair + 0.05,
    )
    islip = results["iSLIP (3 iterations)"]
    report.check(
        "iSLIP ablation",
        "round-robin also starvation-free",
        f"min served {min(islip.values())}",
        holds=min(islip.values()) > SLOTS * 0.2,
    )
    report_sink(report)
    assert report.all_hold
