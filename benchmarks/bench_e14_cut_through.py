"""E14 -- Cut-through latency and best-effort delay under load.

Paper (sections 1-2, 4):

- "In the absence of contention, the first bit of a packet leaves the
  switch 2 microseconds after it arrives";
- "a best-effort cell on a lightly loaded network should experience only
  a 2 microsecond delay at each switch.  In a heavily loaded network,
  however, queueing delays could make best-effort cell latency
  arbitrarily large."

In the event-driven switch the constant hardware delay shows up as the
per-switch transit floor; in the slotted fabric the light-load delay is
sub-slot while saturation makes it grow without bound (we show an order
of magnitude over three load steps).
"""

import random

from repro._types import host_id
from repro.analysis.experiments import ExperimentReport
from repro.analysis.tables import Table
from repro.core.matching.pim import ParallelIterativeMatcher
from repro.net.host import HostConfig
from repro.net.network import Network
from repro.net.packet import Packet
from repro.net.topology import Topology
from repro.switch.fabric import VoqFabric, run_fabric
from repro.switch.switch import SwitchConfig
from repro.traffic.arrivals import BernoulliUniform

N = 16


def single_cell_transit():
    """One cell, one switch, nothing else: the per-switch transit time."""
    topo = Topology.line(1)
    topo.add_host(0)
    topo.add_host(1)
    topo.connect("h0", "s0", port_a=0, bps=622_000_000, length_km=0.0)
    topo.connect("h1", "s0", port_a=0, bps=622_000_000, length_km=0.0)
    net = Network(
        topo,
        seed=71,
        switch_config=SwitchConfig(
            frame_slots=32,
            boot_reconfig_delay_us=2_000.0,
            ping_interval_us=800.0,
            ack_timeout_us=300.0,
        ),
        host_config=HostConfig(frame_slots=32),
    )
    net.start()
    net.run_until_converged(timeout_us=500_000)
    circuit = net.setup_circuit("h0", "h1")
    net.host("h0").send_packet(
        circuit.vc,
        Packet(source=host_id(0), destination=host_id(1), size=40),
    )
    net.run_until(
        lambda: net.host("h1").delivered, timeout_us=50_000,
        check_interval_us=5.0,
    )
    packet = net.host("h1").delivered[0]
    # Subtract the two link serializations (0 km, so no propagation):
    link_time = 2 * net.link_between("h0", "s0").cell_time_us
    return packet.latency - link_time


def load_sweep():
    rows = []
    for load in (0.1, 0.5, 0.9, 0.99):
        fabric = VoqFabric(N, ParallelIterativeMatcher(N, 3, random.Random(3)))
        metrics = run_fabric(
            fabric,
            BernoulliUniform(N, load, random.Random(4)),
            12_000,
            warmup_slots=2_000,
        )
        rows.append(
            (load, metrics.latency.mean, metrics.latency.percentile(99))
        )
    return rows


def run_experiment():
    return single_cell_transit(), load_sweep()


def test_e14_cut_through(benchmark, report_sink):
    transit_us, rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    report = ExperimentReport(
        "E14", "cut-through transit and best-effort delay vs load"
    )
    table = Table(["offered load", "mean wait (slots)", "p99 wait (slots)"])
    for load, mean_wait, p99 in rows:
        table.add_row(load, mean_wait, p99)
    report.add_table(table)

    report.check(
        "uncontended switch transit",
        "~2 us (one cut-through)",
        f"{transit_us:.2f} us",
        holds=transit_us < 4.0,
    )
    report.check(
        "light-load fabric wait",
        "well under a microsecond of queueing (sub-slot)",
        f"{rows[0][1]:.3f} slots at load 0.1",
        holds=rows[0][1] < 1.0,
    )
    growth = rows[-1][1] / max(rows[0][1], 1e-9)
    report.check(
        "heavy-load queueing grows without bound",
        "orders of magnitude over the sweep",
        f"x{growth:.0f} from load 0.1 to 0.99",
        holds=growth > 100,
    )
    report_sink(report)
    assert report.all_hold
