"""E9 -- Credit flow control: losslessness, sizing, and resync.

Paper (section 5):

- credits make best-effort traffic lossless ("use flow-control... that
  inhibits message transmission when the buffer is in danger of
  overflowing"),
- full-rate transmission needs "enough credits to cover a round-trip on
  the link" -- fewer credits cap throughput at allocation/RTT,
- "a lost message can only cause reduced performance.  Performance can
  be regained by... a resynchronization of credits".
"""

from repro._types import host_id
from repro.analysis.experiments import ExperimentReport
from repro.analysis.tables import Table
from repro.core.flowcontrol.sizing import round_trip_cells
from repro.net.host import HostConfig
from repro.net.network import Network
from repro.net.packet import Packet
from repro.net.topology import Topology
from repro.switch.switch import SwitchConfig

LINK_KM = 2.0  # long enough that the round trip spans several cells
TRANSFER_CELLS = 600


def build_net(credit_allocation, seed=50, resync_us=0.0):
    topo = Topology.line(2)
    topo.add_host(0)
    topo.add_host(1)
    topo.connect("h0", "s0", port_a=0, bps=622_000_000, length_km=LINK_KM)
    topo.connect("h1", "s1", port_a=0, bps=622_000_000, length_km=LINK_KM)
    # The inter-switch trunk is the long link under test.
    net = Network(
        topo,
        seed=seed,
        switch_config=SwitchConfig(
            frame_slots=32,
            credit_allocation=credit_allocation,
            resync_interval_us=resync_us,
            boot_reconfig_delay_us=2_000.0,
            ping_interval_us=800.0,
            ack_timeout_us=300.0,
        ),
        host_config=HostConfig(
            frame_slots=32, credit_allocation=credit_allocation
        ),
    )
    # Make the trunk long.
    net.link_between("s0", "s1").latency_us = LINK_KM * 5.0
    net.start()
    net.run_until_converged(timeout_us=500_000)
    return net


def transfer_throughput(net):
    circuit = net.setup_circuit("h0", "h1")
    h0 = net.host("h0")
    t0 = net.now
    h0.send_packet(
        circuit.vc,
        Packet(
            source=host_id(0), destination=host_id(1), size=48 * TRANSFER_CELLS
        ),
    )
    net.run_until(
        lambda: net.host("h1").cells_received >= TRANSFER_CELLS,
        timeout_us=5_000_000,
        check_interval_us=10.0,
    )
    elapsed = net.now - t0
    cell_rate = TRANSFER_CELLS / elapsed  # cells per us
    link = net.link_between("s0", "s1")
    full_rate = 1.0 / link.cell_time_us
    return cell_rate / full_rate, net


def run_experiment():
    needed = round_trip_cells(LINK_KM)
    sweep = []
    for allocation in (
        max(1, needed // 8),
        max(1, needed // 4),
        max(1, needed // 2),
        needed,
        needed + 4,
    ):
        efficiency, net = transfer_throughput(build_net(allocation))
        overflows = sum(
            d.overflows
            for s in net.switches.values()
            for c in s.cards
            for d in c.downstream.values()
        )
        sweep.append((allocation, efficiency, overflows, net.total_cells_dropped()))
    return needed, sweep


def test_e9_credit_sizing(benchmark, report_sink):
    needed, sweep = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    report = ExperimentReport(
        "E9", f"credit flow control on a {LINK_KM} km trunk"
    )
    table = Table(
        [
            "credits/VC",
            "throughput vs full rate",
            "buffer overflows",
            "cells dropped",
        ]
    )
    for allocation, efficiency, overflows, dropped in sweep:
        table.add_row(allocation, efficiency, overflows, dropped)
    report.add_table(table)

    starved = sweep[0]
    report.check(
        f"starved window ({starved[0]} credits, RTT needs {needed})",
        f"~ {starved[0]}/{needed} of full rate",
        f"{starved[1]:.3f}",
        holds=starved[1] < 0.6,
    )
    sized = next(s for s in sweep if s[0] == needed)
    report.check(
        f"round-trip window ({needed} credits)",
        "~ full link rate",
        f"{sized[1]:.3f}",
        holds=sized[1] > 0.85,
    )
    monotone = all(
        a[1] <= b[1] + 0.02 for a, b in zip(sweep, sweep[1:])
    )
    report.check(
        "throughput monotone in credits",
        "increasing to saturation",
        "yes" if monotone else "no",
        holds=monotone,
    )
    lossless = all(s[2] == 0 and s[3] == 0 for s in sweep)
    report.check(
        "losslessness",
        "no overflow, no drop, any window",
        "yes" if lossless else "VIOLATED",
        holds=lossless,
    )
    report_sink(report)
    assert report.all_hold


def test_e9_resync_recovers_performance(benchmark, report_sink):
    def run():
        net = build_net(credit_allocation=8, seed=51, resync_us=3_000.0)
        circuit = net.setup_circuit("h0", "h1")
        h0 = net.host("h0")
        h0.send_packet(
            circuit.vc,
            Packet(source=host_id(0), destination=host_id(1), size=480),
        )
        net.run(50_000)
        # Lose credits at the switch-side sender.
        s0 = net.switch("s0")
        card = next(c for c in s0.cards if circuit.vc in c.upstream)
        upstream = card.upstream[circuit.vc]
        upstream.balance -= 5
        degraded = upstream.balance
        net.run_until(
            lambda: upstream.balance == upstream.allocation,
            timeout_us=200_000,
        )
        recovered = sum(r.credits_recovered for r in card.resync.values())
        return degraded, upstream.allocation, recovered

    degraded, allocation, recovered = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    report = ExperimentReport("E9b", "credit resynchronization")
    report.check(
        "lost credits shrink the window",
        "reduced performance only",
        f"balance {degraded}/{allocation} after loss",
        holds=degraded < allocation,
    )
    report.check(
        "periodic resync restores it",
        "balance returns to allocation",
        f"recovered {recovered} credits",
        holds=recovered >= 5,
    )
    report_sink(report)
    assert report.all_hold
