"""Ablation A4 -- reconfiguration scaling and the linear-tree worst case.

Paper (section 2): "The tree produced in this way is a propagation-order
spanning tree.  In the worst case, the tree could be linear, and there
would be no parallelism during execution of the algorithm.  It has been
observed in practice, however, that the first invitation a switch
receives usually comes from one of the set of neighbors closest to the
root."

We time complete reconfigurations on a line (the forced worst case: the
propagation tree *is* linear) against grids and random redundant graphs
of the same size, on the in-memory bus so only protocol time counts.
Expected shape: line completion time grows linearly with N, the others
with diameter (~sqrt N or log N); message counts grow with edges.
"""

import random

from repro._types import switch_id
from repro.analysis.experiments import ExperimentReport
from repro.analysis.tables import Table
from repro.net.topology import Topology
from tests.core.reconfig.test_algorithm import FakeBus

SIZES = (9, 16, 25, 36)


def run_one(topo, trigger_num=0, delay_us=10.0):
    bus = FakeBus(topo, delay_us=delay_us)
    bus.agents[switch_id(trigger_num)].trigger()
    bus.sim.run(until=1_000_000.0)
    assert bus.all_done_same_view()
    completion = max(
        a.completed_at for a in bus.agents.values() if a.completed_at
    )
    messages = sum(a.stats.messages_sent for a in bus.agents.values())
    depth = max(a.tree_depth for a in bus.agents.values())
    return completion, messages, depth


def run_experiment():
    rows = []
    for n in SIZES:
        side = int(n ** 0.5)
        line_t, line_m, line_d = run_one(Topology.line(n))
        grid_t, grid_m, grid_d = run_one(Topology.grid(side, side))
        rnd_t, rnd_m, rnd_d = run_one(
            Topology.random_connected(n, extra_edges=n, rng=random.Random(n))
        )
        rows.append(
            (n, (line_t, line_d), (grid_t, grid_d), (rnd_t, rnd_d),
             (line_m, grid_m, rnd_m))
        )
    return rows


def test_a4_reconfiguration_scaling(benchmark, report_sink):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    report = ExperimentReport(
        "A4", "reconfiguration time vs topology shape (protocol time only)"
    )
    table = Table(
        [
            "switches",
            "line: time us / depth",
            "grid: time us / depth",
            "random: time us / depth",
        ]
    )
    for n, line, grid, rnd, _messages in rows:
        table.add_row(
            n,
            f"{line[0]:.0f} / {line[1]}",
            f"{grid[0]:.0f} / {grid[1]}",
            f"{rnd[0]:.0f} / {rnd[1]}",
        )
    report.add_table(table)

    # Line: depth is exactly N-1 (no parallelism), and time grows
    # linearly; grid depth is ~2*sqrt(N).
    line_depths_linear = all(row[1][1] == row[0] - 1 for row in rows)
    report.check(
        "line is the linear worst case",
        "tree depth N-1, no parallelism",
        "depth == N-1 at every size" if line_depths_linear else "no",
        holds=line_depths_linear,
    )
    first, last = rows[0], rows[-1]
    line_growth = last[1][0] / first[1][0]
    grid_growth = last[2][0] / first[2][0]
    size_growth = last[0] / first[0]
    report.check(
        "line time grows ~linearly with N",
        f"~x{size_growth:.0f} over the sweep",
        f"x{line_growth:.1f}",
        holds=line_growth > 0.6 * size_growth,
    )
    report.check(
        "redundant topologies parallelize",
        "grid time grows ~sqrt(N), well below line",
        f"grid x{grid_growth:.1f} vs line x{line_growth:.1f}",
        holds=grid_growth < 0.6 * line_growth,
    )
    last_messages = rows[-1][4]
    report.check(
        "message cost modest",
        "O(edges) messages per reconfiguration",
        f"line/grid/random @36 switches: {last_messages}",
        holds=all(m < 36 * 36 for m in last_messages),
    )
    report_sink(report)
    assert report.all_hold
