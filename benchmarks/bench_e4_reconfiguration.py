"""E4 -- Automatic reconfiguration: speed, agreement, and tree shape.

Paper claims bundled here:

- section 1: SRC's >100-workstation AN1 LAN reconfigures "in less than
  200 milliseconds" after pulling the plug on an arbitrary switch;
- section 2: at the end of a reconfiguration "each switch knows the full
  topology";
- section 2: the propagation-order tree "is usually very close to a
  breadth-first tree, yielding high parallelism".
"""

import random
from collections import deque

from repro._types import switch_id
from repro.analysis.experiments import ExperimentReport
from repro.analysis.tables import Table
from repro.constants import RECONFIGURATION_BUDGET_US
from repro.net.network import Network
from repro.net.topology import Topology
from repro.switch.switch import SwitchConfig


def bench_config():
    return SwitchConfig(
        frame_slots=32,
        control_delay_us=20.0,
        ping_interval_us=1_000.0,
        ack_timeout_us=400.0,
        miss_threshold=3,
        skeptic_base_wait_us=5_000.0,
        boot_reconfig_delay_us=3_500.0,
    )


def bfs_depths(view, root):
    adjacency = {}
    for (na, _), (nb, _) in view.edges:
        if na.is_switch and nb.is_switch:
            adjacency.setdefault(na, []).append(nb)
            adjacency.setdefault(nb, []).append(na)
    depth = {root: 0}
    queue = deque([root])
    while queue:
        node = queue.popleft()
        for neighbor in adjacency.get(node, []):
            if neighbor not in depth:
                depth[neighbor] = depth[node] + 1
                queue.append(neighbor)
    return depth


def run_experiment():
    rows = []
    tree_ratios = []
    for n_switches in (8, 16, 24, 32):
        topo = Topology.random_connected(
            n_switches,
            extra_edges=n_switches,
            rng=random.Random(n_switches),
        )
        net = Network(topo, seed=n_switches, switch_config=bench_config())
        net.start()
        net.run_until(net.fully_reconfigured, timeout_us=1_000_000)

        # Crash a random interior switch, time the recovery.
        victim = switch_id(random.Random(n_switches + 1).randrange(n_switches))
        t0 = net.now
        net.crash_switch(victim)
        net.run_until(net.fully_reconfigured, timeout_us=1_000_000)
        recovery_us = net.now - t0

        messages = sum(
            s.reconfig.stats.messages_sent for s in net.switches.values()
        )
        agreement = net.converged_view() == net.expected_view_for(
            net.main_component_switches()
        )

        root = net.reconfig_root()
        depths = bfs_depths(net.converged_view(), root)
        max_bfs = max(depths.values()) if depths else 0
        max_tree = max(
            net.switches[s].reconfig.tree_depth
            for s in net.main_component_switches()
        )
        tree_ratios.append((max_tree + 1) / (max_bfs + 1))
        rows.append(
            (n_switches, recovery_us, messages, agreement, max_tree, max_bfs)
        )
    return rows, tree_ratios


def test_e4_reconfiguration(benchmark, report_sink):
    rows, tree_ratios = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    report = ExperimentReport(
        "E4", "reconfiguration after pulling the plug on a random switch"
    )
    table = Table(
        [
            "switches",
            "recovery (us)",
            "messages (cumulative)",
            "views == reality",
            "tree depth",
            "BFS depth",
        ]
    )
    for n, recovery, messages, agreement, tree_depth, bfs_depth in rows:
        table.add_row(n, recovery, messages, agreement, tree_depth, bfs_depth)
    report.add_table(table)

    worst_recovery = max(recovery for _, recovery, _, _, _, _ in rows)
    report.check(
        "recovery time (up to 32 switches)",
        "< 200 ms",
        f"{worst_recovery/1000:.1f} ms",
        holds=worst_recovery < RECONFIGURATION_BUDGET_US,
    )
    report.check(
        "every switch learns the full topology",
        "all agree with reality",
        "yes" if all(r[3] for r in rows) else "no",
        holds=all(r[3] for r in rows),
    )
    worst_ratio = max(tree_ratios)
    report.check(
        "propagation tree near breadth-first",
        "depth ~ BFS depth",
        f"worst depth ratio x{worst_ratio:.2f}",
        holds=worst_ratio <= 2.0,
    )
    report_sink(report)
    assert report.all_hold
