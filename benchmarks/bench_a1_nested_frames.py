"""Ablation A1 -- Nested frames: the section-4 flexibility extension.

Paper (section 4): "Large frames are attractive because they provide a
fine-grained allocation unit, but small frames yield better latency and
jitter bounds.  Nested frames could provide the benefits of both.  For
example, allocation could be based on 1024-slot frames, with cell
re-ordering restricted to 128-slot units."

We run the same CBR stream through the same switch chain with (a) a flat
frame schedule and (b) nested subframes (1/8 of the frame), and compare
worst-case latency and jitter.  Allocation granularity stays one cell
per *outer* frame in both cases -- the extension's selling point.
"""

from repro.analysis.experiments import ExperimentReport
from repro.analysis.tables import Table
from repro.constants import FAST_CELL_TIME_US
from repro.net.host import HostConfig
from repro.net.network import Network
from repro.net.topology import Topology
from repro.switch.switch import SwitchConfig

FRAME_SLOTS = 128
SUBFRAME_SLOTS = 16
CELLS_PER_FRAME = 8
STREAM_CELLS = 120


def run_variant(nested: bool, seed: int):
    topo = Topology.line(3)
    topo.add_host(0)
    topo.add_host(1)
    topo.connect("h0", "s0", port_a=0, bps=622_000_000)
    topo.connect("h1", "s2", port_a=0, bps=622_000_000)
    net = Network(
        topo,
        seed=seed,
        switch_config=SwitchConfig(
            frame_slots=FRAME_SLOTS,
            nested_subframe_slots=SUBFRAME_SLOTS if nested else None,
            boot_reconfig_delay_us=2_000.0,
            ping_interval_us=800.0,
            ack_timeout_us=300.0,
        ),
        host_config=HostConfig(frame_slots=FRAME_SLOTS),
    )
    net.start()
    net.run_until_converged(timeout_us=500_000)
    circuit, reservation = net.reserve_bandwidth("h0", "h1", CELLS_PER_FRAME)
    net.run(2_000)
    net.host("h0").send_raw_cells(circuit.vc, STREAM_CELLS)
    net.run_until(
        lambda: net.host("h1").cells_received >= STREAM_CELLS,
        timeout_us=5_000_000,
    )
    latency = net.host("h1").cell_latency[circuit.vc]
    return (
        reservation.path_length,
        latency.mean,
        latency.maximum,
        latency.maximum - latency.minimum,
    )


def run_experiment():
    flat = run_variant(nested=False, seed=81)
    nested = run_variant(nested=True, seed=81)
    return flat, nested


def test_a1_nested_frames(benchmark, report_sink):
    flat, nested = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    frame_time = FRAME_SLOTS * FAST_CELL_TIME_US
    subframe_time = SUBFRAME_SLOTS * FAST_CELL_TIME_US

    report = ExperimentReport(
        "A1",
        "nested frames: 128-slot allocation, 16-slot re-ordering units",
    )
    table = Table(
        ["schedule", "path p", "mean latency (us)", "max", "jitter"]
    )
    table.add_row("flat frame", flat[0], flat[1], flat[2], flat[3])
    table.add_row("nested (1/8)", nested[0], nested[1], nested[2], nested[3])
    report.add_table(table)

    report.check(
        "nested frames cut worst-case latency",
        f"toward p*2*subframe ({flat[0]*2*subframe_time:.0f} us) from "
        f"p*2*frame ({flat[0]*2*frame_time:.0f} us)",
        f"{flat[2]:.1f} -> {nested[2]:.1f} us",
        holds=nested[2] < flat[2] * 0.6,
    )
    report.check(
        "nested frames cut jitter",
        "roughly by the nesting factor",
        f"{flat[3]:.1f} -> {nested[3]:.1f} us",
        holds=nested[3] < flat[3] * 0.6,
    )
    report.check(
        "allocation granularity preserved",
        "still cells per 128-slot frame",
        f"{CELLS_PER_FRAME} cells/frame in both",
        holds=True,
    )
    report_sink(report)
    assert report.all_hold
