"""Ablation A3 -- why AN2 runs exactly 3 PIM iterations.

Paper (section 3): "Because of its time limit, AN2 uses just three
iterations of parallel iterative matching."  Each iteration costs wire
time inside the half-microsecond slot, so more iterations only pay off
if they buy throughput.  This ablation sweeps 1-5 iterations under
saturated uniform traffic and shows the knee at 3: the first iteration
leaves real throughput on the table, the fourth and fifth buy almost
nothing.
"""

import random

from repro.analysis.experiments import ExperimentReport
from repro.analysis.tables import Table
from repro.core.matching.pim import ParallelIterativeMatcher
from repro.switch.fabric import VoqFabric, run_fabric
from repro.traffic.arrivals import BernoulliUniform

N = 16
SLOTS = 6_000
WARMUP = 1_000


def run_experiment():
    rows = []
    for iterations in (1, 2, 3, 4, 5):
        fabric = VoqFabric(
            N,
            ParallelIterativeMatcher(N, iterations, random.Random(7)),
        )
        metrics = run_fabric(
            fabric,
            BernoulliUniform(N, 1.0, random.Random(8)),
            SLOTS,
            warmup_slots=WARMUP,
        )
        rows.append(
            (
                iterations,
                metrics.utilization(N),
                metrics.latency.mean,
            )
        )
    return rows


def test_a3_pim_iteration_knee(benchmark, report_sink):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    report = ExperimentReport(
        "A3", "PIM iteration count vs throughput (16x16, saturated uniform)"
    )
    table = Table(["iterations", "throughput", "mean latency (slots)"])
    for iterations, throughput, latency in rows:
        table.add_row(iterations, throughput, latency)
    report.add_table(table)

    by_iter = {r[0]: r[1] for r in rows}
    report.check(
        "1 iteration leaves throughput on the table",
        "noticeably below 3 iterations",
        f"{by_iter[1]:.3f} vs {by_iter[3]:.3f}",
        holds=by_iter[3] - by_iter[1] > 0.04,
    )
    report.check(
        "3 iterations near the plateau",
        "within 2% of 5 iterations (vs 33% gained from 1 to 3)",
        f"{by_iter[3]:.3f} vs {by_iter[5]:.3f}",
        holds=by_iter[5] - by_iter[3] < 0.02,
    )
    monotone = all(a[1] <= b[1] + 0.005 for a, b in zip(rows, rows[1:]))
    report.check(
        "throughput monotone in iterations",
        "each round can only add matches",
        "yes" if monotone else "no",
        holds=monotone,
    )
    report_sink(report)
    assert report.all_hold
