"""Ablation A5 -- AN1 vs AN2 service disruption during reconfiguration.

Paper (section 2): "In AN1, all switches must collaborate in a
reconfiguration, and all packets in transit are dropped when a
reconfiguration begins.  This is acceptable in small networks, but is
unattractive for networks containing thousands of switches.
Fortunately, it should often be possible to restrict participation to
switches 'near' the failing component, and to drop cells only when the
path of their virtual circuit goes through a failed link."

We run the same scenario on both generations: steady traffic between two
hosts whose path does NOT touch the failed link, then fail a bystander
link mid-stream.

- AN1: the reconfiguration flushes every FIFO in the network -- the
  bystander flow loses packets;
- AN2 (per-VC buffers + credits + local reroute): the bystander flow is
  untouched -- zero loss.
"""

from repro._types import host_id, switch_id
from repro.analysis.experiments import ExperimentReport
from repro.analysis.tables import Table
from repro.net.host import HostConfig
from repro.net.network import Network
from repro.net.packet import Packet
from repro.net.topology import Topology
from repro.switch.an1 import An1Config, An1Network
from repro.switch.switch import SwitchConfig

N_PACKETS = 30
PACKET_BYTES = 1500


def contended_line():
    """h0,h2 -> s0 - s1 - s2 <- h1,h3 with a spur link s1-s3 to fail."""
    topo = Topology.line(3)
    topo.add_switch(3)
    topo.connect("s1", "s3")  # the bystander link we will fail
    topo.add_host(0)
    topo.add_host(1)
    topo.add_host(2)
    topo.connect("h0", "s0", port_a=0)
    topo.connect("h2", "s0", port_a=0)
    topo.connect("h1", "s2", port_a=0)
    return topo


def an1_run():
    topo = contended_line()
    net = An1Network(
        topo,
        seed=111,
        config=An1Config(
            ping_interval_us=500.0,
            ack_timeout_us=200.0,
            miss_threshold=2,
            skeptic_base_wait_us=2_000.0,
            boot_reconfig_delay_us=1_500.0,
        ),
    )
    net.start()
    net.run_until_converged(timeout_us=500_000)
    for sender in (host_id(0), host_id(2)):
        for _ in range(N_PACKETS // 2):
            net.hosts[sender].send_packet(
                Packet(source=sender, destination=host_id(1), size=PACKET_BYTES)
            )
    # Fail the bystander spur while queues are standing.
    net.run(1_000.0)
    for edge, link in net.links.items():
        (na, _), (nb, _) = edge
        if {na, nb} == {switch_id(1), switch_id(3)}:
            link.fail()
    net.run(1_000_000)
    delivered = len(net.hosts[host_id(1)].delivered)
    dropped = net.total_dropped_on_reconfig()
    return delivered, dropped


def an2_run():
    topo = contended_line()
    net = Network(
        topo,
        seed=112,
        switch_config=SwitchConfig(
            frame_slots=32,
            enable_local_reroute=True,
            ping_interval_us=500.0,
            ack_timeout_us=200.0,
            miss_threshold=2,
            skeptic_base_wait_us=2_000.0,
            boot_reconfig_delay_us=1_500.0,
        ),
        host_config=HostConfig(frame_slots=32),
    )
    net.start()
    net.run_until_converged(timeout_us=500_000)
    circuits = {
        host_id(0): net.setup_circuit("h0", "h1"),
        host_id(2): net.setup_circuit("h2", "h1"),
    }
    for sender, circuit in circuits.items():
        for _ in range(N_PACKETS // 2):
            net.host(str(sender)).send_packet(
                circuit.vc,
                Packet(source=sender, destination=host_id(1), size=PACKET_BYTES),
            )
    net.run(1_000.0)
    net.fail_link("s1", "s3")
    net.run(1_000_000)
    delivered = len(net.host("h1").delivered)
    reassembly_errors = net.host("h1").reassembly_errors
    return delivered, reassembly_errors


def run_experiment():
    return an1_run(), an2_run()


def test_a5_an1_vs_an2_disruption(benchmark, report_sink):
    (an1_delivered, an1_dropped), (an2_delivered, an2_errors) = (
        benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    )

    report = ExperimentReport(
        "A5", "bystander-link failure: AN1 flushes, AN2 does not"
    )
    table = Table(
        ["generation", "packets delivered", "packets lost to reconfig"]
    )
    table.add_row("AN1 (FIFO, drop on reconfig)", an1_delivered, an1_dropped)
    table.add_row(
        "AN2 (per-VC buffers, credits)", an2_delivered,
        N_PACKETS - an2_delivered,
    )
    report.add_table(table)

    report.check(
        "AN1 drops in-transit packets",
        "reconfiguration flushes FIFOs network-wide",
        f"{an1_dropped} packets flushed, {an1_delivered}/{N_PACKETS} delivered",
        holds=an1_dropped > 0 and an1_delivered < N_PACKETS,
    )
    report.check(
        "AN2 bystander flow unaffected",
        "drop cells only on circuits crossing the failed link",
        f"{an2_delivered}/{N_PACKETS} delivered, "
        f"{an2_errors} reassembly errors",
        holds=an2_delivered == N_PACKETS and an2_errors == 0,
    )
    report_sink(report)
    assert report.all_hold
