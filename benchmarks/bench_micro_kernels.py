"""Micro-benchmarks of the hot algorithmic kernels.

These are conventional pytest-benchmark timings (many rounds) of the
three algorithms that run per cell slot or per reservation in the real
hardware -- useful for tracking simulator performance regressions and
for appreciating the paper's hardware constraints: PIM must finish in
half a microsecond of *wire time*; our software model is measured here
in wall-clock terms.
"""

import random

from repro.core.guaranteed.frames import FrameSchedule
from repro.core.guaranteed.slepian_duguid import insert_cell, remove_cell
from repro.core.matching.maximum import hopcroft_karp
from repro.core.matching.pim import ParallelIterativeMatcher

N = 16


def test_pim_match_slot(benchmark):
    """One 16x16 PIM decision (3 iterations) on dense requests."""
    rng = random.Random(1)
    matcher = ParallelIterativeMatcher(N, 3, random.Random(2))
    requests = [
        {o for o in range(N) if rng.random() < 0.5} for _ in range(N)
    ]
    result = benchmark(matcher.match, requests)
    assert result.size > 0


def test_hopcroft_karp_slot(benchmark):
    """The maximum-matching comparison point on the same density."""
    rng = random.Random(3)
    requests = [
        {o for o in range(N) if rng.random() < 0.5} for _ in range(N)
    ]
    matching = benchmark(hopcroft_karp, N, requests)
    assert matching


def test_slepian_duguid_insert_remove(benchmark):
    """Insert + remove one reservation into a busy 16x1024 schedule."""
    rng = random.Random(4)
    schedule = FrameSchedule(N, 1024)
    for _ in range(2000):
        i, o = rng.randrange(N), rng.randrange(N)
        if schedule.admits(i, o):
            insert_cell(schedule, i, o)

    def insert_and_remove():
        insert_cell(schedule, 3, 7)
        remove_cell(schedule, 3, 7)

    benchmark(insert_and_remove)
    schedule.check_consistent()
