"""E6 -- The skeptic: flapping links must not melt the network.

Paper (section 2): "an intermittent fault [must] not cause a link to make
frequent transitions between the two states, for each transition would
trigger a reconfiguration, and too-frequent reconfigurations can keep
the network from providing service...  If failures recur, the skeptic
requires an increasingly long period of correct operation before the
link is considered to be recovered."

We flap one link at increasing rates and compare the number of published
verdict transitions (hence reconfigurations) with and without the
skeptic's escalation (max_level=0 disables it).
"""

import random

from repro.analysis.experiments import ExperimentReport
from repro.analysis.tables import Table
from repro.core.reconfig.skeptic import Skeptic

FLAPS = 40


def drive_flaps(skeptic: Skeptic, up_time_us: float, down_time_us: float) -> int:
    """Simulate FLAPS fail/recover cycles against a skeptic; returns the
    number of published verdict changes."""
    now = 0.0
    for _ in range(FLAPS):
        skeptic.report_failure(now)
        skeptic.tick(now)
        now += down_time_us
        skeptic.report_recovery(now)
        # The link then behaves until the next flap; give the skeptic
        # ticks to finish probation if the quiet period allows.
        quiet_end = now + up_time_us
        step = max(up_time_us / 8.0, 1.0)
        while now < quiet_end:
            now = min(now + step, quiet_end)
            skeptic.tick(now)
    return len(skeptic.verdict_changes)


def run_experiment():
    rows = []
    for up_time_ms in (2.0, 8.0, 32.0, 128.0):
        # Skepticism decays after 50 ms of good behaviour, so a link that
        # fails rarely is eventually trusted quickly again, while a
        # rapidly flapping one never earns decay (it is never WORKING
        # long enough) and stays pinned dead.
        with_skeptic = Skeptic(
            base_wait_us=10_000.0, max_level=8, decay_interval_us=50_000.0
        )
        naive = Skeptic(
            base_wait_us=10_000.0, max_level=0, decay_interval_us=50_000.0
        )
        changes_with = drive_flaps(with_skeptic, up_time_ms * 1000, 500.0)
        changes_naive = drive_flaps(naive, up_time_ms * 1000, 500.0)
        rows.append((up_time_ms, changes_naive, changes_with))
    return rows


def test_e6_skeptic_suppresses_flapping(benchmark, report_sink):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    report = ExperimentReport(
        "E6", "skeptic hold-downs vs a flapping link (40 flaps)"
    )
    table = Table(
        [
            "quiet period between flaps (ms)",
            "verdict changes, fixed 10ms hold-down",
            "verdict changes, escalating skeptic",
        ]
    )
    for up_ms, naive_changes, skeptic_changes in rows:
        table.add_row(up_ms, naive_changes, skeptic_changes)
    report.add_table(table)

    fast_flaps = rows[0]
    report.check(
        "rapid flapping (2 ms quiet)",
        "escalation pins the link dead (1 transition)",
        f"{fast_flaps[2]} transitions",
        holds=fast_flaps[2] <= 3,
    )
    suppression = all(
        skeptic_changes <= naive_changes for _, naive_changes, skeptic_changes in rows
    )
    report.check(
        "escalation never worse than fixed hold-down",
        "fewer or equal transitions at every rate",
        "yes" if suppression else "no",
        holds=suppression,
    )
    slow = rows[-1]
    report.check(
        "slow flapping (128 ms quiet)",
        "link still allowed to recover",
        f"{slow[2]} transitions over 40 flaps",
        holds=slow[2] >= 10,
    )
    report_sink(report)
    assert report.all_hold
