"""E8 -- Guaranteed traffic: the p*(2f+l) bound, jitter, and buffers.

Paper (section 4):

- "the time for a guaranteed cell to reach its destination is at most
  p x (2f + l)" for synchronous *and* asynchronous networks;
- "the latency and jitter of a guaranteed cell is less than 1
  millisecond per switch" (sub-half-millisecond frames);
- buffers: 2 frames per line card in a synchronized network, about 4
  frames for a typical asynchronous LAN.

We run CBR streams over switch chains of increasing length, with zero
clock drift (synchronous) and with +/-200 ppm drift (asynchronous), and
compare measured worst-case latency, jitter, and peak guaranteed-buffer
occupancy against the bounds.
"""

from repro.analysis.experiments import ExperimentReport
from repro.analysis.tables import Table
from repro.constants import FAST_CELL_TIME_US
from repro.core.guaranteed.latency import (
    buffer_requirement_cells,
    guaranteed_latency_bound_us,
    per_switch_jitter_bound_us,
)
from repro.net.host import HostConfig
from repro.net.network import Network
from repro.net.topology import Topology
from repro.switch.switch import SwitchConfig

FRAME_SLOTS = 32
CELLS_PER_FRAME = 8
STREAM_CELLS = 150


def run_chain(path_switches: int, drift_ppm: float, seed: int):
    topo = Topology.line(path_switches)
    topo.add_host(0)
    topo.add_host(1)
    topo.connect("h0", "s0", port_a=0, bps=622_000_000)
    topo.connect("h1", f"s{path_switches-1}", port_a=0, bps=622_000_000)
    net = Network(
        topo,
        seed=seed,
        switch_config=SwitchConfig(
            frame_slots=FRAME_SLOTS,
            boot_reconfig_delay_us=2_000.0,
            ping_interval_us=800.0,
            ack_timeout_us=300.0,
        ),
        host_config=HostConfig(frame_slots=FRAME_SLOTS),
        drift_ppm=drift_ppm,
    )
    net.start()
    net.run_until_converged(timeout_us=500_000)
    circuit, reservation = net.reserve_bandwidth("h0", "h1", CELLS_PER_FRAME)
    net.run(2_000)
    net.host("h0").send_raw_cells(circuit.vc, STREAM_CELLS)

    peak_buffers = 0

    def sample_buffers():
        nonlocal peak_buffers
        occupancy = max(
            sum(card.guaranteed_queues.occupancy for card in s.cards)
            for s in net.switches.values()
        )
        peak_buffers = max(peak_buffers, occupancy)
        if net.host("h1").cells_received < STREAM_CELLS:
            net.sim.schedule(50.0, sample_buffers)

    net.sim.schedule(0.0, sample_buffers)
    net.run_until(
        lambda: net.host("h1").cells_received >= STREAM_CELLS,
        timeout_us=3_000_000,
    )
    latency = net.host("h1").cell_latency[circuit.vc]
    jitter = latency.maximum - latency.minimum
    return (
        reservation.path_length,
        latency.maximum,
        jitter,
        peak_buffers,
    )


def run_experiment():
    frame_time = FRAME_SLOTS * FAST_CELL_TIME_US
    rows = []
    for drift_label, drift in (("sync (0 ppm)", 0.0), ("async (200 ppm)", 200.0)):
        for chain in (2, 4, 6):
            path, max_latency, jitter, peak = run_chain(
                chain, drift, seed=chain * 10 + int(drift)
            )
            bound = guaranteed_latency_bound_us(path, frame_time, 1.0)
            rows.append(
                (drift_label, path, max_latency, bound, jitter, peak)
            )
    return rows, frame_time


def test_e8_guaranteed_latency(benchmark, report_sink):
    rows, frame_time = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    report = ExperimentReport(
        "E8", "guaranteed latency/jitter/buffers vs section-4 bounds"
    )
    table = Table(
        [
            "clocking",
            "path p",
            "max latency (us)",
            "bound p*(2f+l)",
            "jitter (us)",
            "peak guaranteed buffer (cells)",
        ]
    )
    for drift_label, path, max_latency, bound, jitter, peak in rows:
        table.add_row(drift_label, path, max_latency, bound, jitter, peak)
    report.add_table(table)

    within_bound = all(row[2] <= row[3] for row in rows)
    report.check(
        "latency bound p*(2f+l)",
        "holds, sync and async",
        "yes" if within_bound else "VIOLATED",
        holds=within_bound,
    )
    jitter_bound = per_switch_jitter_bound_us(frame_time)
    jitter_ok = all(row[4] <= row[1] * jitter_bound for row in rows)
    report.check(
        "jitter < 2f per switch",
        f"<= p x {jitter_bound:.0f} us",
        "yes" if jitter_ok else "VIOLATED",
        holds=jitter_ok,
    )
    sync_needed = buffer_requirement_cells(FRAME_SLOTS, synchronous=True)
    async_needed = buffer_requirement_cells(FRAME_SLOTS, synchronous=False)
    peak_sync = max(row[5] for row in rows if row[0].startswith("sync"))
    peak_async = max(row[5] for row in rows if row[0].startswith("async"))
    report.check(
        "buffers, synchronous",
        f"<= 2 frames ({sync_needed} cells)",
        f"peak {peak_sync}",
        holds=peak_sync <= sync_needed,
    )
    report.check(
        "buffers, asynchronous",
        f"<= 4 frames ({async_needed} cells)",
        f"peak {peak_async}",
        holds=peak_async <= async_needed,
    )
    report_sink(report)
    assert report.all_hold
