"""E7 -- Slepian-Duguid scheduling: Figures 2 and 3, and the N-step bound.

Paper (section 4):

- Figure 2's reservation matrix and schedule, and Figure 3's worked
  insertion of a 4->3 reservation, which "terminates after three steps";
- "a schedule can be found for any set of reservations that does not
  over-commit the bandwidth of any link";
- "the time required is linear in the size of the switch and independent
  of frame size...  this will require at most N steps...  adding a
  reservation for k cells takes at most N x k steps".
"""

import random

from repro.analysis.experiments import ExperimentReport
from repro.analysis.tables import Table
from repro.core.guaranteed.frames import FrameSchedule, figure3_initial_schedule
from repro.core.guaranteed.slepian_duguid import build_schedule, insert_cell


def random_admissible_matrix(n, slots, rng):
    matrix = [[0] * n for _ in range(n)]
    rows, cols = [0] * n, [0] * n
    for _ in range(40 * n):
        i, o = rng.randrange(n), rng.randrange(n)
        k = min(rng.randint(1, 3), slots - rows[i], slots - cols[o])
        if k > 0:
            matrix[i][o] += k
            rows[i] += k
            cols[o] += k
    return matrix


def figure3_trace():
    schedule = figure3_initial_schedule()
    return insert_cell(schedule, 3, 2), schedule


def step_statistics(n, slots, trials, rng):
    """Insert cells into random near-full schedules; track step counts.

    The base matrix is generated against ``slots - 2`` so every row and
    column keeps headroom for the insertions being measured.
    """
    max_steps, total_steps, inserts = 0, 0, 0
    for _ in range(trials):
        matrix = random_admissible_matrix(n, slots - 2, rng)
        schedule, _ = build_schedule(n, slots, matrix)
        for _ in range(3 * n):
            i, o = rng.randrange(n), rng.randrange(n)
            if not schedule.admits(i, o):
                continue
            trace = insert_cell(schedule, i, o)
            max_steps = max(max_steps, trace.steps)
            total_steps += trace.steps
            inserts += 1
        schedule.check_consistent()
    return max_steps, total_steps / max(1, inserts), inserts


def frame_size_independence(n, rng):
    """The same demand shape inserted into growing frames: steps must not
    grow with frame size."""
    worsts = []
    for slots in (16, 64, 256, 1024):
        schedule = FrameSchedule(n, slots)
        # Fill to ~90% so insertions need displacement chains.
        matrix = random_admissible_matrix(n, int(slots * 0.9), rng)
        schedule, _ = build_schedule(n, slots, matrix)
        worst = 0
        for _ in range(20):
            i, o = rng.randrange(n), rng.randrange(n)
            if schedule.admits(i, o):
                worst = max(worst, insert_cell(schedule, i, o).steps)
        worsts.append((slots, worst))
    return worsts


def run_experiment():
    trace, final = figure3_trace()
    stats = {
        n: step_statistics(n, 2 * n, trials=8, rng=random.Random(n))
        for n in (4, 8, 16, 32)
    }
    independence = frame_size_independence(8, random.Random(99))
    return trace, final, stats, independence


def test_e7_slepian_duguid(benchmark, report_sink):
    trace, final, stats, independence = benchmark.pedantic(
        run_experiment, rounds=1, iterations=1
    )

    report = ExperimentReport("E7", "Slepian-Duguid schedule insertion")
    report.check(
        "Figure 3: add 4->3 to the Figure 2 slots",
        "terminates after 3 steps",
        f"{trace.steps} steps, {trace.displacements} moves",
        holds=trace.steps == 3,
    )
    figure_final = {
        0: {0: 1, 1: 0, 2: 3, 3: 2},
        1: {0: 2, 2: 1, 3: 0},
    }
    exact = all(
        final.slot_assignments(slot) == expected
        for slot, expected in figure_final.items()
    )
    report.check(
        "Figure 3 final arrangement",
        "matches the paper exactly",
        "yes" if exact else "no",
        holds=exact,
    )

    table = Table(
        ["N", "insertions", "mean steps", "max steps", "bound N+1"]
    )
    bound_ok = True
    for n, (max_steps, mean_steps, inserts) in stats.items():
        table.add_row(n, inserts, mean_steps, max_steps, n + 1)
        bound_ok &= max_steps <= n + 1
    report.add_table(table)
    report.check(
        "steps per cell",
        "at most N (+1 initial placement)",
        "within bound at N=4..32" if bound_ok else "EXCEEDED",
        holds=bound_ok,
    )

    ind_table = Table(["frame slots", "worst steps (N=8)"])
    for slots, worst in independence:
        ind_table.add_row(slots, worst)
    report.add_table(ind_table)
    worst_small = independence[0][1]
    worst_large = independence[-1][1]
    report.check(
        "independent of frame size",
        "steps do not grow with slots",
        f"{worst_small} steps @16 slots vs {worst_large} @1024",
        holds=worst_large <= 8 + 1,
    )
    report_sink(report)
    assert report.all_hold
