"""Benchmark harness plumbing.

Each benchmark builds an :class:`repro.analysis.experiments.
ExperimentReport` (paper claim vs measured value) and registers it here;
the reports are printed in the terminal summary so that
``pytest benchmarks/ --benchmark-only | tee bench_output.txt`` captures
the full paper-vs-measured tables alongside pytest-benchmark's timings.
"""

from __future__ import annotations

from typing import List

import pytest

from repro.analysis.experiments import ExperimentReport

_reports: List[ExperimentReport] = []


@pytest.fixture
def report_sink():
    """Benchmarks call ``report_sink(report)`` with their finished report."""

    def sink(report: ExperimentReport) -> ExperimentReport:
        _reports.append(report)
        return report

    return sink


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _reports:
        return
    terminalreporter.write_sep("=", "AN2 reproduction: paper vs measured")
    for report in sorted(_reports, key=lambda r: r.experiment_id):
        terminalreporter.write_line("")
        for line in report.render().splitlines():
            terminalreporter.write_line(line)
