"""Fixed speed workloads for the persistent performance baseline.

Unlike the ``bench_e*``/``bench_a*`` experiment benchmarks (which
reproduce the paper's *results*), this module defines a small set of
frozen *wall-clock* workloads whose timings are committed to
``BENCH_speed.json`` at the repo root by ``tools/run_speed_bench.py``.
Future PRs run ``make bench-speed`` to detect hot-loop regressions
against that baseline.

Design rules for every workload here:

- **Frozen inputs.**  Traffic traces are pre-generated from fixed seeds
  outside the timed region, so the timer sees only the fabric/scheduler
  hot loop (or the event-kernel loop), never the traffic generator.
- **Warmed state.**  Fabric workloads run untimed warmup slots first so
  the timed region measures the saturated steady state, where every
  experiment spends its time.
- **Work checksums.**  Each workload returns a deterministic checksum of
  the work done (cells delivered, events executed).  The runner refuses
  to compare timings whose checksums differ -- a speedup that changes
  the work done is a bug, not an optimisation.

The headline pair is ``voq_pim_reference_n16`` vs ``voq_pim_bitmask_n16``:
the same saturated uniform-load VoqFabric workload (N=16, 20k timed
slots) driven through the reference set-based PIM and through the
bitmask fast path (:mod:`repro.core.matching.bitmask`).  Their ratio is
reported as ``pim_bitmask_speedup_n16``.
"""

from __future__ import annotations

import hashlib
import random
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

from repro.core.matching.bitmask import BitmaskFifoScheduler, BitmaskPim
from repro.core.matching.fifo import FifoScheduler
from repro.core.matching.pim import ParallelIterativeMatcher
from repro.sim.kernel import Simulator
from repro.switch.fabric import FifoFabric, VoqFabric

TRACE_SEED = 42
MATCHER_SEED = 1


@dataclass(frozen=True)
class SpeedResult:
    """One timed execution of a workload."""

    seconds: float
    checksum: int


@dataclass(frozen=True)
class SpeedWorkload:
    """A frozen, repeatable timed workload.

    ``quick`` marks the cheap workloads the CI smoke job times on every
    push (``run_speed_bench.py --quick``); the full set runs locally via
    ``make bench-speed``.

    ``min_cpus`` is the CPU count the workload's *timing* assumes
    (parallel-speedup workloads need real cores to beat their serial
    twin).  On hosts with fewer CPUs the runner still executes the
    workload and still enforces its checksum, but treats its timing --
    and any speedup pair built on it -- as informational rather than a
    gating comparison.
    """

    name: str
    description: str
    run: Callable[[], SpeedResult]
    quick: bool = False
    min_cpus: int = 1


def _uniform_trace(
    n_ports: int, load: float, slots: int, seed: int = TRACE_SEED
) -> List[List[Tuple[int, int]]]:
    """Bernoulli(load) arrivals per input, uniform destinations."""
    rng = random.Random(seed)
    rng_random = rng.random
    return [
        [
            (i, int(rng_random() * n_ports))
            for i in range(n_ports)
            if rng_random() < load
        ]
        for _ in range(slots)
    ]


def _run_voq(
    n_ports: int, scheduler_factory: Callable[[], object], slots: int, warmup: int
) -> SpeedResult:
    trace = _uniform_trace(n_ports, 1.0, slots + warmup)
    fabric = VoqFabric(n_ports, scheduler_factory())
    offer_batch = fabric.offer_batch
    step = fabric.step
    for slot in range(warmup):
        offer_batch(trace[slot], slot)
        step(slot)
    start = time.perf_counter()
    for slot in range(warmup, warmup + slots):
        offer_batch(trace[slot], slot)
        step(slot)
    elapsed = time.perf_counter() - start
    return SpeedResult(elapsed, fabric.metrics.cells_delivered)


def _run_fifo(
    n_ports: int, scheduler_factory: Callable[[], object], slots: int, warmup: int
) -> SpeedResult:
    trace = _uniform_trace(n_ports, 0.9, slots + warmup)
    fabric = FifoFabric(n_ports, scheduler_factory())
    step = fabric.step
    for slot in range(warmup):
        for i, o in trace[slot]:
            fabric.offer(i, o, slot)
        step(slot)
    start = time.perf_counter()
    for slot in range(warmup, warmup + slots):
        for i, o in trace[slot]:
            fabric.offer(i, o, slot)
        step(slot)
    elapsed = time.perf_counter() - start
    return SpeedResult(elapsed, fabric.metrics.cells_delivered)


def _run_kernel_storm(n_events: int, cancel_every: int) -> SpeedResult:
    """Schedule/cancel storm: the credit-timer / skeptic-hold-down shape.

    Schedules ``n_events`` timers and cancels all but every
    ``cancel_every``-th before running, so the lazy-cancel compaction and
    the O(1) ``pending()`` counter are both on the timed path.
    """
    sim = Simulator()
    executed = [0]

    def fire() -> None:
        executed[0] += 1

    rng = random.Random(TRACE_SEED)
    start = time.perf_counter()
    events = [
        sim.schedule_at(rng.random() * 1000.0, fire) for _ in range(n_events)
    ]
    for index, event in enumerate(events):
        if index % cancel_every:
            event.cancel()
        _ = sim.pending()
    sim.run()
    elapsed = time.perf_counter() - start
    checksum = executed[0] * 1_000_000 + sim.compactions
    return SpeedResult(elapsed, checksum)


def _run_voq_traced(
    n_ports: int, scheduler_factory: Callable[[], object], slots: int, warmup: int
) -> SpeedResult:
    """Same shape as :func:`_run_voq` but with a live Tracer attached.

    Measures the cost of the instrumented path (per-slot ``match.round``
    events plus VOQ activity transitions).  The checksum folds the trace
    record count in with the delivered-cell count so a change that
    silently alters what gets traced fails the comparison.
    """
    from repro.obs import Tracer

    trace = _uniform_trace(n_ports, 1.0, slots + warmup)
    tracer = Tracer()
    fabric = VoqFabric(n_ports, scheduler_factory(), tracer=tracer)
    offer_batch = fabric.offer_batch
    step = fabric.step
    for slot in range(warmup):
        offer_batch(trace[slot], slot)
        step(slot)
    tracer.clear()
    start = time.perf_counter()
    for slot in range(warmup, warmup + slots):
        offer_batch(trace[slot], slot)
        step(slot)
    elapsed = time.perf_counter() - start
    checksum = fabric.metrics.cells_delivered * 1_000_000 + len(tracer)
    return SpeedResult(elapsed, checksum)


def _run_route_queries(
    n_switches: int, rounds: int, cached: bool
) -> SpeedResult:
    """Circuit-setup-heavy routing: every ordered switch pair queried
    ``rounds`` times over one epoch's orientation.

    This is the signaling layer's shape -- each circuit setup asks the
    same RouteComputer for a path, and popular pairs repeat constantly
    within an epoch.  ``cached`` toggles the epoch-keyed path memo; the
    checksum (total path edges) must be identical either way, because
    the memo may only change how often the BFS runs.
    """
    from repro.core.routing.paths import RouteComputer
    from repro.core.routing.updown import set_path_cache_enabled
    from repro.net.topology import Topology
    from repro.sim.random import derived_stream

    topo = Topology.random_connected(
        n_switches,
        extra_edges=n_switches // 2,
        rng=derived_stream("bench/route_cache", TRACE_SEED),
    )
    view = topo.view()
    switches = view.switches()
    pairs = [(a, b) for a in switches for b in switches if a != b]
    previous = set_path_cache_enabled(cached)
    try:
        computer = RouteComputer(view, switches[0])
        switch_route = computer.switch_route
        checksum = 0
        start = time.perf_counter()
        for _ in range(rounds):
            for source, destination in pairs:
                checksum += len(switch_route(source, destination)[1])
        elapsed = time.perf_counter() - start
    finally:
        set_path_cache_enabled(previous)
    return SpeedResult(elapsed, checksum)


def _run_sweep(workers: int) -> SpeedResult:
    """The sweep engine over a small fabric grid, serial vs process pool.

    The checksum folds every task's payload digest in task order, so the
    serial and parallel workloads must produce the *same* checksum --
    that equality is the parallel-equals-serial contract, enforced by
    tests/exec and re-checked every time this baseline is compared.
    """
    from repro.exec import SweepEngine, make_tasks

    tasks = make_tasks(
        "fabric",
        {"n_ports": [8, 16], "load": [0.7, 0.95], "slots": [1_500]},
        repeats=2,
        root_seed=TRACE_SEED,
    )
    engine = SweepEngine(workers=workers)
    start = time.perf_counter()
    results = engine.run(tasks)
    elapsed = time.perf_counter() - start
    folded = hashlib.sha256()
    for result in results:
        folded.update(result.digest.encode("ascii"))
    return SpeedResult(elapsed, int.from_bytes(folded.digest()[:8], "big"))


def _run_link_trains(batch: bool, bursts: int, burst_size: int) -> SpeedResult:
    """Same-instant cell bursts over a long link: the train-forming shape.

    Each burst's cells serialize back-to-back, so the batched link
    delivers a whole burst with ~2 kernel events instead of one per
    cell.  The checksum is the delivered-cell count, identical batched
    or not.
    """
    from repro._types import parse_node_id
    from repro.net.cell import Cell
    from repro.net.link import Link
    from repro.net.node import Node

    class _Sink(Node):
        def __init__(self, sim: Simulator, name: str) -> None:
            super().__init__(sim, parse_node_id(name), 1)
            self.count = 0

        def on_cell(self, port, cell) -> None:
            self.count += 1

    sim = Simulator()
    node_a = _Sink(sim, "h0")
    node_b = _Sink(sim, "h1")
    link = Link(
        sim, node_a.port(0), node_b.port(0), length_km=2.0, batch_trains=batch
    )

    def burst() -> None:
        for _ in range(burst_size):
            link.transmit(0, Cell(vc=0))

    gap_us = 50.0
    for index in range(bursts):
        sim.schedule_at(1.0 + index * gap_us, burst)
    start = time.perf_counter()
    sim.run()
    elapsed = time.perf_counter() - start
    return SpeedResult(elapsed, node_b.count)


def _run_link_retx(guarded: bool, bursts: int, burst_size: int) -> SpeedResult:
    """Link-local retransmission guard over a deterministically noisy link.

    Same burst shape as :func:`_run_link_trains`, but every 7th cell is
    corrupted exactly once (payload-keyed, once-only, so a guarded
    resend of the same cell survives the filter).  The unguarded variant
    surfaces the corruption as plain loss; the guarded one attaches a
    :class:`~repro.solutions.link_retx.LinkRetxGuard` and recovers every
    cell via NACK/resend plus resequencing.  Their ratio is what a
    recovering link costs over a lossy one on the same wire -- the
    number the A6 solutions study leans on.  The guarded checksum folds
    the recovered count in with the delivered count so a silent change
    to the recovery path fails the comparison.
    """
    from repro._types import parse_node_id
    from repro.net.cell import Cell
    from repro.net.link import Link
    from repro.net.node import Node
    from repro.solutions.link_retx import LinkRetxGuard

    class _Sink(Node):
        def __init__(self, sim: Simulator, name: str) -> None:
            super().__init__(sim, parse_node_id(name), 1)
            self.count = 0

        def on_cell(self, port, cell) -> None:
            self.count += 1

    sim = Simulator()
    node_a = _Sink(sim, "h0")
    node_b = _Sink(sim, "h1")
    link = Link(sim, node_a.port(0), node_b.port(0), length_km=2.0)
    corrupted: set = set()

    def corrupt_once(cell: Cell) -> bool:
        tag = cell.payload
        if isinstance(tag, int) and tag % 7 == 0 and tag not in corrupted:
            corrupted.add(tag)
            return True
        return False

    link.drop_filter = corrupt_once
    guard = (
        LinkRetxGuard(link, buffer_cells=4 * burst_size) if guarded else None
    )

    tag_counter = [0]

    def burst() -> None:
        for _ in range(burst_size):
            link.transmit(0, Cell(vc=0, payload=tag_counter[0]))
            tag_counter[0] += 1

    gap_us = 60.0
    for index in range(bursts):
        sim.schedule_at(1.0 + index * gap_us, burst)
    start = time.perf_counter()
    sim.run()
    elapsed = time.perf_counter() - start
    checksum = node_b.count * 1_000_000 + (guard.recovered if guard else 0)
    return SpeedResult(elapsed, checksum)


def _run_obs_overhead(traced: bool) -> SpeedResult:
    """End-to-end network traffic, with and without full observability.

    A 2x2 grid with two dual-homed hosts boots and converges untimed;
    the timed region carries Poisson packet traffic over one circuit.
    The ``traced`` variant attaches a live :class:`~repro.obs.Tracer`
    with every category enabled (kernel instrumentation swap + journey
    contexts on every sampled cell) *after* boot, so the pair measures
    exactly what always-on diagnosis costs a hot simulation.  The
    flight recorder is attached in both variants -- it is part of the
    network's steady state by design.

    The checksum folds delivered packets with the trace record count so
    a change that silently alters what gets traced fails the comparison.
    """
    from repro.net.host import HostConfig
    from repro.net.network import Network
    from repro.net.topology import Topology
    from repro.obs import Tracer
    from repro.switch.switch import SwitchConfig
    from repro.traffic.workload import PoissonPacketWorkload

    topo = Topology.grid(2, 2)
    topo.add_host(0)
    topo.add_host(1)
    topo.connect("h0", "s0", port_a=0, bps=622_000_000)
    topo.connect("h0", "s2", port_a=1, bps=622_000_000)
    topo.connect("h1", "s3", port_a=0, bps=622_000_000)
    topo.connect("h1", "s1", port_a=1, bps=622_000_000)
    net = Network(
        topo,
        seed=TRACE_SEED,
        switch_config=SwitchConfig(
            frame_slots=32,
            control_delay_us=10.0,
            ping_interval_us=500.0,
            ack_timeout_us=200.0,
            miss_threshold=2,
            boot_reconfig_delay_us=1_500.0,
            resync_interval_us=5_000.0,
        ),
        host_config=HostConfig(
            ping_interval_us=500.0,
            ack_timeout_us=200.0,
            miss_threshold=2,
            frame_slots=32,
        ),
    )
    net.start()
    net.run_until(net.converged, timeout_us=40_000.0)
    circuit = net.setup_circuit("h0", "h1")
    tracer = Tracer() if traced else None
    if tracer is not None:
        net.sim.tracer = tracer
    workload = PoissonPacketWorkload(
        net.sim,
        net.host("h0"),
        circuit.vc,
        circuit.destination,
        mean_interval_us=150.0,
        packet_bytes=960,
        rng=net.streams.stream("bench.obs_overhead.workload"),
        duration_us=30_000.0,
    )
    workload.start()
    start = time.perf_counter()
    net.run(40_000.0)
    elapsed = time.perf_counter() - start
    delivered = len(net.host("h1").delivered)
    checksum = delivered * 1_000_000 + (len(tracer) if tracer else 0)
    return SpeedResult(elapsed, checksum)


def _run_topo_delta(k: int, n_deltas: int, incremental: bool) -> SpeedResult:
    """Single-edge reconfigurations on a k-ary fat-tree at datacenter scale.

    A ``fat_tree(k)`` fabric (k=32 -> 1280 switches, 16384 switch cables)
    and its up*/down* orientation are built untimed; the timed region
    applies ``n_deltas`` distinct single-cable-failure deltas to the
    *base* orientation, either by repairing it incrementally
    (:meth:`UpDownOrientation.apply_delta`) or by rebuilding the
    orientation of the new view from scratch -- the epoch install path's
    two strategies.  The checksum folds every result's
    ``structure_digest()``, so the incremental and rebuild workloads
    MUST produce the same checksum: the runner's checksum equality check
    doubles as the digest-exactness proof for the incremental repair.
    """
    from repro.core.routing.updown import UpDownOrientation
    from repro.net.topogen import fat_tree
    from repro.net.topology import TopologyDelta

    structured = fat_tree(k)
    view = structured.view()
    root = structured.default_root()
    base = UpDownOrientation(view, root)
    switch_edges = sorted(
        edge
        for edge in view.edges
        if edge[0][0].is_switch and edge[1][0].is_switch
    )
    rng = random.Random(TRACE_SEED)
    deltas = [
        TopologyDelta(removed=frozenset([edge]))
        for edge in rng.sample(switch_edges, n_deltas)
    ]
    repaired: List[UpDownOrientation] = []
    start = time.perf_counter()
    for delta in deltas:
        if incremental:
            repaired.append(base.apply_delta(delta))
        else:
            repaired.append(UpDownOrientation(delta.apply_to(view), root))
    elapsed = time.perf_counter() - start
    # Digesting is verification, not repair: fold it outside the timer
    # (like _run_sweep) so the pair compares the recompute hot loop only.
    folded = hashlib.sha256()
    for orientation in repaired:
        folded.update(orientation.structure_digest().encode("ascii"))
    return SpeedResult(elapsed, int.from_bytes(folded.digest()[:8], "big"))


def _fabric_bank_trace(
    n_fabrics: int, n_ports: int, load: float, slots: int
) -> List[List[List[Tuple[int, int]]]]:
    """Per-slot, per-fabric arrival lists from one frozen seed."""
    rng = random.Random(TRACE_SEED)
    rng_random = rng.random
    return [
        [
            [
                (i, int(rng_random() * n_ports))
                for i in range(n_ports)
                if rng_random() < load
            ]
            for _ in range(n_fabrics)
        ]
        for _ in range(slots)
    ]


def _fabric_bank(n_fabrics: int, n_ports: int) -> List[VoqFabric]:
    """One bitmask-PIM VoqFabric per switch, distinct seeded RNGs."""
    return [
        VoqFabric(
            n_ports,
            BitmaskPim(
                n_ports, iterations=3, rng=random.Random(MATCHER_SEED + j)
            ),
        )
        for j in range(n_fabrics)
    ]


def _bank_checksum(fabrics: List[VoqFabric]) -> int:
    """Delivered count and summed waits folded into one comparable int."""
    delivered = sum(f.metrics.cells_delivered for f in fabrics)
    waited = sum(sum(f.metrics.latency._samples) for f in fabrics)
    return delivered * 1_000_003 + waited


def _run_fabric_slots_scalar(
    n_fabrics: int, n_ports: int, slots: int, warmup: int
) -> SpeedResult:
    """Whole-fabric slot advance, per-switch scalar stepping.

    The scalar half of the ``fabric_slot_engine_speedup`` pair: every
    switch fabric is offered its arrivals (via ``offer_batch``, the
    fastest committed scalar idiom) and stepped one at a time, the way
    ``Network`` advances slots without the fastpath engine.
    """
    total = slots + warmup
    trace = _fabric_bank_trace(n_fabrics, n_ports, 1.0, total)
    fabrics = _fabric_bank(n_fabrics, n_ports)

    def advance(first: int, last: int) -> None:
        for slot in range(first, last):
            per_fabric = trace[slot]
            for j, fabric in enumerate(fabrics):
                fabric.offer_batch(per_fabric[j], slot)
            for fabric in fabrics:
                fabric.step(slot)

    advance(0, warmup)
    start = time.perf_counter()
    advance(warmup, total)
    elapsed = time.perf_counter() - start
    return SpeedResult(elapsed, _bank_checksum(fabrics))


def _run_fabric_slots_vectorized(
    n_fabrics: int, n_ports: int, slots: int, warmup: int
) -> SpeedResult:
    """Same bank of switches advanced by the stacked FabricArrayEngine.

    Identical trace, seeds, and work as
    :func:`_run_fabric_slots_scalar` -- the checksum proves it -- but
    all fabrics register into one :class:`FabricArrayEngine` and each
    slot is one vectorized pass.  With numpy present the arrivals are
    pre-split into int64 arrays (the zero-copy ``offer_arrays`` path);
    without numpy the engine's pure-Python stacked loop runs, so this
    workload degrades rather than breaking under the no-numpy job.
    """
    from repro.fastpath.backend import load_numpy
    from repro.fastpath.engine import FabricArrayEngine

    np = load_numpy()
    total = slots + warmup
    trace = _fabric_bank_trace(n_fabrics, n_ports, 1.0, total)
    if np is not None:
        trace_arrays = [
            [
                (
                    np.asarray([c[0] for c in cells], np.int64),
                    np.asarray([c[1] for c in cells], np.int64),
                )
                for cells in per_fabric
            ]
            for per_fabric in trace
        ]
    fabrics = _fabric_bank(n_fabrics, n_ports)
    engine = FabricArrayEngine(backend="auto")
    for fabric in fabrics:
        engine.register(fabric)

    def advance(first: int, last: int) -> None:
        if np is not None:
            for slot in range(first, last):
                per_fabric = trace_arrays[slot]
                for j, fabric in enumerate(fabrics):
                    ins, outs = per_fabric[j]
                    engine.offer_arrays(fabric, ins, outs, slot)
                engine.step_all(slot)
        else:
            for slot in range(first, last):
                per_fabric = trace[slot]
                for j, fabric in enumerate(fabrics):
                    engine.offer_batch(fabric, per_fabric[j], slot)
                engine.step_all(slot)
        engine.sync()

    advance(0, warmup)
    start = time.perf_counter()
    advance(warmup, total)
    elapsed = time.perf_counter() - start
    return SpeedResult(elapsed, _bank_checksum(fabrics))


def _pim_reference(n_ports: int) -> ParallelIterativeMatcher:
    return ParallelIterativeMatcher(n_ports, rng=random.Random(MATCHER_SEED))


def _pim_bitmask(n_ports: int) -> BitmaskPim:
    return BitmaskPim(n_ports, rng=random.Random(MATCHER_SEED))


# Slot counts shrink as N grows so every workload stays a few seconds at
# most; the N=16 pair keeps the issue-specified 20k timed slots.
WORKLOADS: List[SpeedWorkload] = [
    SpeedWorkload(
        "voq_pim_reference_n16",
        "VoqFabric + reference PIM, uniform load 1.0, N=16, 20k slots",
        lambda: _run_voq(16, lambda: _pim_reference(16), 20_000, 2_000),
    ),
    SpeedWorkload(
        "voq_pim_bitmask_n16",
        "VoqFabric + bitmask PIM, uniform load 1.0, N=16, 20k slots",
        lambda: _run_voq(16, lambda: _pim_bitmask(16), 20_000, 2_000),
    ),
    SpeedWorkload(
        "voq_pim_reference_n32",
        "VoqFabric + reference PIM, uniform load 1.0, N=32, 4k slots",
        lambda: _run_voq(32, lambda: _pim_reference(32), 4_000, 500),
        quick=True,
    ),
    SpeedWorkload(
        "voq_pim_bitmask_n32",
        "VoqFabric + bitmask PIM, uniform load 1.0, N=32, 4k slots",
        lambda: _run_voq(32, lambda: _pim_bitmask(32), 4_000, 500),
        quick=True,
    ),
    SpeedWorkload(
        "voq_pim_reference_n64",
        "VoqFabric + reference PIM, uniform load 1.0, N=64, 1.5k slots",
        lambda: _run_voq(64, lambda: _pim_reference(64), 1_500, 200),
    ),
    SpeedWorkload(
        "voq_pim_bitmask_n64",
        "VoqFabric + bitmask PIM, uniform load 1.0, N=64, 1.5k slots",
        lambda: _run_voq(64, lambda: _pim_bitmask(64), 1_500, 200),
    ),
    SpeedWorkload(
        "fifo_reference_n16",
        "FifoFabric + reference FIFO scheduler, load 0.9, N=16, 20k slots",
        lambda: _run_fifo(
            16,
            lambda: FifoScheduler(16, rng=random.Random(MATCHER_SEED)),
            20_000,
            2_000,
        ),
    ),
    SpeedWorkload(
        "fifo_bitmask_n16",
        "FifoFabric + bitmask FIFO scheduler, load 0.9, N=16, 20k slots",
        lambda: _run_fifo(
            16,
            lambda: BitmaskFifoScheduler(16, rng=random.Random(MATCHER_SEED)),
            20_000,
            2_000,
        ),
    ),
    SpeedWorkload(
        "voq_pim_bitmask_n16_traced",
        "VoqFabric + bitmask PIM with live Tracer, N=16, 5k slots",
        lambda: _run_voq_traced(16, lambda: _pim_bitmask(16), 5_000, 500),
    ),
    SpeedWorkload(
        "kernel_schedule_cancel_storm",
        "Simulator: 200k timers, 90% cancelled, pending() polled per cancel",
        lambda: _run_kernel_storm(200_000, 10),
    ),
    SpeedWorkload(
        "route_cache_off_n24",
        "RouteComputer: all switch pairs x40 rounds, N=24, path memo off",
        lambda: _run_route_queries(24, 40, cached=False),
        quick=True,
    ),
    SpeedWorkload(
        "route_cache_on_n24",
        "RouteComputer: all switch pairs x40 rounds, N=24, path memo on",
        lambda: _run_route_queries(24, 40, cached=True),
        quick=True,
    ),
    SpeedWorkload(
        "sweep_parallel_serial",
        "SweepEngine: 8 fabric grid tasks, in-process serial reference",
        lambda: _run_sweep(0),
    ),
    SpeedWorkload(
        "sweep_parallel_w4",
        "SweepEngine: same 8 fabric grid tasks across 4 worker processes",
        lambda: _run_sweep(4),
        min_cpus=4,
    ),
    SpeedWorkload(
        "obs_overhead_untraced",
        "Network: 2x2 grid + 2 hosts, Poisson traffic, no tracer attached",
        lambda: _run_obs_overhead(False),
        quick=True,
    ),
    SpeedWorkload(
        "obs_overhead_traced",
        "Network: same traffic with full Tracer (kernel + journey) attached",
        lambda: _run_obs_overhead(True),
        quick=True,
    ),
    SpeedWorkload(
        "link_train_unbatched",
        "Link: 1.5k bursts of 32 same-instant cells, one event per cell",
        lambda: _run_link_trains(False, 1_500, 32),
        quick=True,
    ),
    SpeedWorkload(
        "topo_rebuild_fattree_k32",
        "UpDownOrientation: 8 single-cable deltas, k=32 fat-tree (1280 sw), full rebuild each",
        lambda: _run_topo_delta(32, 8, incremental=False),
        quick=True,
    ),
    SpeedWorkload(
        "topo_incremental_fattree_k32",
        "UpDownOrientation: same 8 deltas on the same fabric, incremental apply_delta",
        lambda: _run_topo_delta(32, 8, incremental=True),
        quick=True,
    ),
    SpeedWorkload(
        "link_train_batched",
        "Link: same bursts with batch_trains, one event chain per train",
        lambda: _run_link_trains(True, 1_500, 32),
        quick=True,
    ),
    SpeedWorkload(
        "fabric_slot_scalar",
        "64 VoqFabrics (bitmask PIM N=16), per-switch scalar slot stepping",
        lambda: _run_fabric_slots_scalar(64, 16, 600, 100),
        quick=True,
    ),
    SpeedWorkload(
        "fabric_slot_vectorized",
        "Same 64 fabrics stacked into one FabricArrayEngine slot pass",
        lambda: _run_fabric_slots_vectorized(64, 16, 600, 100),
        quick=True,
    ),
    SpeedWorkload(
        "link_retx_unguarded",
        "Link: 1k bursts of 24 cells, every 7th corrupted once, plain loss",
        lambda: _run_link_retx(False, 1_000, 24),
        quick=True,
    ),
    SpeedWorkload(
        "link_retx_guarded",
        "Link: same noisy bursts behind a LinkRetxGuard (NACK/resend/reseq)",
        lambda: _run_link_retx(True, 1_000, 24),
        quick=True,
    ),
]

# (slow workload, fast workload) pairs whose best-time ratio the runner
# derives and stores alongside the raw timings.
SPEEDUP_PAIRS: Dict[str, Tuple[str, str]] = {
    "pim_bitmask_speedup_n16": ("voq_pim_reference_n16", "voq_pim_bitmask_n16"),
    "pim_bitmask_speedup_n32": ("voq_pim_reference_n32", "voq_pim_bitmask_n32"),
    "pim_bitmask_speedup_n64": ("voq_pim_reference_n64", "voq_pim_bitmask_n64"),
    "fifo_bitmask_speedup_n16": ("fifo_reference_n16", "fifo_bitmask_n16"),
    "route_cache_speedup_n24": ("route_cache_off_n24", "route_cache_on_n24"),
    "sweep_parallel_speedup_w4": ("sweep_parallel_serial", "sweep_parallel_w4"),
    "link_train_speedup": ("link_train_unbatched", "link_train_batched"),
    "topo_incremental_vs_rebuild": (
        "topo_rebuild_fattree_k32",
        "topo_incremental_fattree_k32",
    ),
    "obs_overhead_traced_cost": ("obs_overhead_traced", "obs_overhead_untraced"),
    "link_retx_recovery_cost": ("link_retx_guarded", "link_retx_unguarded"),
    "fabric_slot_engine_speedup": (
        "fabric_slot_scalar",
        "fabric_slot_vectorized",
    ),
}
