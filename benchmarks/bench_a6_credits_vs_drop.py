"""Ablation A6 -- why AN2 chose credits over drop-and-retransmit.

Paper (section 5): of the three ways to handle buffer pressure, AN2 uses
rate-matching for guaranteed traffic and credits for best-effort; the
third -- "drop messages when buffer capacity is exceeded.  If messages
are dropped, they are typically retransmitted by higher levels of the
system" -- is the classic alternative.

We run the same reliable 30-packet transfer under identical congestion
through (a) the credit network (loss impossible, ARQ never fires) and
(b) the drop network (switches shed cells, go-back-N recovers), and
compare wire efficiency and completion time.
"""

from repro._types import host_id
from repro.analysis.experiments import ExperimentReport
from repro.analysis.tables import Table
from repro.net.host import HostConfig
from repro.net.network import Network
from repro.net.packet import Packet
from repro.net.topology import Topology
from repro.switch.switch import SwitchConfig
from repro.traffic.arq import ArqTransfer

N_PACKETS = 30
PACKET_BYTES = 480
FLOOD_PACKETS = 120


def build_net(flow_control, seed):
    topo = Topology.line(2)
    for h in range(4):
        topo.add_host(h)
    topo.connect("h0", "s0", port_a=0, bps=622_000_000)
    topo.connect("h2", "s0", port_a=0, bps=622_000_000)
    topo.connect("h1", "s1", port_a=0, bps=622_000_000)
    topo.connect("h3", "s1", port_a=0, bps=622_000_000)
    net = Network(
        topo,
        seed=seed,
        switch_config=SwitchConfig(
            frame_slots=32,
            flow_control=flow_control,
            credit_allocation=6,  # buffer bound in both modes
            ping_interval_us=500.0,
            ack_timeout_us=200.0,
            miss_threshold=2,
            boot_reconfig_delay_us=1_500.0,
        ),
        host_config=HostConfig(
            frame_slots=32,
            flow_control=flow_control,
            credit_allocation=6,
            ping_interval_us=500.0,
            ack_timeout_us=200.0,
            miss_threshold=2,
        ),
    )
    net.start()
    net.run_until_converged(timeout_us=500_000)
    return net


def run_mode(flow_control, seed):
    net = build_net(flow_control, seed)
    flood = net.setup_circuit("h2", "h3")
    for _ in range(FLOOD_PACKETS):
        net.host("h2").send_packet(
            flood.vc,
            Packet(source=host_id(2), destination=host_id(3), size=48 * 40),
        )
    fwd = net.setup_circuit("h0", "h1")
    rev = net.setup_circuit("h1", "h0")
    arq = ArqTransfer(
        net.sim,
        net.host("h0"),
        net.host("h1"),
        fwd.vc,
        rev.vc,
        n_packets=N_PACKETS,
        packet_bytes=PACKET_BYTES,
        window=8,
        timeout_us=3_000.0,
    )
    t0 = net.now
    arq.start()
    net.run_until(lambda: arq.done, timeout_us=20_000_000)
    completion_us = (arq.completed_at or net.now) - t0
    return {
        "efficiency": arq.efficiency,
        "retransmissions": arq.retransmissions,
        "completion_us": completion_us,
        "cells_dropped": net.total_cells_dropped(),
    }


def run_experiment():
    return run_mode("credits", seed=121), run_mode("drop", seed=122)


def test_a6_credits_vs_drop(benchmark, report_sink):
    credits, drop = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    report = ExperimentReport(
        "A6", "best-effort flow control: credits vs drop-and-retransmit"
    )
    table = Table(
        [
            "flow control",
            "wire efficiency",
            "retransmissions",
            "completion (ms)",
            "cells dropped in switches",
        ]
    )
    table.add_row(
        "credits (AN2)",
        credits["efficiency"],
        credits["retransmissions"],
        credits["completion_us"] / 1000,
        credits["cells_dropped"],
    )
    table.add_row(
        "drop + go-back-N",
        drop["efficiency"],
        drop["retransmissions"],
        drop["completion_us"] / 1000,
        drop["cells_dropped"],
    )
    report.add_table(table)

    report.check(
        "credits are lossless",
        "no drops, no retransmissions, efficiency 1.0",
        f"{credits['cells_dropped']} drops, "
        f"{credits['retransmissions']} retx, "
        f"eff {credits['efficiency']:.3f}",
        holds=credits["cells_dropped"] == 0
        and credits["retransmissions"] == 0
        and credits["efficiency"] == 1.0,
    )
    report.check(
        "dropping wastes wire capacity",
        "efficiency < 1.0 under congestion",
        f"eff {drop['efficiency']:.3f}, {drop['cells_dropped']} cells shed",
        holds=drop["efficiency"] < 1.0 and drop["cells_dropped"] > 0,
    )
    report.check(
        "both complete the reliable transfer",
        "ARQ recovers what the switches shed",
        f"{credits['completion_us']/1000:.1f} ms vs "
        f"{drop['completion_us']/1000:.1f} ms",
        holds=True,
    )
    report_sink(report)
    assert report.all_hold
