"""E10 -- Deadlock: why AN1 needed up*/down*, why AN2 does not.

Paper (section 5):

- FIFO buffers + unrestricted routes admit a circular wait ("If a cycle
  of blocked links could arise... then deadlock could occur");
- "Messages are only routed on up*/down* paths...  This restriction is
  sufficient to prevent cycle formation and thus to prevent deadlock";
- "Up*/down* routing may eliminate some potential routes and thus have a
  negative effect on performance" -- we quantify the path inflation;
- AN2: "The buffers for different virtual circuits are independent...
  Since the links of a single virtual circuit can not form a cycle,
  deadlock cannot occur" -- even with one buffer per VC.
"""

import random

from repro._types import switch_id
from repro.analysis.experiments import ExperimentReport
from repro.analysis.stats import mean
from repro.analysis.tables import Table
from repro.core.flowcontrol.deadlock import (
    fifo_wait_for_graph,
    per_vc_wait_for_graph,
)
from repro.core.routing.updown import UpDownOrientation
from repro.net.topology import Topology


def ring_pressure_routes(n):
    """Adversarial circular traffic on an n-ring, routed the short way."""
    return [
        [switch_id(i), switch_id((i + 1) % n), switch_id((i + 2) % n)]
        for i in range(n)
    ]


def legal_routes_all_pairs(topo, root, rng, n_routes):
    orientation = UpDownOrientation(topo.view(), root)
    switches = topo.switches()
    routes = []
    for _ in range(n_routes):
        a, b = rng.sample(switches, 2)
        nodes, _ = orientation.shortest_legal_path(a, b)
        routes.append(nodes)
    return orientation, routes


def run_experiment():
    # Part 1: the ring deadlock and its three resolutions.
    ring = ring_pressure_routes(6)
    fifo_cycle = fifo_wait_for_graph(ring).has_cycle()
    per_vc_cycle = per_vc_wait_for_graph(ring).has_cycle()

    # The same ring topology under up*/down*: all legal routes, ever.
    ring_topo = Topology.ring(6)
    orientation, legal = legal_routes_all_pairs(
        ring_topo, switch_id(0), random.Random(1), n_routes=60
    )
    legal_cycle = fifo_wait_for_graph(legal).has_cycle()

    # Part 2: path inflation across random redundant topologies.
    inflation_rows = []
    for n in (8, 16, 24):
        rng = random.Random(n)
        topo = Topology.random_connected(n, extra_edges=n, rng=rng)
        orientation = UpDownOrientation(topo.view(), switch_id(0))
        ratios = []
        inflated = 0
        pairs = 0
        for a in topo.switches():
            for b in topo.switches():
                if a >= b:
                    continue
                legal_path = orientation.shortest_legal_path(a, b)
                free_path = orientation.shortest_unrestricted_path(a, b)
                pairs += 1
                ratio = len(legal_path[1]) / max(1, len(free_path[1]))
                ratios.append(ratio)
                inflated += ratio > 1.0
        inflation_rows.append(
            (n, mean(ratios), max(ratios), 100 * inflated / pairs)
        )
    return fifo_cycle, per_vc_cycle, legal_cycle, inflation_rows


def test_e10_deadlock_and_route_restriction(benchmark, report_sink):
    fifo_cycle, per_vc_cycle, legal_cycle, inflation_rows = benchmark.pedantic(
        run_experiment, rounds=1, iterations=1
    )

    report = ExperimentReport(
        "E10", "deadlock avoidance: up*/down* (AN1) and per-VC buffers (AN2)"
    )
    report.check(
        "FIFO + unrestricted ring routes",
        "circular wait exists",
        "cycle found" if fifo_cycle else "no cycle",
        holds=fifo_cycle,
    )
    report.check(
        "FIFO + up*/down* routes (any pair, ring)",
        "wait-for graph acyclic",
        "acyclic" if not legal_cycle else "CYCLE",
        holds=not legal_cycle,
    )
    report.check(
        "per-VC buffers, same circular traffic",
        "deadlock impossible (1 buffer/VC suffices)",
        "acyclic" if not per_vc_cycle else "CYCLE",
        holds=not per_vc_cycle,
    )

    table = Table(
        [
            "switches",
            "mean path inflation",
            "worst inflation",
            "% pairs inflated",
        ]
    )
    for n, mean_ratio, worst, pct in inflation_rows:
        table.add_row(n, mean_ratio, worst, pct)
    report.add_table(table)
    modest = all(mean_ratio < 1.5 for _, mean_ratio, _, _ in inflation_rows)
    report.check(
        "up*/down* performance cost",
        "some routes eliminated; modest on redundant topologies",
        f"mean inflation {max(r[1] for r in inflation_rows):.3f}x worst case",
        holds=modest,
    )
    report_sink(report)
    assert report.all_hold
