"""E5 -- Overlapping reconfigurations: the largest epoch tag wins.

Paper (section 2): "To ensure that the results are consistent when
configurations overlap, each reconfiguration message is tagged with an
epoch number and the id of the initiating switch...  Thus a switch that
sees multiple configurations participates in the one with the largest
tag and eventually ignores all others."

We trigger k concurrent reconfigurations at random switches with
adversarial stagger and verify that every switch converges to one
identical view under one tag, across many trials.
"""

import random

from repro._types import switch_id
from repro.analysis.experiments import ExperimentReport
from repro.analysis.tables import Table
from repro.core.reconfig.epoch import EpochTag
from repro.net.network import Network
from repro.net.topology import Topology
from repro.switch.switch import SwitchConfig


def bench_config():
    return SwitchConfig(
        frame_slots=32,
        control_delay_us=15.0,
        ping_interval_us=800.0,
        ack_timeout_us=300.0,
        boot_reconfig_delay_us=3_000.0,
        skeptic_base_wait_us=5_000.0,
    )


def run_experiment():
    rows = []
    for concurrency in (2, 4, 8):
        trials, agreed, total_aborts = 0, 0, 0
        for trial in range(4):
            rng = random.Random(concurrency * 100 + trial)
            topo = Topology.random_connected(12, extra_edges=10, rng=rng)
            net = Network(
                topo, seed=trial + concurrency, switch_config=bench_config()
            )
            net.start()
            net.run_until_converged(timeout_us=1_000_000)
            # Adversarial stagger: trigger at k random switches over a
            # window comparable to message latency.
            victims = rng.sample(range(12), concurrency)
            for offset, victim in enumerate(victims):
                net.sim.schedule(
                    offset * 37.0,
                    net.switch(f"s{victim}").reconfig.trigger,
                )
            net.run_until(net.fully_reconfigured, timeout_us=1_000_000)
            trials += 1
            views = {s.reconfig.view for s in net.switches.values()}
            tags = {s.reconfig.view_tag for s in net.switches.values()}
            if len(views) == 1 and len(tags) == 1:
                agreed += 1
            total_aborts += sum(
                s.reconfig.stats.aborted for s in net.switches.values()
            )
        rows.append((concurrency, trials, agreed, total_aborts))
    return rows


def test_e5_overlapping_reconfigurations(benchmark, report_sink):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    report = ExperimentReport(
        "E5", "overlapping reconfigurations serialize via epoch tags"
    )
    table = Table(
        ["concurrent triggers", "trials", "all agreed", "aborted participations"]
    )
    for concurrency, trials, agreed, aborts in rows:
        table.add_row(concurrency, trials, f"{agreed}/{trials}", aborts)
    report.add_table(table)

    all_agreed = all(agreed == trials for _, trials, agreed, _ in rows)
    report.check(
        "one view, one tag after overlap",
        "always",
        "yes" if all_agreed else "no",
        holds=all_agreed,
    )
    any_aborts = any(aborts > 0 for *_, aborts in rows)
    report.check(
        "losing configurations were aborted",
        "switches abandon smaller tags",
        "observed" if any_aborts else "none observed",
        holds=any_aborts,
    )
    report_sink(report)
    assert report.all_hold


def test_e5_tag_ordering_is_total(benchmark, report_sink):
    """Micro-benchmark the tag comparison itself (it runs on every
    message) and confirm its total order on a dense sample."""

    tags = [
        EpochTag(epoch, switch_id(num))
        for epoch in range(50)
        for num in range(50)
    ]

    def sort_tags():
        return sorted(tags)

    ordered = benchmark(sort_tags)
    assert all(a < b for a, b in zip(ordered, ordered[1:]))
