"""E2 -- PIM iteration counts: log2(N) + 4/3, and 98% maximal within 4.

Paper (section 3): "It can be proved, however, that the average time to
find a maximal match is bounded by log2 N + 4/3, or 5.32 for the AN2
switch.  This result is independent of the arrival patterns of cells...
In fact, simulations show that a maximal match is found within 4
iterations more than 98% of the time."

We measure iterations-to-maximal across arrival patterns and switch
sizes, plus an iSLIP ablation of the randomized choice rule.
"""

import random

from repro.analysis.experiments import ExperimentReport
from repro.analysis.tables import Table
from repro.constants import pim_iteration_bound
from repro.core.matching.islip import IslipMatcher
from repro.core.matching.pim import ParallelIterativeMatcher
from repro.switch.fabric import VoqFabric, run_fabric
from repro.traffic.arrivals import BernoulliUniform, BurstyOnOff, Hotspot

SLOTS = 4_000
WARMUP = 500


def iteration_stats(n_ports, traffic_factory, seed, matcher_factory=None):
    if matcher_factory is None:
        matcher_factory = lambda: ParallelIterativeMatcher(
            n_ports, n_ports, random.Random(seed)
        )
    fabric = VoqFabric(n_ports, matcher_factory())
    metrics = run_fabric(
        fabric, traffic_factory(seed + 77), SLOTS, warmup_slots=WARMUP
    )
    iterations = metrics.iterations_to_maximal
    within4 = sum(
        count
        for bucket, count in metrics.maximal_within.items()
        if bucket <= 4
    )
    return iterations.mean, within4 / iterations.count, iterations.maximum


def run_experiment():
    patterns = {
        "uniform load 1.0": lambda s: BernoulliUniform(16, 1.0, random.Random(s)),
        "uniform load 0.6": lambda s: BernoulliUniform(16, 0.6, random.Random(s)),
        "bursty load 0.9": lambda s: BurstyOnOff(16, 0.9, 16.0, random.Random(s)),
        "hotspot load 0.9": lambda s: Hotspot(
            16, 0.9, hot_output=0, hot_fraction=0.3, rng=random.Random(s)
        ),
    }
    pattern_rows = {
        name: iteration_stats(16, factory, seed=3)
        for name, factory in patterns.items()
    }
    size_rows = {
        n: iteration_stats(
            n, lambda s, n=n: BernoulliUniform(n, 1.0, random.Random(s)), seed=4
        )
        for n in (4, 8, 16, 32)
    }
    islip_mean, islip_within4, _ = iteration_stats(
        16,
        lambda s: BernoulliUniform(16, 1.0, random.Random(s)),
        seed=5,
        matcher_factory=lambda: IslipMatcher(16, iterations=16),
    )
    return pattern_rows, size_rows, (islip_mean, islip_within4)


def test_e2_pim_iterations(benchmark, report_sink):
    pattern_rows, size_rows, islip = benchmark.pedantic(
        run_experiment, rounds=1, iterations=1
    )

    report = ExperimentReport("E2", "PIM iterations to a maximal match")
    table = Table(
        ["arrival pattern (16x16)", "mean iters", "maximal within 4", "max"]
    )
    for name, (mean_iters, within4, max_iters) in pattern_rows.items():
        table.add_row(name, mean_iters, f"{100*within4:.1f}%", max_iters)
    report.add_table(table)

    sizes = Table(["switch size N", "mean iters", "bound log2(N)+4/3"])
    for n, (mean_iters, _, _) in size_rows.items():
        sizes.add_row(n, mean_iters, pim_iteration_bound(n))
    report.add_table(sizes)

    worst_mean = max(mean for mean, _, _ in pattern_rows.values())
    report.check(
        "mean iterations (16x16, any pattern)",
        "<= 5.32",
        f"{worst_mean:.2f}",
        holds=worst_mean <= pim_iteration_bound(16),
    )
    worst_within4 = min(within4 for _, within4, _ in pattern_rows.values())
    report.check(
        "maximal within 4 iterations",
        "> 98%",
        f"{100*worst_within4:.1f}%",
        holds=worst_within4 > 0.98,
    )
    bound_ok = all(
        size_rows[n][0] <= pim_iteration_bound(n) for n in size_rows
    )
    report.check(
        "bound holds for N in {4,8,16,32}",
        "mean <= log2(N)+4/3",
        "yes" if bound_ok else "no",
        holds=bound_ok,
    )
    report.check(
        "iSLIP ablation (round-robin choices)",
        "comparable iterations",
        f"mean {islip[0]:.2f}, within-4 {100*islip[1]:.1f}%",
        holds=islip[0] <= pim_iteration_bound(16) + 1,
    )
    report_sink(report)
    assert report.all_hold
