"""E12 -- Best-effort traffic in the gaps of the frame schedule.

Paper (section 4):

- "Best-effort cells can be scheduled (by parallel iterative matching)
  during slots not used by guaranteed traffic...  In addition,
  best-effort cells can use an allocated slot if no cell from the
  scheduled virtual circuit is present";
- the schedule-arrangement conjecture: best-effort fares better when
  reserved traffic is "packed into a small number of slots" and when
  "the unreserved slots are distributed throughout the frame rather than
  grouped at one point".

We build the same reservation demand under three packing policies, run
identical guaranteed + best-effort traffic through the slotted fabric,
and compare best-effort latency and throughput (the packing ablation the
paper calls "a matter for further study").
"""

import random

from repro.analysis.experiments import ExperimentReport
from repro.analysis.tables import Table
from repro.core.guaranteed.packing import make_policy_schedule
from repro.core.matching.pim import ParallelIterativeMatcher
from repro.switch.fabric import VoqFabric, run_fabric
from repro.traffic.arrivals import BernoulliUniform

N = 16
FRAME = 64
SLOTS = 10 * FRAME * 8
BE_LOAD = 0.45


def guaranteed_demand(rng):
    """~40% of each link reserved, in lumpy per-pair chunks."""
    demand = [[0] * N for _ in range(N)]
    rows, cols = [0] * N, [0] * N
    target = int(FRAME * 0.4)
    for _ in range(400):
        i, o = rng.randrange(N), rng.randrange(N)
        k = min(rng.randint(2, 8), target - rows[i], target - cols[o])
        if k > 0:
            demand[i][o] += k
            rows[i] += k
            cols[o] += k
    return demand


def run_policy(policy, demand, seed):
    schedule = make_policy_schedule(policy, N, FRAME, demand)
    frame_schedule = [schedule.slot_assignments(s) for s in range(FRAME)]
    fabric = VoqFabric(
        N,
        ParallelIterativeMatcher(N, 3, random.Random(seed)),
        frame_schedule=frame_schedule,
    )
    # Guaranteed sources: keep every reserved pair's queue fed at its
    # reserved rate (cells per frame arrive spread through the frame).
    reserved_pairs = [
        (i, o, demand[i][o])
        for i in range(N)
        for o in range(N)
        if demand[i][o]
    ]
    be_traffic = BernoulliUniform(N, BE_LOAD, random.Random(seed + 1))

    def feed_guaranteed(slot):
        for i, o, cells in reserved_pairs:
            # Bernoulli thinning at rate cells/FRAME keeps the guaranteed
            # queues fed at exactly the reserved rate on average.
            if feed_rng.random() < cells / FRAME:
                fabric.offer_guaranteed(i, o, slot)

    feed_rng = random.Random(seed + 2)
    for slot in range(SLOTS):
        feed_guaranteed(slot)
        for i, o in be_traffic.arrivals(slot):
            fabric.offer(i, o, slot)
        fabric.step(slot)
    metrics = fabric.metrics
    guaranteed_delivered = sum(
        count
        for (i, o), count in metrics.delivered_per_pair.items()
        if demand[i][o] > 0
    )
    return (
        schedule.slots_used(),
        metrics.latency.mean,
        metrics.latency.percentile(99),
        metrics.utilization(N),
        guaranteed_delivered,
    )


def run_experiment():
    demand = guaranteed_demand(random.Random(77))
    return {
        policy: run_policy(policy, demand, seed=13)
        for policy in ("first_fit", "packed", "packed_spread")
    }


def test_e12_mixed_traffic_packing(benchmark, report_sink):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    report = ExperimentReport(
        "E12", "best-effort performance under frame-schedule arrangement"
    )
    table = Table(
        [
            "policy",
            "slots touched by reservations",
            "mean latency (all cells)",
            "p99",
            "total throughput",
            "guaranteed cells delivered",
        ]
    )
    for policy, (used, mean_lat, p99, tput, gdel) in results.items():
        table.add_row(policy, used, mean_lat, p99, tput, gdel)
    report.add_table(table)

    first_fit = results["first_fit"]
    packed = results["packed"]
    spread = results["packed_spread"]
    report.check(
        "packing frees whole slots",
        "fewer slots touched than first-fit",
        f"{packed[0]} vs {first_fit[0]}",
        holds=packed[0] <= first_fit[0],
    )
    report.check(
        "best-effort latency: packed+spread vs first-fit",
        "spread-out free slots help",
        f"{spread[1]:.1f} vs {first_fit[1]:.1f} slots",
        holds=spread[1] <= first_fit[1] * 1.10,
    )
    report.check(
        "guaranteed traffic unharmed by arrangement",
        "same reserved throughput under all policies",
        f"{min(r[4] for r in results.values())} vs "
        f"{max(r[4] for r in results.values())}",
        holds=(
            max(r[4] for r in results.values())
            - min(r[4] for r in results.values())
        )
        < 0.02 * max(r[4] for r in results.values()) + 50,
    )
    report_sink(report)
    assert report.all_hold
