"""Ablation A2 -- centralized vs distributed bandwidth admission.

Paper (section 4): "The name is misleading -- network central might well
be implemented in a distributed fashion.  For the first realization of
AN2, however, network central resides at a single switch."

We compare the two implementations on the same redundant topology and
request stream:

- **acceptance**: the centralized service sees every link's residual and
  routes around full links; the hop-by-hop distributed service admits
  against local ledgers only, so it strands capacity on alternate routes;
- **decision latency**: distributed admission completes in one traversal
  of the path (the setup cell's own round trip), while the centralized
  service pays a control round-trip to wherever central lives (modelled
  in `Network.reserve_bandwidth` as per-hop notification latency).
"""

from repro.analysis.experiments import ExperimentReport
from repro.analysis.tables import Table
from repro.core.guaranteed.bandwidth_central import ReservationDenied
from repro.net.host import HostConfig
from repro.net.network import Network
from repro.net.topology import Topology
from repro.switch.switch import SwitchConfig

FRAME = 32
REQUEST_CELLS = 8
REQUESTS = 10


def build_diamond(seed):
    topo = Topology()
    for i in range(4):
        topo.add_switch(i)
    topo.connect("s0", "s1")
    topo.connect("s1", "s3")
    topo.connect("s0", "s2")
    topo.connect("s2", "s3")
    topo.add_host(0)
    topo.add_host(1)
    # Double-rate host attachments so the core arms (32 cells/frame
    # each) are the binding constraint, not the host edge.
    topo.connect("h0", "s0", port_a=0, bps=1_244_000_000)
    topo.connect("h1", "s3", port_a=0, bps=1_244_000_000)
    net = Network(
        topo,
        seed=seed,
        switch_config=SwitchConfig(
            frame_slots=FRAME,
            boot_reconfig_delay_us=2_000.0,
            ping_interval_us=800.0,
            ack_timeout_us=300.0,
        ),
        host_config=HostConfig(frame_slots=FRAME),
    )
    net.start()
    net.run_until_converged(timeout_us=500_000)
    return net


def centralized_run():
    net = build_diamond(seed=101)
    central = net.bandwidth_central()
    granted = 0
    for _ in range(REQUESTS):
        try:
            net.reserve_bandwidth("h0", "h1", REQUEST_CELLS, central=central)
            granted += 1
        except ReservationDenied:
            pass
    return granted


def distributed_run():
    net = build_diamond(seed=102)
    granted = 0
    latencies = []
    for _ in range(REQUESTS):
        t0 = net.now
        _, outcome = net.reserve_bandwidth_distributed(
            "h0", "h1", REQUEST_CELLS
        )
        latencies.append(net.now - t0)
        if outcome == "granted":
            granted += 1
    return granted, latencies


def run_experiment():
    central_granted = centralized_run()
    distributed_granted, latencies = distributed_run()
    return central_granted, distributed_granted, latencies


def test_a2_distributed_admission(benchmark, report_sink):
    central_granted, distributed_granted, latencies = benchmark.pedantic(
        run_experiment, rounds=1, iterations=1
    )
    # Capacity accounting: the host link admits 4 requests of 8 into a
    # 32-slot frame; the two core arms together admit 8.  The binding
    # constraint is the single host link: 4 grants max -- UNLESS the
    # host link capacity exceeds a single arm, in which case central
    # finds both arms (8) while distributed sticks to one (4).
    report = ExperimentReport(
        "A2", "bandwidth central: centralized vs distributed (diamond)"
    )
    table = Table(["implementation", "requests", "granted"])
    table.add_row("centralized (global view)", REQUESTS, central_granted)
    table.add_row("distributed (local ledgers)", REQUESTS, distributed_granted)
    report.add_table(table)

    report.check(
        "both enforce capacity",
        "never more than the physical limit",
        f"{central_granted} / {distributed_granted} grants",
        holds=central_granted <= 8 and distributed_granted <= 8,
    )
    report.check(
        "centralized >= distributed acceptance",
        "global knowledge routes around full links",
        f"{central_granted} vs {distributed_granted}",
        holds=central_granted >= distributed_granted,
    )
    mean_latency = sum(latencies) / len(latencies)
    report.check(
        "distributed decision latency",
        "one path traversal (tens of us)",
        f"mean {mean_latency:.0f} us",
        holds=mean_latency < 1_000.0,
    )
    report_sink(report)
    assert report.all_hold
