#!/usr/bin/env python
"""Render a captured trace + metrics snapshot as human-readable reports.

Input is what the observability layer writes (see ``repro.obs``): a JSON
Lines trace from :meth:`Tracer.write_jsonl` and, optionally, a metrics
snapshot from :meth:`MetricsRegistry.write_json` (or
``Network.metrics_snapshot()`` dumped to JSON).  Every ``bench_e*``
experiment produces both when run with ``--trace-out=DIR``::

    PYTHONPATH=src python -m pytest benchmarks/bench_e4_reconfiguration.py \\
        --trace-out=/tmp/traces
    PYTHONPATH=src python tools/trace_report.py \\
        /tmp/traces/<test>.trace.jsonl --metrics /tmp/traces/<test>.metrics.json

Reports:

- **reconfiguration timeline**: every epoch observed in the ``reconfig``
  category, with its initiator, participant count, settle time (first
  ``epoch.begin`` to last ``epoch.end``), and whether it was superseded;
  port-monitor timeouts and skeptic verdict flips are listed inline.
- **cell journeys**: the ``journey`` category's per-hop records, folded
  into a per-VC critical-path table (queueing / matching / wire /
  reassembly / residual) plus a hop-by-hop timeline of the slowest cell.
- **flight recorder**: per-component timelines from a
  :class:`~repro.obs.FlightRecorder` dump (``--component`` filters to,
  say, the switch that failed an invariant).
- **per-VC latency table**: from the metrics snapshot's
  ``vc<k>.cell_latency`` tallies (any node), plus packet latency.
- **fabric utilization**: fabric/crossbar nodes' delivered counts and
  utilization gauges.

The loader is deliberately tolerant: dumps written by a crashing run
may end mid-line, so malformed lines are skipped with a warning rather
than aborting the report.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any, Dict, List, Optional

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

from repro.analysis.tables import Table  # noqa: E402


# ----------------------------------------------------------------------
# tolerant loading
# ----------------------------------------------------------------------
def load_records(path: str) -> Optional[List[Dict[str, Any]]]:
    """Read a JSONL trace, surviving truncation and partial writes.

    Dumps written by a crashing process (which is exactly when you need
    them) routinely end mid-line; a report tool that stack-traces on its
    own input is useless.  Malformed or non-object lines are skipped
    with a warning on stderr; a missing file returns ``None``.
    """
    records: List[Dict[str, Any]] = []
    skipped = 0
    try:
        stream = open(path, "r", encoding="utf-8")
    except OSError as exc:
        print(f"trace_report: cannot read {path}: {exc}", file=sys.stderr)
        return None
    with stream:
        for lineno, line in enumerate(stream, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                skipped += 1
                if skipped <= 3:
                    print(
                        f"trace_report: {path}:{lineno}: skipping "
                        f"malformed line (truncated dump?)",
                        file=sys.stderr,
                    )
                continue
            if not isinstance(record, dict) or "t" not in record:
                skipped += 1
                continue
            records.append(record)
    if skipped > 3:
        print(
            f"trace_report: {path}: skipped {skipped} malformed lines total",
            file=sys.stderr,
        )
    return records


# ----------------------------------------------------------------------
# reconfiguration timeline
# ----------------------------------------------------------------------
def build_timeline(records: List[Dict[str, Any]]) -> str:
    """Group ``reconfig`` records by epoch tag and render the timeline."""
    epochs: Dict[str, Dict[str, Any]] = {}
    order: List[str] = []
    monitor_events: List[Dict[str, Any]] = []
    skeptic_events: List[Dict[str, Any]] = []

    for record in records:
        if record.get("cat") != "reconfig":
            continue
        name = record.get("name", "")
        data = record.get("data", {})
        if name.startswith("epoch."):
            tag = str(data.get("tag", "?"))
            epoch = epochs.get(tag)
            if epoch is None:
                epoch = epochs[tag] = {
                    "tag": tag,
                    "triggered_by": None,
                    "first_begin": None,
                    "last_end": None,
                    "participants": set(),
                    "completions": 0,
                    "watchdogs": 0,
                }
                order.append(tag)
            t = record["t"]
            if name == "epoch.trigger":
                epoch["triggered_by"] = record.get("comp")
            elif name == "epoch.begin":
                epoch["participants"].add(record.get("comp"))
                if epoch["first_begin"] is None or t < epoch["first_begin"]:
                    epoch["first_begin"] = t
            elif name == "epoch.end":
                epoch["completions"] += 1
                if epoch["last_end"] is None or t > epoch["last_end"]:
                    epoch["last_end"] = t
            elif name == "epoch.watchdog":
                epoch["watchdogs"] += 1
        elif name == "monitor.timeout":
            monitor_events.append(record)
        elif name.startswith("skeptic."):
            skeptic_events.append(record)

    lines: List[str] = ["Reconfiguration timeline", "========================"]
    if not epochs:
        lines.append("(no reconfiguration events in trace)")
    table = Table(
        ["epoch tag", "initiator", "begin (us)", "settle (us)",
         "participants", "completed", "status"],
    )
    for tag in order:
        epoch = epochs[tag]
        participants = len(epoch["participants"])
        begin = epoch["first_begin"]
        if epoch["last_end"] is not None and begin is not None:
            settle = epoch["last_end"] - begin
        else:
            settle = None
        if epoch["completions"] and epoch["completions"] >= participants:
            status = "settled"
        elif epoch["completions"]:
            status = "partial"
        else:
            status = "superseded"
        if epoch["watchdogs"]:
            status += f" ({epoch['watchdogs']} watchdog)"
        table.add_row(
            tag,
            epoch["triggered_by"] or "-",
            begin if begin is not None else "-",
            settle if settle is not None else "-",
            participants,
            epoch["completions"],
            status,
        )
    if epochs:
        lines.append(table.render())

    if skeptic_events:
        lines.append("")
        verdicts = Table(
            ["t (us)", "port", "event", "detail"], title="Skeptic verdicts"
        )
        for record in skeptic_events:
            data = record.get("data", {})
            if record["name"] == "skeptic.verdict":
                detail = f"-> {data.get('verdict')} (level {data.get('level')})"
            elif record["name"] == "skeptic.probation":
                detail = f"probation until {data.get('until')}"
            else:
                detail = f"failure in {data.get('state')} (level {data.get('level')})"
            verdicts.add_row(
                record["t"], record.get("comp", "-"),
                record["name"].split(".", 1)[1], detail,
            )
        lines.append(verdicts.render())

    if monitor_events:
        lines.append("")
        shown = monitor_events[:20]
        timeouts = Table(
            ["t (us)", "port", "seq", "misses"],
            title=f"Port-monitor timeouts ({len(monitor_events)} total"
            + (", first 20 shown)" if len(monitor_events) > 20 else ")"),
        )
        for record in shown:
            data = record.get("data", {})
            timeouts.add_row(
                record["t"], record.get("comp", "-"),
                data.get("seq", "-"),
                f"{data.get('misses', '-')}/{data.get('threshold', '-')}",
            )
        lines.append(timeouts.render())
    return "\n".join(lines)


# ----------------------------------------------------------------------
# cell-journey critical path
# ----------------------------------------------------------------------
def _decompose_journey(
    recs: List[Dict[str, Any]]
) -> Dict[str, Any]:
    """Split one cell's hop records into critical-path phases.

    - ``queueing``: segmentation until the source host's first ``tx``
      (host queue + pacing + credit stalls).
    - ``matching``: time spent inside switches, summed over every
      ``voq.enqueue`` -> ``grant`` span.
    - ``wire``: link transit, summed over every departure (``tx`` or
      ``grant``) -> ``wire.arrive`` span.
    - ``reassembly``: ``deliver`` -> ``packet.done`` (last cell only).
    - ``residual``: whatever the instrumented hops did not cover.
    """
    recs = sorted(
        recs, key=lambda r: (r["t"], r.get("data", {}).get("hop", 0))
    )
    segment_t = first_tx_t = deliver_t = done_t = None
    matching = wire = 0.0
    pending_enqueue = pending_departure = None
    dropped = None
    for record in recs:
        stage, t = record.get("name"), record["t"]
        if stage == "segment":
            segment_t = t if segment_t is None else segment_t
        elif stage == "tx":
            if first_tx_t is None:
                first_tx_t = t
            pending_departure = t
        elif stage == "voq.enqueue":
            pending_enqueue = t
        elif stage == "grant":
            if pending_enqueue is not None:
                matching += t - pending_enqueue
                pending_enqueue = None
            pending_departure = t
        elif stage == "wire.arrive":
            if pending_departure is not None:
                wire += t - pending_departure
                pending_departure = None
        elif stage == "deliver":
            deliver_t = t
        elif stage == "packet.done":
            done_t = t
        elif stage in ("wire.drop", "drop"):
            dropped = record.get("data", {}).get("reason", stage)
    queueing = (
        first_tx_t - segment_t
        if segment_t is not None and first_tx_t is not None
        else 0.0
    )
    reassembly = (
        done_t - deliver_t
        if done_t is not None and deliver_t is not None
        else 0.0
    )
    total = (
        deliver_t - segment_t
        if deliver_t is not None and segment_t is not None
        else None
    )
    residual = (
        max(0.0, total - queueing - matching - wire - reassembly)
        if total is not None
        else None
    )
    return {
        "records": recs,
        "vc": recs[0].get("data", {}).get("vc", "?"),
        "queueing": queueing,
        "matching": matching,
        "wire": wire,
        "reassembly": reassembly,
        "residual": residual,
        "total": total,
        "dropped": dropped,
    }


def build_journey(records: List[Dict[str, Any]], slowest: int = 1) -> str:
    """Per-VC critical-path decomposition of sampled cell journeys."""
    lines = ["Cell journeys (critical path)", "============================="]
    by_cell: Dict[Any, List[Dict[str, Any]]] = {}
    for record in records:
        if record.get("cat") != "journey":
            continue
        cell = record.get("data", {}).get("cell")
        if cell is not None:
            by_cell.setdefault(cell, []).append(record)
    if not by_cell:
        lines.append("(no journey records in trace; enable the 'journey' "
                     "tracer category)")
        return "\n".join(lines)

    journeys = [_decompose_journey(recs) for recs in by_cell.values()]
    per_vc: Dict[Any, Dict[str, Any]] = {}
    for journey in journeys:
        row = per_vc.setdefault(
            journey["vc"],
            {"cells": 0, "delivered": 0, "dropped": 0, "queueing": 0.0,
             "matching": 0.0, "wire": 0.0, "reassembly": 0.0,
             "residual": 0.0, "total": 0.0},
        )
        row["cells"] += 1
        if journey["dropped"] is not None:
            row["dropped"] += 1
        if journey["total"] is None:
            continue
        row["delivered"] += 1
        for phase in ("queueing", "matching", "wire", "reassembly",
                      "residual", "total"):
            row[phase] += journey[phase]

    table = Table(
        ["vc", "cells", "delivered", "dropped", "mean total (us)",
         "queueing", "matching", "wire", "reassembly", "residual"],
        title="Mean end-to-end latency decomposition per VC",
    )
    for vc in sorted(per_vc, key=str):
        row = per_vc[vc]
        n = row["delivered"]
        if n:
            means = [f"{row[p] / n:.2f}" for p in
                     ("total", "queueing", "matching", "wire",
                      "reassembly", "residual")]
        else:
            means = ["-"] * 6
        table.add_row(vc, row["cells"], row["delivered"], row["dropped"],
                      *means)
    lines.append(table.render())

    delivered = [j for j in journeys if j["total"] is not None]
    delivered.sort(key=lambda j: -j["total"])
    for journey in delivered[:max(0, slowest)]:
        recs = journey["records"]
        cell = recs[0]["data"].get("cell")
        hops = Table(
            ["hop", "t (us)", "+dt", "component", "stage", "detail"],
            title=(
                f"Slowest cell {cell} (vc {journey['vc']}, "
                f"{journey['total']:.2f} us end to end)"
            ),
        )
        prev_t = None
        for record in recs:
            data = dict(record.get("data", {}))
            for drop in ("cell", "packet", "vc", "hop"):
                data.pop(drop, None)
            detail = ", ".join(f"{k}={v}" for k, v in sorted(data.items()))
            dt = "-" if prev_t is None else f"{record['t'] - prev_t:.2f}"
            prev_t = record["t"]
            hops.add_row(
                record.get("data", {}).get("hop", "-"),
                f"{record['t']:.2f}", dt,
                record.get("comp", "-"), record.get("name", "-"),
                detail or "-",
            )
        lines.append("")
        lines.append(hops.render())
    return "\n".join(lines)


# ----------------------------------------------------------------------
# flight-recorder dumps
# ----------------------------------------------------------------------
def build_flight(
    records: List[Dict[str, Any]], component: Optional[str] = None
) -> str:
    """Render flight-recorder rings as per-component timelines."""
    lines = ["Flight recorder", "==============="]
    meta = [r for r in records if r.get("cat") == "flight.meta"]
    rows = [r for r in records if r.get("cat") == "flight"]
    for record in meta:
        data = record.get("data", {})
        lines.append(
            f"dump reason: {data.get('reason', '?')} "
            f"(retained {data.get('retained', '?')} of "
            f"{data.get('recorded_total', '?')} recorded, "
            f"{data.get('components', '?')} components, "
            f"ring capacity {data.get('capacity', '?')})"
        )
    if not rows:
        lines.append("(no flight records in file)")
        return "\n".join(lines)
    by_comp: Dict[str, List[Dict[str, Any]]] = {}
    for record in rows:
        by_comp.setdefault(record.get("comp", "?"), []).append(record)
    if component is not None:
        matched = {
            name: recs for name, recs in by_comp.items()
            if component in name
        }
        if not matched:
            lines.append(
                f"(no component matching {component!r}; present: "
                + ", ".join(sorted(by_comp)) + ")"
            )
            return "\n".join(lines)
        by_comp = matched
    for name in sorted(by_comp):
        recs = sorted(by_comp[name], key=lambda r: r["t"])
        table = Table(
            ["t (us)", "event", "detail"],
            title=f"{name} ({len(recs)} records)",
        )
        for record in recs:
            data = record.get("data", {})
            detail = ", ".join(f"{k}={v}" for k, v in sorted(data.items()))
            table.add_row(
                f"{record['t']:.2f}", record.get("name", "-"), detail or "-"
            )
        lines.append("")
        lines.append(table.render())
    return "\n".join(lines)


# ----------------------------------------------------------------------
# per-VC latency
# ----------------------------------------------------------------------
def build_vc_latency(snapshot: Dict[str, Any]) -> str:
    lines = ["Per-VC latency", "=============="]
    table = Table(
        ["node", "vc", "cells", "mean (us)", "p50", "p90", "p99", "max"]
    )
    found = 0
    for path in sorted(snapshot):
        tallies = snapshot[path].get("tallies", {})
        for name in sorted(tallies):
            if not name.endswith(".cell_latency"):
                continue
            stats = tallies[name]
            if not stats.get("count"):
                continue
            found += 1
            vc = name.split(".", 1)[0]
            table.add_row(
                path, vc, stats["count"], stats["mean"],
                stats["p50"], stats["p90"], stats["p99"], stats["max"],
            )
    if found:
        lines.append(table.render())
    else:
        lines.append("(no cell-latency tallies in snapshot)")

    packet = Table(["node", "packets", "mean (us)", "p50", "p99", "max"],
                   title="Packet latency")
    have_packets = 0
    for path in sorted(snapshot):
        stats = snapshot[path].get("tallies", {}).get("packet_latency")
        if not stats or not stats.get("count"):
            continue
        have_packets += 1
        packet.add_row(
            path, stats["count"], stats["mean"], stats["p50"],
            stats["p99"], stats["max"],
        )
    if have_packets:
        lines.append("")
        lines.append(packet.render())
    return "\n".join(lines)


# ----------------------------------------------------------------------
# fabric utilization
# ----------------------------------------------------------------------
def build_fabric_summary(snapshot: Dict[str, Any]) -> str:
    lines = ["Fabric utilization", "=================="]
    table = Table(
        ["node", "slots", "delivered", "dropped", "utilization",
         "latency p99 (slots)"]
    )
    found = 0
    for path in sorted(snapshot):
        node = snapshot[path]
        gauges = node.get("gauges", {})
        if "utilization" not in gauges:
            continue
        found += 1
        latency = node.get("tallies", {}).get("latency_slots", {})
        slots = gauges.get("slots", gauges.get("cells_transferred", 0))
        table.add_row(
            path,
            slots,
            gauges.get("cells_delivered", gauges.get("cells_transferred", 0)),
            gauges.get("cells_dropped", 0),
            f"{gauges['utilization']:.3f}",
            latency.get("p99", "-") if latency.get("count") else "-",
        )
    if found:
        lines.append(table.render())
    else:
        lines.append("(no fabric/crossbar nodes in snapshot)")
    return "\n".join(lines)


def build_trace_summary(records: List[Dict[str, Any]]) -> str:
    by_cat: Dict[str, int] = {}
    for record in records:
        cat = record.get("cat", "?")
        by_cat[cat] = by_cat.get(cat, 0) + 1
    t_lo = min((r["t"] for r in records), default=0)
    t_hi = max((r["t"] for r in records), default=0)
    parts = ", ".join(f"{c}={n}" for c, n in sorted(by_cat.items()))
    return (
        f"{len(records)} trace records over t=[{t_lo:.1f}, {t_hi:.1f}] "
        f"({parts})"
    )


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Render a JSONL trace and metrics snapshot as reports."
    )
    parser.add_argument("trace", help="JSONL trace file (Tracer.write_jsonl)")
    parser.add_argument(
        "--metrics", default=None,
        help="metrics snapshot JSON (MetricsRegistry.write_json)",
    )
    parser.add_argument(
        "--section",
        choices=["timeline", "journey", "flight", "latency", "fabric", "all"],
        default="all",
    )
    parser.add_argument(
        "--component", default=None,
        help="flight section: only components whose name contains this "
        "substring (e.g. 'switch.s3')",
    )
    parser.add_argument(
        "--slowest", type=int, default=1,
        help="journey section: hop timelines for the K slowest cells",
    )
    args = parser.parse_args(argv)

    records = load_records(args.trace)
    if records is None:
        return 2
    if not records:
        print(f"{args.trace}: no trace records (empty or fully truncated)")
        return 0
    print(build_trace_summary(records))
    print()
    sections: List[str] = []
    if args.section in ("timeline", "all"):
        sections.append(build_timeline(records))
    if args.section in ("journey", "all"):
        has_journeys = any(r.get("cat") == "journey" for r in records)
        if has_journeys or args.section == "journey":
            sections.append(build_journey(records, slowest=args.slowest))
    if args.section in ("flight", "all"):
        has_flight = any(
            r.get("cat") in ("flight", "flight.meta") for r in records
        )
        if has_flight or args.section == "flight":
            sections.append(build_flight(records, component=args.component))
    snapshot: Dict[str, Any] = {}
    if args.metrics:
        with open(args.metrics, "r", encoding="utf-8") as stream:
            snapshot = json.load(stream)
    if args.section in ("latency", "all"):
        if snapshot:
            sections.append(build_vc_latency(snapshot))
        elif args.section == "latency":
            sections.append("(no metrics snapshot given: use --metrics)")
    if args.section in ("fabric", "all"):
        if snapshot:
            sections.append(build_fabric_summary(snapshot))
        elif args.section == "fabric":
            sections.append("(no metrics snapshot given: use --metrics)")
    print("\n\n".join(sections))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
