#!/usr/bin/env python
"""Render a captured trace + metrics snapshot as human-readable reports.

Input is what the observability layer writes (see ``repro.obs``): a JSON
Lines trace from :meth:`Tracer.write_jsonl` and, optionally, a metrics
snapshot from :meth:`MetricsRegistry.write_json` (or
``Network.metrics_snapshot()`` dumped to JSON).  Every ``bench_e*``
experiment produces both when run with ``--trace-out=DIR``::

    PYTHONPATH=src python -m pytest benchmarks/bench_e4_reconfiguration.py \\
        --trace-out=/tmp/traces
    PYTHONPATH=src python tools/trace_report.py \\
        /tmp/traces/<test>.trace.jsonl --metrics /tmp/traces/<test>.metrics.json

Reports:

- **reconfiguration timeline**: every epoch observed in the ``reconfig``
  category, with its initiator, participant count, settle time (first
  ``epoch.begin`` to last ``epoch.end``), and whether it was superseded;
  port-monitor timeouts and skeptic verdict flips are listed inline.
- **per-VC latency table**: from the metrics snapshot's
  ``vc<k>.cell_latency`` tallies (any node), plus packet latency.
- **fabric utilization**: fabric/crossbar nodes' delivered counts and
  utilization gauges.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any, Dict, List, Optional

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

from repro.analysis.tables import Table  # noqa: E402
from repro.obs import read_jsonl  # noqa: E402


# ----------------------------------------------------------------------
# reconfiguration timeline
# ----------------------------------------------------------------------
def build_timeline(records: List[Dict[str, Any]]) -> str:
    """Group ``reconfig`` records by epoch tag and render the timeline."""
    epochs: Dict[str, Dict[str, Any]] = {}
    order: List[str] = []
    monitor_events: List[Dict[str, Any]] = []
    skeptic_events: List[Dict[str, Any]] = []

    for record in records:
        if record.get("cat") != "reconfig":
            continue
        name = record.get("name", "")
        data = record.get("data", {})
        if name.startswith("epoch."):
            tag = str(data.get("tag", "?"))
            epoch = epochs.get(tag)
            if epoch is None:
                epoch = epochs[tag] = {
                    "tag": tag,
                    "triggered_by": None,
                    "first_begin": None,
                    "last_end": None,
                    "participants": set(),
                    "completions": 0,
                    "watchdogs": 0,
                }
                order.append(tag)
            t = record["t"]
            if name == "epoch.trigger":
                epoch["triggered_by"] = record.get("comp")
            elif name == "epoch.begin":
                epoch["participants"].add(record.get("comp"))
                if epoch["first_begin"] is None or t < epoch["first_begin"]:
                    epoch["first_begin"] = t
            elif name == "epoch.end":
                epoch["completions"] += 1
                if epoch["last_end"] is None or t > epoch["last_end"]:
                    epoch["last_end"] = t
            elif name == "epoch.watchdog":
                epoch["watchdogs"] += 1
        elif name == "monitor.timeout":
            monitor_events.append(record)
        elif name.startswith("skeptic."):
            skeptic_events.append(record)

    lines: List[str] = ["Reconfiguration timeline", "========================"]
    if not epochs:
        lines.append("(no reconfiguration events in trace)")
    table = Table(
        ["epoch tag", "initiator", "begin (us)", "settle (us)",
         "participants", "completed", "status"],
    )
    for tag in order:
        epoch = epochs[tag]
        participants = len(epoch["participants"])
        begin = epoch["first_begin"]
        if epoch["last_end"] is not None and begin is not None:
            settle = epoch["last_end"] - begin
        else:
            settle = None
        if epoch["completions"] and epoch["completions"] >= participants:
            status = "settled"
        elif epoch["completions"]:
            status = "partial"
        else:
            status = "superseded"
        if epoch["watchdogs"]:
            status += f" ({epoch['watchdogs']} watchdog)"
        table.add_row(
            tag,
            epoch["triggered_by"] or "-",
            begin if begin is not None else "-",
            settle if settle is not None else "-",
            participants,
            epoch["completions"],
            status,
        )
    if epochs:
        lines.append(table.render())

    if skeptic_events:
        lines.append("")
        verdicts = Table(
            ["t (us)", "port", "event", "detail"], title="Skeptic verdicts"
        )
        for record in skeptic_events:
            data = record.get("data", {})
            if record["name"] == "skeptic.verdict":
                detail = f"-> {data.get('verdict')} (level {data.get('level')})"
            elif record["name"] == "skeptic.probation":
                detail = f"probation until {data.get('until')}"
            else:
                detail = f"failure in {data.get('state')} (level {data.get('level')})"
            verdicts.add_row(
                record["t"], record.get("comp", "-"),
                record["name"].split(".", 1)[1], detail,
            )
        lines.append(verdicts.render())

    if monitor_events:
        lines.append("")
        shown = monitor_events[:20]
        timeouts = Table(
            ["t (us)", "port", "seq", "misses"],
            title=f"Port-monitor timeouts ({len(monitor_events)} total"
            + (", first 20 shown)" if len(monitor_events) > 20 else ")"),
        )
        for record in shown:
            data = record.get("data", {})
            timeouts.add_row(
                record["t"], record.get("comp", "-"),
                data.get("seq", "-"),
                f"{data.get('misses', '-')}/{data.get('threshold', '-')}",
            )
        lines.append(timeouts.render())
    return "\n".join(lines)


# ----------------------------------------------------------------------
# per-VC latency
# ----------------------------------------------------------------------
def build_vc_latency(snapshot: Dict[str, Any]) -> str:
    lines = ["Per-VC latency", "=============="]
    table = Table(
        ["node", "vc", "cells", "mean (us)", "p50", "p90", "p99", "max"]
    )
    found = 0
    for path in sorted(snapshot):
        tallies = snapshot[path].get("tallies", {})
        for name in sorted(tallies):
            if not name.endswith(".cell_latency"):
                continue
            stats = tallies[name]
            if not stats.get("count"):
                continue
            found += 1
            vc = name.split(".", 1)[0]
            table.add_row(
                path, vc, stats["count"], stats["mean"],
                stats["p50"], stats["p90"], stats["p99"], stats["max"],
            )
    if found:
        lines.append(table.render())
    else:
        lines.append("(no cell-latency tallies in snapshot)")

    packet = Table(["node", "packets", "mean (us)", "p50", "p99", "max"],
                   title="Packet latency")
    have_packets = 0
    for path in sorted(snapshot):
        stats = snapshot[path].get("tallies", {}).get("packet_latency")
        if not stats or not stats.get("count"):
            continue
        have_packets += 1
        packet.add_row(
            path, stats["count"], stats["mean"], stats["p50"],
            stats["p99"], stats["max"],
        )
    if have_packets:
        lines.append("")
        lines.append(packet.render())
    return "\n".join(lines)


# ----------------------------------------------------------------------
# fabric utilization
# ----------------------------------------------------------------------
def build_fabric_summary(snapshot: Dict[str, Any]) -> str:
    lines = ["Fabric utilization", "=================="]
    table = Table(
        ["node", "slots", "delivered", "dropped", "utilization",
         "latency p99 (slots)"]
    )
    found = 0
    for path in sorted(snapshot):
        node = snapshot[path]
        gauges = node.get("gauges", {})
        if "utilization" not in gauges:
            continue
        found += 1
        latency = node.get("tallies", {}).get("latency_slots", {})
        slots = gauges.get("slots", gauges.get("cells_transferred", 0))
        table.add_row(
            path,
            slots,
            gauges.get("cells_delivered", gauges.get("cells_transferred", 0)),
            gauges.get("cells_dropped", 0),
            f"{gauges['utilization']:.3f}",
            latency.get("p99", "-") if latency.get("count") else "-",
        )
    if found:
        lines.append(table.render())
    else:
        lines.append("(no fabric/crossbar nodes in snapshot)")
    return "\n".join(lines)


def build_trace_summary(records: List[Dict[str, Any]]) -> str:
    by_cat: Dict[str, int] = {}
    for record in records:
        cat = record.get("cat", "?")
        by_cat[cat] = by_cat.get(cat, 0) + 1
    t_lo = min((r["t"] for r in records), default=0)
    t_hi = max((r["t"] for r in records), default=0)
    parts = ", ".join(f"{c}={n}" for c, n in sorted(by_cat.items()))
    return (
        f"{len(records)} trace records over t=[{t_lo:.1f}, {t_hi:.1f}] "
        f"({parts})"
    )


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Render a JSONL trace and metrics snapshot as reports."
    )
    parser.add_argument("trace", help="JSONL trace file (Tracer.write_jsonl)")
    parser.add_argument(
        "--metrics", default=None,
        help="metrics snapshot JSON (MetricsRegistry.write_json)",
    )
    parser.add_argument(
        "--section", choices=["timeline", "latency", "fabric", "all"],
        default="all",
    )
    args = parser.parse_args(argv)

    records = read_jsonl(args.trace)
    print(build_trace_summary(records))
    print()
    sections: List[str] = []
    if args.section in ("timeline", "all"):
        sections.append(build_timeline(records))
    snapshot: Dict[str, Any] = {}
    if args.metrics:
        with open(args.metrics, "r", encoding="utf-8") as stream:
            snapshot = json.load(stream)
    if args.section in ("latency", "all"):
        if snapshot:
            sections.append(build_vc_latency(snapshot))
        elif args.section == "latency":
            sections.append("(no metrics snapshot given: use --metrics)")
    if args.section in ("fabric", "all"):
        if snapshot:
            sections.append(build_fabric_summary(snapshot))
        elif args.section == "fabric":
            sections.append("(no metrics snapshot given: use --metrics)")
    print("\n\n".join(sections))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
