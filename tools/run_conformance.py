#!/usr/bin/env python
"""One-shot conformance gate: digest stability + differential sweep + lint.

Certifies the repo's determinism contract (DESIGN.md, "Determinism
contract") in three stages:

1. **Digest stability** -- runs the canonical replay scenario
   (:func:`repro.conform.digest.digest_scenario`) several times in this
   process and once per ``PYTHONHASHSEED`` value in a subprocess; every
   run must produce the identical hex digest.
2. **Differential sweep** -- drives the reference matchers
   (``Pim``/``Islip``/``FifoScheduler``) against their bitmask fast-path
   counterparts cell-by-cell from identical seeds across fabric sizes
   and load patterns, cross-checks AN1 against AN2 routing on shared
   random topologies, drives batched (cell-train) links against the
   per-cell reference schedule under scripted faults, proves the
   whole-fabric slot engine (:mod:`repro.fastpath`) bit-identical to
   per-switch scalar stepping on both its backends, and checks the
   fabric slot driver leaves traffic outcomes untouched while executing
   fewer kernel events.  Any divergence is reported as the first
   divergent case and fails the gate.
3. **Nondeterminism lint** -- ``tools/lint_determinism.py`` over
   ``src/repro``.

Exit status 0 iff all three pass.

Usage::

    python tools/run_conformance.py [--seeds N] [--runs N] [--quick]
"""

from __future__ import annotations

import argparse
import os
import subprocess
import sys
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src"
sys.path.insert(0, str(SRC))

from repro.conform.digest import digest_scenario  # noqa: E402
from repro.conform.oracle import (  # noqa: E402
    fastpath_sweep,
    link_sweep,
    matcher_sweep,
    routing_sweep,
    slot_driver_sweep,
)

HASHSEEDS = ("0", "1", "12345", "random")


def _subprocess_digest(seed: int, hashseed: str) -> str:
    """Compute the scenario digest in a fresh interpreter."""
    code = (
        "from repro.conform.digest import digest_scenario;"
        f"print(digest_scenario(seed={seed}))"
    )
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = hashseed
    env["PYTHONPATH"] = str(SRC)
    out = subprocess.run(
        [sys.executable, "-c", code],
        capture_output=True, text=True, env=env, cwd=str(REPO), check=True,
    )
    return out.stdout.strip()


def check_digest_stability(runs: int, scenario_seed: int) -> bool:
    print(f"[1/3] digest stability (seed={scenario_seed}) ...")
    t0 = time.time()
    digests = [digest_scenario(seed=scenario_seed) for _ in range(runs)]
    for hashseed in HASHSEEDS:
        digests.append(_subprocess_digest(scenario_seed, hashseed))
    distinct = set(digests)
    ok = len(distinct) == 1
    label = "OK" if ok else "FAIL"
    print(
        f"      {runs} in-process runs + {len(HASHSEEDS)} PYTHONHASHSEED "
        f"subprocesses -> {len(distinct)} distinct digest(s) "
        f"[{label}, {time.time() - t0:.1f}s]"
    )
    if ok:
        print(f"      digest {digests[0]}")
    else:
        for d in sorted(distinct):
            print(f"      saw {d}")
        # Leave an autopsy artifact: replay the scenario once more with
        # its flight recorder dumped, so CI can upload what the protocol
        # layers were doing in the run that produced this digest.
        directory = os.environ.get("REPRO_FLIGHT_DIR") or "flight-dumps"
        dump = Path(directory) / f"flight-digest-mismatch-seed{scenario_seed}.jsonl"
        try:
            digest_scenario(seed=scenario_seed, flight_dump=str(dump))
            print(f"      flight recorder dumped to {dump}")
        except OSError as exc:  # pragma: no cover - dump dir unwritable
            print(f"      (flight dump failed: {exc})")
    return ok


def check_differential(n_seeds: int, n_slots: int) -> bool:
    print(f"[2/3] differential sweep ({n_seeds} seeds) ...")
    t0 = time.time()
    seeds = list(range(n_seeds))
    divergences, corpus = matcher_sweep(seeds, n_slots=n_slots)
    routing_div, routing_corpus = routing_sweep(seeds)
    link_div, link_corpus = link_sweep(seeds)
    # The fastpath differential is heavier per case (scalar twins + the
    # stacked engine, both backends); cap its seed list so the stage
    # stays proportionate to the matcher sweep.
    fastpath_seeds = seeds[: max(2, n_seeds // 4)]
    fastpath_div, fastpath_corpus = fastpath_sweep(
        fastpath_seeds, n_slots=min(n_slots, 120)
    )
    driver_div, driver_corpus = slot_driver_sweep(fastpath_seeds[:2])
    total = (
        len(divergences) + len(routing_div) + len(link_div)
        + len(fastpath_div) + len(driver_div)
    )
    label = "OK" if total == 0 else "FAIL"
    print(
        f"      {len(corpus)} matcher cases + {len(routing_corpus)} "
        f"routing cases + {len(link_corpus)} link cases + "
        f"{len(fastpath_corpus)} fastpath cases + {len(driver_corpus)} "
        f"slot-driver cases -> "
        f"{total} divergence(s) [{label}, {time.time() - t0:.1f}s]"
    )
    for div in (
        list(divergences) + list(routing_div) + list(link_div)
        + list(fastpath_div) + list(driver_div)
    ):
        print(f"      {div}")
    return total == 0


def check_lint() -> bool:
    print("[3/3] nondeterminism lint ...")
    out = subprocess.run(
        [sys.executable, str(REPO / "tools" / "lint_determinism.py")],
        capture_output=True, text=True, cwd=str(REPO),
    )
    ok = out.returncode == 0
    for line in out.stdout.strip().splitlines():
        print(f"      {line}")
    if out.stderr.strip():
        print(out.stderr.strip())
    return ok


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--seeds", type=int, default=20,
        help="seeds per differential sweep (default 20)",
    )
    parser.add_argument(
        "--runs", type=int, default=3,
        help="in-process digest repetitions (default 3)",
    )
    parser.add_argument(
        "--scenario-seed", type=int, default=1,
        help="seed for the digest scenario (default 1)",
    )
    parser.add_argument(
        "--slots", type=int, default=200,
        help="cell slots per matcher case (default 200)",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="reduced sweep for local iteration (5 seeds, 60 slots)",
    )
    args = parser.parse_args(argv)
    if args.quick:
        args.seeds, args.slots = 5, 60

    results = [
        check_digest_stability(args.runs, args.scenario_seed),
        check_differential(args.seeds, args.slots),
        check_lint(),
    ]
    if all(results):
        print("conformance: PASS")
        return 0
    print("conformance: FAIL")
    return 1


if __name__ == "__main__":
    sys.exit(main())
