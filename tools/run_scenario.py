#!/usr/bin/env python
"""Run a fault-injection scenario and report its invariant verdicts.

The paper's pull-the-plug claim, as a command::

    PYTHONPATH=src python tools/run_scenario.py pull_the_plug

Other canned scenarios (``--list`` to enumerate)::

    PYTHONPATH=src python tools/run_scenario.py flapping_link
    PYTHONPATH=src python tools/run_scenario.py credit_loss

Randomized chaos (random bi-connected topology + random plan,
reproducible from the seed)::

    PYTHONPATH=src python tools/run_scenario.py --random 42 --faults 4

The exit code is 0 only if every invariant passed, so CI can gate on
it.  ``--trace-out FILE`` additionally writes the JSONL trace
(categories: reconfig, flowcontrol, faults) for
``tools/trace_report.py``; the reconfiguration timeline is rendered
inline either way.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

from repro.faults import (  # noqa: E402
    CANNED,
    ScenarioRunner,
    build_random_scenario,
)
from repro.obs import Tracer  # noqa: E402

from trace_report import build_timeline  # noqa: E402

TRACE_CATEGORIES = ("reconfig", "flowcontrol", "faults")


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Run a fault scenario and check recovery invariants."
    )
    parser.add_argument(
        "scenario", nargs="?", default=None,
        help=f"canned scenario name ({', '.join(sorted(CANNED))})",
    )
    parser.add_argument(
        "--random", type=int, default=None, metavar="SEED",
        help="run a randomized chaos scenario derived from SEED instead",
    )
    parser.add_argument(
        "--faults", type=int, default=3,
        help="number of faults in a --random plan (default 3)",
    )
    parser.add_argument(
        "--seed", type=int, default=None,
        help="override the canned scenario's default network seed",
    )
    parser.add_argument(
        "--trace-out", default=None, metavar="FILE",
        help="write the JSONL trace here for tools/trace_report.py",
    )
    parser.add_argument(
        "--flight-dir", default=None, metavar="DIR",
        help="dump the flight recorder here when an invariant fails "
        "(defaults to $REPRO_FLIGHT_DIR if set)",
    )
    parser.add_argument(
        "--list", action="store_true", help="list canned scenarios and exit"
    )
    parser.add_argument(
        "--no-timeline", action="store_true",
        help="skip the reconfiguration timeline",
    )
    args = parser.parse_args(argv)

    if args.list:
        for name, scenario in sorted(CANNED.items()):
            print(f"{name:16s} {scenario.claim}")
        return 0

    if args.random is not None:
        net, plan, loads = build_random_scenario(
            args.random, n_faults=args.faults
        )
        title = f"chaos (seed {args.random}, {len(plan)} faults)"
    elif args.scenario is not None:
        scenario = CANNED.get(args.scenario)
        if scenario is None:
            parser.error(
                f"unknown scenario {args.scenario!r}; "
                f"choose from {', '.join(sorted(CANNED))} or use --random"
            )
        if args.seed is not None:
            net, plan, loads = scenario.build(args.seed)
        else:
            net, plan, loads = scenario.build()
        title = f"{scenario.name} -- {scenario.claim}"
    else:
        parser.error("give a scenario name, --random SEED, or --list")
        return 2  # unreachable; parser.error raises

    tracer = Tracer(categories=set(TRACE_CATEGORIES))
    net.sim.tracer = tracer

    print(f"scenario: {title}")
    print()
    result = ScenarioRunner(net, plan, loads, flight_dir=args.flight_dir).run()
    print(result.report())

    if args.trace_out:
        Path(args.trace_out).parent.mkdir(parents=True, exist_ok=True)
        count = tracer.write_jsonl(args.trace_out)
        print(f"\n{count} trace records written to {args.trace_out}")

    if not args.no_timeline:
        print()
        print(build_timeline([r.to_dict() for r in tracer.records]))
        fault_records = [r for r in tracer.records if r.category == "faults"]
        if fault_records:
            print()
            print("Fault events")
            print("============")
            for record in fault_records:
                if record.name in ("scenario.begin", "scenario.end"):
                    continue
                data = ", ".join(
                    f"{k}={v}" for k, v in record.payload.items()
                )
                print(f"  t={record.time:12.1f}us  {record.name:28s} {data}")

    return 0 if result.passed else 1


if __name__ == "__main__":
    raise SystemExit(main())
