#!/usr/bin/env python
"""Whole-fabric slot engine demo: every switch of a fat-tree, one pass.

Builds the k-ary fat-tree (``fat_tree(k=16)`` is 320 switches of 16
ports each -- the engine's native lane width), gives every switch a
bitmask-PIM VOQ fabric, and advances all of them through the same
frozen uniform-load trace twice:

- **scalar**: each fabric offered and stepped one switch at a time,
  the way ``Network`` advances slots without the fastpath engine;
- **engine**: all fabrics registered into one
  :class:`~repro.fastpath.engine.FabricArrayEngine` and advanced with
  one vectorized (or pure-Python stacked, when numpy is absent) pass
  per slot.

The two runs must deliver identical work -- the tool exits non-zero on
any checksum mismatch -- and the timings show what fabric-wide batching
buys at hundreds of switches.  Timings are informational; the gating
comparison lives in ``benchmarks/bench_speed.py``
(``fabric_slot_engine_speedup``).

Usage::

    python tools/run_fastpath.py [--k 16] [--slots 300] [--load 1.0]
"""

from __future__ import annotations

import argparse
import random
import sys
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.core.matching.bitmask import BitmaskPim  # noqa: E402
from repro.fastpath.backend import load_numpy  # noqa: E402
from repro.fastpath.engine import FabricArrayEngine  # noqa: E402
from repro.net.topogen import fat_tree  # noqa: E402
from repro.switch.fabric import VoqFabric  # noqa: E402

TRACE_SEED = 42
MATCHER_SEED = 1


def build_fabrics(n_switches: int, n_ports: int):
    return [
        VoqFabric(
            n_ports,
            BitmaskPim(
                n_ports, iterations=3, rng=random.Random(MATCHER_SEED + j)
            ),
        )
        for j in range(n_switches)
    ]


def build_trace(n_switches: int, n_ports: int, load: float, slots: int):
    rng = random.Random(TRACE_SEED)
    rng_random = rng.random
    return [
        [
            [
                (i, int(rng_random() * n_ports))
                for i in range(n_ports)
                if rng_random() < load
            ]
            for _ in range(n_switches)
        ]
        for _ in range(slots)
    ]


def checksum(fabrics) -> int:
    delivered = sum(f.metrics.cells_delivered for f in fabrics)
    waited = sum(sum(f.metrics.latency._samples) for f in fabrics)
    return delivered * 1_000_003 + waited


def run_scalar(trace, n_switches: int, n_ports: int) -> tuple:
    fabrics = build_fabrics(n_switches, n_ports)
    start = time.perf_counter()
    for slot, per_fabric in enumerate(trace):
        for j, fabric in enumerate(fabrics):
            fabric.offer_batch(per_fabric[j], slot)
        for fabric in fabrics:
            fabric.step(slot)
    return time.perf_counter() - start, checksum(fabrics)


def run_engine(trace, n_switches: int, n_ports: int) -> tuple:
    np = load_numpy()
    fabrics = build_fabrics(n_switches, n_ports)
    engine = FabricArrayEngine(backend="auto")
    for fabric in fabrics:
        engine.register(fabric)
    if np is not None:
        trace = [
            [
                (
                    np.asarray([c[0] for c in cells], np.int64),
                    np.asarray([c[1] for c in cells], np.int64),
                )
                for cells in per_fabric
            ]
            for per_fabric in trace
        ]
    start = time.perf_counter()
    if np is not None:
        for slot, per_fabric in enumerate(trace):
            for j, fabric in enumerate(fabrics):
                ins, outs = per_fabric[j]
                engine.offer_arrays(fabric, ins, outs, slot)
            engine.step_all(slot)
    else:
        for slot, per_fabric in enumerate(trace):
            for j, fabric in enumerate(fabrics):
                engine.offer_batch(fabric, per_fabric[j], slot)
            engine.step_all(slot)
    engine.sync()
    elapsed = time.perf_counter() - start
    return elapsed, checksum(fabrics), engine


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--k", type=int, default=16,
        help="fat-tree arity (default 16: 320 switches, 16 ports each)",
    )
    parser.add_argument(
        "--slots", type=int, default=300,
        help="slots to advance the whole fabric (default 300)",
    )
    parser.add_argument(
        "--load", type=float, default=1.0,
        help="Bernoulli offered load per input port (default 1.0)",
    )
    args = parser.parse_args(argv)

    structured = fat_tree(args.k)
    n_switches = len(structured.topology.switches())
    n_ports = args.k
    print(
        f"fat_tree(k={args.k}): {n_switches} switches x {n_ports} ports, "
        f"{args.slots} slots at load {args.load}"
    )
    trace = build_trace(n_switches, n_ports, args.load, args.slots)

    scalar_s, scalar_sum = run_scalar(trace, n_switches, n_ports)
    engine_s, engine_sum, engine = run_engine(trace, n_switches, n_ports)
    backend = "numpy" if engine.np is not None else "python"
    print(
        f"  scalar : {scalar_s:.3f}s "
        f"({scalar_s / args.slots * 1e6:.0f} us/slot)"
    )
    print(
        f"  engine : {engine_s:.3f}s "
        f"({engine_s / args.slots * 1e6:.0f} us/slot) "
        f"[backend={backend}, {engine.n_vectorized}/{n_switches} "
        f"vectorized]"
    )
    if engine_sum != scalar_sum:
        print(
            f"  FAIL: work checksums differ "
            f"(scalar {scalar_sum}, engine {engine_sum})"
        )
        return 1
    print(
        f"  work checksum {scalar_sum} identical; "
        f"speedup {scalar_s / engine_s:.2f}x"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
