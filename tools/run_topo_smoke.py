#!/usr/bin/env python
"""Topology-scale smoke gate: structured fabrics + incremental recompute.

Certifies the datacenter-scale topology engine end to end, in three
stages:

1. **Generation** -- builds a k-ary fat-tree (default k=8: 80 switches,
   256 switch cables), checks the structural invariants (tier counts,
   port budget, switch-connectivity) and that the up*/down* orientation
   of the full fabric levels it into at most 4 tiers.
2. **Reconfiguration epoch** -- runs one three-phase reconfiguration
   over an in-memory bus on a pod-scale slice of the fabric, fails a
   cable, runs the follow-up epoch, and checks every agent converged on
   the same view with the expected :class:`TopologyDelta`.
3. **Incremental recompute** -- applies single-cable-failure deltas to
   the full-fabric orientation and checks each result is digest-identical
   to a from-scratch rebuild (levels, adjacency structure, and sampled
   ``shortest_legal_path`` answers), and that disconnecting deltas raise
   exactly as a rebuild would.

Exit status 0 iff all stages pass.

Usage::

    python tools/run_topo_smoke.py [--k K] [--deltas N]
"""

from __future__ import annotations

import argparse
import random
import sys
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src"
sys.path.insert(0, str(SRC))

from repro._types import NodeId  # noqa: E402
from repro.core.reconfig.algorithm import ReconfigurationAgent  # noqa: E402
from repro.core.routing.updown import UpDownOrientation  # noqa: E402
from repro.net.topogen import (  # noqa: E402
    TIER_AGGREGATION,
    TIER_CORE,
    TIER_EDGE,
    fat_tree,
)
from repro.net.topology import (  # noqa: E402
    Edge,
    Topology,
    TopologyDelta,
    TopologyView,
)
from repro.sim.kernel import Simulator  # noqa: E402

SEED = 42


class _Bus:
    """In-memory reconfiguration bus (mirrors the unit-test harness)."""

    def __init__(self, view: TopologyView, delay_us: float = 10.0) -> None:
        self.sim = Simulator()
        self.delay_us = delay_us
        self.view = view
        self.dropped: set = set()
        self.wiring = {}
        for (na, pa), (nb, pb) in view.edges:
            self.wiring[(na, pa)] = (nb, pb)
            self.wiring[(nb, pb)] = (na, pa)
        self.agents = {}
        for node in view.switches():
            transport = _Transport(self, node)
            self.agents[node] = ReconfigurationAgent(
                self.sim, node, transport, watchdog_us=50_000.0
            )

    def edges_of(self, node: NodeId):
        return {
            edge
            for edge in self.view.edges
            if edge not in self.dropped and node in (edge[0][0], edge[1][0])
        }

    def ports_of(self, node: NodeId):
        ports = []
        for edge in self.edges_of(node):
            (na, pa), (nb, pb) = edge
            if na == node and nb.is_switch:
                ports.append(pa)
            elif nb == node and na.is_switch:
                ports.append(pb)
        return sorted(ports)

    def deliver(self, sender: NodeId, port: int, message) -> None:
        peer = self.wiring.get((sender, port))
        if peer is None:
            return
        a, b = (sender, port), peer
        edge = (a, b) if a <= b else (b, a)
        if edge in self.dropped:
            return
        node, peer_port = peer
        self.sim.schedule(
            self.delay_us, self.agents[node].handle, peer_port, message
        )

    def drop(self, edge: Edge) -> None:
        self.dropped.add(edge)

    def surviving_view(self) -> TopologyView:
        return TopologyView(frozenset(self.view.edges - self.dropped))


class _Transport:
    def __init__(self, bus: _Bus, node: NodeId) -> None:
        self.bus = bus
        self.node = node

    def reconfig_ports(self):
        return self.bus.ports_of(self.node)

    def local_edges(self):
        return self.bus.edges_of(self.node)

    def send_reconfig(self, port_index: int, message) -> None:
        self.bus.deliver(self.node, port_index, message)


def fail(message: str) -> None:
    print(f"FAIL {message}")
    sys.exit(1)


def check_generation(k: int):
    structured = fat_tree(k)
    half = k // 2
    n_switches = len(structured.topology.switches())
    if n_switches != 5 * k * k // 4:
        fail(f"fat_tree({k}): {n_switches} switches, want {5 * k * k // 4}")
    for tier, want in (
        (TIER_CORE, half * half),
        (TIER_AGGREGATION, k * half),
        (TIER_EDGE, k * half),
    ):
        got = len(structured.switches_in_tier(tier))
        if got != want:
            fail(f"fat_tree({k}): {got} {tier} switches, want {want}")
    view = structured.view()
    root = structured.default_root()
    orientation = UpDownOrientation(view, root)  # raises if disconnected
    depth = max(orientation.levels.values())
    if depth > 4:
        fail(f"fat_tree({k}) orientation depth {depth} > 4")
    print(
        f"  ok fat_tree({k}): {n_switches} switches, "
        f"{len(view.edges)} cables, orientation depth {depth}"
    )
    return structured, view, root, orientation


def check_epoch(k: int):
    # One pod plus the core: the reconfiguration protocol is O(edges)
    # messages, so the slice keeps the smoke job fast while still
    # exercising a multi-tier epoch with hundreds of participants.
    slice_k = min(k, 8)
    structured = fat_tree(slice_k)
    bus = _Bus(structured.view())
    initiator = structured.switches_in_tier(TIER_EDGE)[0]
    bus.agents[initiator].trigger()
    bus.sim.run(until=40_000.0)
    agents = list(bus.agents.values())
    if any(agent.active for agent in agents):
        fail("first epoch did not converge")
    views = {agent.view for agent in agents}
    if len(views) != 1 or views != {bus.view}:
        fail("agents disagree on the first epoch's view")

    # Fail one agg-core cable, then run the follow-up epoch.
    victim = sorted(
        edge
        for edge in bus.view.edges
        if structured.tier[edge[0][0]] == TIER_CORE
        or structured.tier[edge[1][0]] == TIER_CORE
    )[0]
    bus.drop(victim)
    survivor = victim[1][0] if victim[1][0].is_switch else victim[0][0]
    bus.agents[survivor].trigger()
    bus.sim.run(until=120_000.0)
    if any(agent.active for agent in agents):
        fail("second epoch did not converge")
    views = {agent.view for agent in agents}
    if views != {bus.surviving_view()}:
        fail("agents disagree on the post-failure view")
    deltas = {agent.view_delta for agent in agents}
    want = TopologyDelta(removed=frozenset([victim]))
    if deltas != {want}:
        fail(f"view_delta {deltas} != {{{want}}}")
    print(
        f"  ok reconfig: fat_tree({slice_k}) epoch, 1 cable failed, "
        f"{len(agents)} agents converged, delta tracked"
    )


def check_incremental(view, root, base, n_deltas: int):
    switch_edges = sorted(
        edge
        for edge in view.edges
        if edge[0][0].is_switch and edge[1][0].is_switch
    )
    rng = random.Random(SEED)
    sampled = rng.sample(switch_edges, n_deltas)
    switches = sorted(base.levels)
    t_inc = t_full = 0.0
    for edge in sampled:
        delta = TopologyDelta(removed=frozenset([edge]))
        start = time.perf_counter()
        incremental = base.apply_delta(delta)
        t_inc += time.perf_counter() - start
        start = time.perf_counter()
        rebuilt = UpDownOrientation(delta.apply_to(view), root)
        t_full += time.perf_counter() - start
        if incremental.levels != rebuilt.levels:
            fail(f"levels diverge after removing {edge}")
        if incremental.structure_digest() != rebuilt.structure_digest():
            fail(f"structure digest diverges after removing {edge}")
        for _ in range(20):
            a, b = rng.choice(switches), rng.choice(switches)
            if incremental.shortest_legal_path(
                a, b
            ) != rebuilt.shortest_legal_path(a, b):
                fail(f"path {a}->{b} diverges after removing {edge}")
    print(
        f"  ok incremental: {n_deltas} single-cable deltas digest-equal "
        f"to rebuild (inc {t_inc * 1e3:.0f}ms vs rebuild {t_full * 1e3:.0f}ms)"
    )

    # A disconnecting delta must raise exactly like the rebuild.
    line = Topology.line(5).view()
    small = UpDownOrientation(line, sorted(line.switches())[0])
    cut = sorted(line.edges)[2]
    try:
        small.apply_delta(TopologyDelta(removed=frozenset([cut])))
    except ValueError:
        print("  ok incremental: disconnecting delta raises like rebuild")
    else:
        fail("disconnecting delta did not raise")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--k", type=int, default=8, help="fat-tree arity")
    parser.add_argument(
        "--deltas", type=int, default=6, help="single-cable deltas to check"
    )
    options = parser.parse_args(argv)
    started = time.perf_counter()
    print(f"[1/3] generation (k={options.k})")
    structured, view, root, orientation = check_generation(options.k)
    print("[2/3] reconfiguration epoch")
    check_epoch(options.k)
    print("[3/3] incremental recompute vs rebuild")
    check_incremental(view, root, orientation, options.deltas)
    print(f"topology smoke passed in {time.perf_counter() - started:.1f}s")
    return 0


if __name__ == "__main__":
    sys.exit(main())
