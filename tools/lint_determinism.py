#!/usr/bin/env python
"""AST-based nondeterminism lint.

Flags source patterns that break the repo's determinism contract (see
DESIGN.md, "Determinism contract"):

- ``module-random`` -- draws from the module-level ``random`` stream
  (``random.random()``, ``random.choice(...)``, ``from random import
  choice``...).  All randomness must flow through seeded per-component
  streams (:mod:`repro.sim.random`); constructing ``random.Random(seed)``
  is allowed.
- ``set-iteration`` -- iterating a ``set``/``frozenset`` (literal,
  constructor, comprehension, or a name/attribute whose annotation or
  local assignment says set) in *protocol* modules.  Set iteration order
  depends on ``PYTHONHASHSEED`` whenever elements hash by identity or
  string, so protocol decisions derived from it are not replayable.
- ``dict-iteration`` -- iterating a dict (``.keys()``/``.values()``/
  ``.items()`` or a known-dict name) in protocol modules.  Dict iteration
  is insertion-ordered, but protocol dicts are routinely *built* by
  iterating sets, which launders hash order into "insertion order"; sort
  the keys or allowlist with a justification.
- ``id-ordering`` -- ``id(...)`` used inside a ``sorted``/``min``/``max``
  /``.sort`` call (directly or in its ``key``).  Memory addresses differ
  across runs; ordering by them is never replayable.

Sorting the iterable (``for x in sorted(s)``) silences the iteration
rules.  Intentional cases carry either an inline pragma::

    for edge in edges:  # det: allow(membership only, order never observed)

or an entry in the ``ALLOWLIST`` table below (path suffix, rule, line
substring), which exists so justified cases are reviewed in one place.

Usage::

    python tools/lint_determinism.py [--show-allowed] [paths...]

Exits 0 when no unallowed finding exists, 1 otherwise.  Defaults to
linting ``src/repro``.
"""

from __future__ import annotations

import argparse
import ast
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Set, Tuple

#: module path fragments treated as protocol code: the set-iteration rule
#: applies here (analysis/benchmark code may iterate freely).
PROTOCOL_PATHS: Tuple[str, ...] = (
    "core/matching/",
    "core/reconfig/",
    "core/routing/",
    "core/flowcontrol/",
    "switch/",
    "net/",
)

#: the subset where the dict-iteration rule also applies: protocol
#: *decision* code, where dict insertion order is routinely derived from
#: set iteration (requests_at_output built by walking request sets, cycle
#: graphs built from edge sets...).  Elsewhere dict iteration is plain
#: insertion order over deterministically-inserted keys and flagging it
#: is noise.
DECISION_PATHS: Tuple[str, ...] = (
    "core/matching/",
    "core/reconfig/",
    "core/routing/",
    "core/flowcontrol/",
)

#: calls whose result does not depend on argument iteration order; a
#: set/dict iterated directly inside them is not a finding.
ORDER_INSENSITIVE_CONSUMERS: frozenset = frozenset(
    {"sorted", "set", "frozenset", "sum", "len", "any", "all", "min", "max",
     "Counter", "dict"}
)

#: functions of the random module whose module-level use is a finding.
RANDOM_DRAWS: frozenset = frozenset(
    {
        "random", "uniform", "randint", "randrange", "choice", "choices",
        "sample", "shuffle", "seed", "getrandbits", "gauss", "expovariate",
        "betavariate", "normalvariate", "lognormvariate", "triangular",
        "vonmisesvariate", "paretovariate", "weibullvariate", "binomialvariate",
    }
)

#: reviewed-in-one-place allowances: (path suffix, rule, line substring).
ALLOWLIST: Tuple[Tuple[str, str, str], ...] = (
    # Currently empty: every justified case carries an inline
    # ``# det: allow(reason)`` pragma next to the code it excuses.
    # Entries are (path suffix, rule, line substring).
)

PRAGMA = "det: allow"


@dataclass(frozen=True)
class Finding:
    path: str
    line: int
    rule: str
    message: str
    allowed: bool
    reason: str = ""

    def __str__(self) -> str:
        mark = " [allowed]" if self.allowed else ""
        return f"{self.path}:{self.line}: {self.rule}: {self.message}{mark}"


def _is_protocol(path: Path) -> bool:
    text = str(path).replace("\\", "/")
    return any(fragment in text for fragment in PROTOCOL_PATHS)


def _is_decision(path: Path) -> bool:
    text = str(path).replace("\\", "/")
    return any(fragment in text for fragment in DECISION_PATHS)


def _pragma_reason(source_lines: List[str], lineno: int) -> Optional[str]:
    """The ``det: allow(...)`` reason covering ``lineno``, if any."""
    for candidate in (lineno, lineno - 1):
        if 1 <= candidate <= len(source_lines):
            line = source_lines[candidate - 1]
            index = line.find(PRAGMA)
            if index != -1:
                rest = line[index + len(PRAGMA):]
                if rest.startswith("("):
                    end = rest.find(")")
                    if end != -1:
                        return rest[1:end]
                return "unspecified"
    return None


class _Analyzer(ast.NodeVisitor):
    """One file's walk.  Collects findings; tracks set/dict-typed names."""

    SET_ANNOTATIONS = {"Set", "FrozenSet", "set", "frozenset", "MutableSet",
                       "AbstractSet"}
    DICT_ANNOTATIONS = {"Dict", "dict", "Mapping", "MutableMapping",
                        "DefaultDict", "OrderedDict", "Counter"}

    def __init__(
        self, path: Path, source: str, protocol: bool, decision: bool
    ) -> None:
        self.path = path
        self.source_lines = source.splitlines()
        self.protocol = protocol
        self.decision = decision
        self.findings: List[Finding] = []
        #: comprehension nodes appearing directly inside an
        #: order-insensitive consumer call; exempt from iteration rules.
        self._sanctioned: Set[int] = set()
        #: names bound to set-valued / dict-valued expressions, per scope.
        self._set_names: List[Set[str]] = [set()]
        self._dict_names: List[Set[str]] = [set()]
        #: attributes (self.x) annotated/assigned as sets / dicts.
        self._set_attrs: Set[str] = set()
        self._dict_attrs: Set[str] = set()
        self._random_aliases: Set[str] = set()

    # -- plumbing ------------------------------------------------------
    def _emit(self, node: ast.AST, rule: str, message: str) -> None:
        reason = _pragma_reason(self.source_lines, node.lineno)
        line_text = (
            self.source_lines[node.lineno - 1]
            if node.lineno <= len(self.source_lines) else ""
        )
        if reason is None:
            for suffix, allowed_rule, fragment in ALLOWLIST:
                if (
                    str(self.path).replace("\\", "/").endswith(suffix)
                    and allowed_rule == rule
                    and fragment in line_text
                ):
                    reason = f"allowlist: {fragment}"
                    break
        self.findings.append(
            Finding(
                path=str(self.path),
                line=node.lineno,
                rule=rule,
                message=message,
                allowed=reason is not None,
                reason=reason or "",
            )
        )

    def _push_scope(self) -> None:
        self._set_names.append(set())
        self._dict_names.append(set())

    def _pop_scope(self) -> None:
        self._set_names.pop()
        self._dict_names.pop()

    def _name_is_set(self, name: str) -> bool:
        return any(name in scope for scope in self._set_names)

    def _name_is_dict(self, name: str) -> bool:
        return any(name in scope for scope in self._dict_names)

    # -- classification ------------------------------------------------
    @staticmethod
    def _annotation_head(annotation: ast.AST) -> Optional[str]:
        node = annotation
        if isinstance(node, ast.Subscript):
            node = node.value
        if isinstance(node, ast.Attribute):
            return node.attr
        if isinstance(node, ast.Name):
            return node.id
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            # String annotation: take the head before '['.
            return node.value.split("[", 1)[0].strip().split(".")[-1]
        return None

    def _classify_value(self, value: ast.AST) -> Optional[str]:
        """'set', 'dict', or None for an assigned expression."""
        if isinstance(value, (ast.Set, ast.SetComp)):
            return "set"
        if isinstance(value, (ast.Dict, ast.DictComp)):
            return "dict"
        if isinstance(value, ast.Call):
            fn = value.func
            name = fn.id if isinstance(fn, ast.Name) else (
                fn.attr if isinstance(fn, ast.Attribute) else None
            )
            if name in ("set", "frozenset"):
                return "set"
            if name in ("dict", "defaultdict", "OrderedDict", "Counter"):
                return "dict"
        return None

    def _record_binding(self, target: ast.AST, kind: Optional[str]) -> None:
        if kind is None:
            return
        if isinstance(target, ast.Name):
            (self._set_names if kind == "set" else self._dict_names)[-1].add(
                target.id
            )
        elif (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
        ):
            (self._set_attrs if kind == "set" else self._dict_attrs).add(
                target.attr
            )

    def _iter_kind(self, node: ast.AST) -> Optional[Tuple[str, str]]:
        """(rule, description) when ``for ... in node`` is order-sensitive."""
        if isinstance(node, (ast.Set, ast.SetComp)):
            return "set-iteration", "a set expression"
        if isinstance(node, ast.Call):
            fn = node.func
            if isinstance(fn, ast.Name) and fn.id in ("set", "frozenset"):
                return "set-iteration", f"{fn.id}(...)"
            if isinstance(fn, ast.Attribute) and fn.attr in (
                "keys", "values", "items"
            ):
                return "dict-iteration", f".{fn.attr}()"
            if isinstance(fn, ast.Attribute) and fn.attr in (
                "union", "intersection", "difference", "symmetric_difference"
            ):
                return "set-iteration", f".{fn.attr}()"
        if isinstance(node, ast.Name):
            if self._name_is_set(node.id):
                return "set-iteration", f"set-valued name {node.id!r}"
            if self._name_is_dict(node.id):
                return "dict-iteration", f"dict-valued name {node.id!r}"
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
        ):
            if node.attr in self._set_attrs:
                return "set-iteration", f"set-valued attribute self.{node.attr}"
            if node.attr in self._dict_attrs:
                return "dict-iteration", f"dict-valued attribute self.{node.attr}"
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
        ):
            left = self._iter_kind(node.left)
            right = self._iter_kind(node.right)
            if (left and left[0] == "set-iteration") or (
                right and right[0] == "set-iteration"
            ):
                return "set-iteration", "a set operation"
        return None

    # -- visitors ------------------------------------------------------
    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            if alias.name == "random":
                self._random_aliases.add(alias.asname or "random")
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module == "random":
            drawn = [a.name for a in node.names if a.name in RANDOM_DRAWS]
            if drawn:
                self._emit(
                    node,
                    "module-random",
                    f"imports module-level draw(s) {', '.join(drawn)} "
                    f"from random; use repro.sim.random streams",
                )
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        fn = node.func
        if (
            isinstance(fn, ast.Attribute)
            and isinstance(fn.value, ast.Name)
            and fn.value.id in self._random_aliases
            and fn.attr in RANDOM_DRAWS
        ):
            self._emit(
                node,
                "module-random",
                f"draws from the shared module-level stream "
                f"({fn.value.id}.{fn.attr}); use a seeded per-component "
                f"Random from repro.sim.random",
            )
        if isinstance(fn, ast.Name) and fn.id in ("sorted", "min", "max"):
            self._check_id_ordering(node)
        if isinstance(fn, ast.Attribute) and fn.attr == "sort":
            self._check_id_ordering(node)
        if isinstance(fn, ast.Name) and fn.id in ORDER_INSENSITIVE_CONSUMERS:
            for arg in node.args:
                if isinstance(
                    arg,
                    (ast.GeneratorExp, ast.SetComp, ast.ListComp, ast.DictComp),
                ):
                    for generator in arg.generators:
                        self._sanctioned.add(id(generator.iter))
        self.generic_visit(node)

    def _check_id_ordering(self, call: ast.Call) -> None:
        # ``key=id`` passes the builtin itself, with no Call node to find.
        for keyword in call.keywords:
            if (
                keyword.arg == "key"
                and isinstance(keyword.value, ast.Name)
                and keyword.value.id == "id"
            ):
                self._emit(
                    call,
                    "id-ordering",
                    "orders by id(); memory addresses are not stable "
                    "across runs",
                )
                return
        for child in ast.walk(call):
            if child is call:
                continue
            if (
                isinstance(child, ast.Call)
                and isinstance(child.func, ast.Name)
                and child.func.id == "id"
            ):
                self._emit(
                    call,
                    "id-ordering",
                    "orders by id(); memory addresses are not stable "
                    "across runs",
                )
                return

    def _rule_applies(self, rule: str) -> bool:
        if rule == "set-iteration":
            return self.protocol
        return self.decision  # dict-iteration

    def visit_For(self, node: ast.For) -> None:
        kind = self._iter_kind(node.iter)
        if kind is not None:
            rule, description = kind
            if self._rule_applies(rule):
                self._emit(
                    node,
                    rule,
                    f"iterates {description}; wrap in sorted(...) or "
                    f"justify with '# det: allow(reason)'",
                )
        self.generic_visit(node)

    def visit_comprehension(self, node: ast.comprehension) -> None:
        if id(node.iter) not in self._sanctioned:
            kind = self._iter_kind(node.iter)
            if kind is not None:
                rule, description = kind
                if self._rule_applies(rule):
                    self._emit(
                        node.iter,
                        rule,
                        f"comprehension iterates {description}; wrap in "
                        f"sorted(...) or justify with "
                        f"'# det: allow(reason)'",
                    )
        self.generic_visit(node)

    def visit_Assign(self, node: ast.Assign) -> None:
        kind = self._classify_value(node.value)
        for target in node.targets:
            self._record_binding(target, kind)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        head = self._annotation_head(node.annotation)
        kind = None
        if head in self.SET_ANNOTATIONS:
            kind = "set"
        elif head in self.DICT_ANNOTATIONS:
            kind = "dict"
        if kind is None and node.value is not None:
            kind = self._classify_value(node.value)
        self._record_binding(node.target, kind)
        self.generic_visit(node)

    def _visit_function(self, node) -> None:
        self._push_scope()
        args = list(node.args.posonlyargs) + list(node.args.args) + list(
            node.args.kwonlyargs
        )
        for arg in args:
            if arg.annotation is None:
                continue
            head = self._annotation_head(arg.annotation)
            if head in self.SET_ANNOTATIONS:
                self._set_names[-1].add(arg.arg)
            elif head in self.DICT_ANNOTATIONS:
                self._dict_names[-1].add(arg.arg)
        self.generic_visit(node)
        self._pop_scope()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_function(node)


def lint_source(
    source: str,
    path: Path,
    protocol: Optional[bool] = None,
    decision: Optional[bool] = None,
) -> List[Finding]:
    """Lint one file's source text.

    ``protocol`` (set-iteration rule) and ``decision`` (dict-iteration
    rule) default to path-based classification.
    """
    if protocol is None:
        protocol = _is_protocol(path)
    if decision is None:
        decision = _is_decision(path)
    tree = ast.parse(source, filename=str(path))
    analyzer = _Analyzer(path, source, protocol, decision)
    analyzer.visit(tree)
    return analyzer.findings


def lint_paths(paths: Iterable[Path]) -> List[Finding]:
    findings: List[Finding] = []
    for root in paths:
        files = [root] if root.is_file() else sorted(root.rglob("*.py"))
        for file in files:
            findings.extend(lint_source(file.read_text(), file))
    return findings


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "paths", nargs="*", default=["src/repro"],
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--show-allowed", action="store_true",
        help="also print findings silenced by pragma/allowlist",
    )
    args = parser.parse_args(argv)
    findings = lint_paths(Path(p) for p in args.paths)
    blocking = [f for f in findings if not f.allowed]
    shown = findings if args.show_allowed else blocking
    for finding in shown:
        print(finding)
    allowed_count = sum(1 for f in findings if f.allowed)
    print(
        f"determinism lint: {len(blocking)} finding(s), "
        f"{allowed_count} allowed"
    )
    return 1 if blocking else 0


if __name__ == "__main__":
    sys.exit(main())
