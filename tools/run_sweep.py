#!/usr/bin/env python
"""Run an experiment sweep through the parallel deterministic engine.

Expands a parameter grid into seeded tasks, fans them across worker
processes, then (optionally) replays a sample serially and compares
payload digests -- the parallel-equals-serial proof.  Exits non-zero if
any replayed digest disagrees.

Examples::

    python tools/run_sweep.py --driver fabric \\
        --grid n_ports=8,16 --grid load=0.6,0.9 --repeats 2 \\
        --workers 4 --verify 3

    python tools/run_sweep.py --driver digest --grid duration_us=40000 \\
        --repeats 4 --workers 2 --verify 2 --json sweep.json
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.exec import DRIVERS, SweepEngine, make_tasks  # noqa: E402


def parse_value(text: str):
    """int if it looks like one, then float, else the bare string."""
    for caster in (int, float):
        try:
            return caster(text)
        except ValueError:
            continue
    return text


def parse_grid(specs) -> dict:
    grid = {}
    for spec in specs or []:
        key, _, values = spec.partition("=")
        if not values:
            raise SystemExit(f"bad --grid spec {spec!r}; want key=v1,v2,...")
        grid[key] = [parse_value(v) for v in values.split(",")]
    return grid


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--driver", default="fabric", choices=sorted(DRIVERS),
        help="registered experiment driver to run at every grid point",
    )
    parser.add_argument(
        "--grid", action="append", metavar="KEY=V1,V2,...",
        help="one grid axis (repeatable); omitted -> driver defaults",
    )
    parser.add_argument(
        "--repeats", type=int, default=1,
        help="independent seeded repeats per grid point",
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="root seed for task derivation"
    )
    parser.add_argument(
        "--workers", type=int, default=0,
        help="worker processes (<=1 runs serially in-process)",
    )
    parser.add_argument(
        "--verify", type=int, default=3, metavar="K",
        help="replay K sampled tasks serially and compare digests "
        "(0 disables)",
    )
    parser.add_argument(
        "--json", type=Path, default=None,
        help="write results (tasks, payloads, digests) to this file",
    )
    parser.add_argument(
        "--no-profile", action="store_true",
        help="skip the per-phase/per-worker timing table (uses the "
        "uninstrumented pool.map path)",
    )
    args = parser.parse_args()

    grid = parse_grid(args.grid) or {"_default": [0]}
    tasks = make_tasks(
        args.driver, grid, repeats=args.repeats, root_seed=args.seed
    )
    engine = SweepEngine(workers=args.workers)
    started = time.perf_counter()
    results = engine.run(tasks, telemetry=not args.no_profile)
    elapsed = time.perf_counter() - started
    print(
        f"{len(results)} tasks ({args.driver}) in {elapsed:.2f}s "
        f"with workers={args.workers}"
    )
    for result in results:
        print(f"  {result.task.name}: {result.digest[:16]}")
    if engine.last_telemetry is not None:
        print(engine.last_telemetry.render())

    status = 0
    if args.verify > 0:
        mismatches = engine.verify(
            results, sample=args.verify, root_seed=args.seed
        )
        checked = min(args.verify, len(results))
        if mismatches:
            status = 1
            for original, replay in mismatches:
                print(
                    f"DIGEST MISMATCH {original.task.name}: "
                    f"parallel={original.digest} serial={replay.digest}"
                )
        else:
            print(
                f"verify: {checked} sampled tasks replayed serially, "
                "digests identical"
            )

    if args.json is not None:
        document = {
            "driver": args.driver,
            "seed": args.seed,
            "workers": args.workers,
            "elapsed_seconds": round(elapsed, 3),
            "results": [
                {
                    "name": r.task.name,
                    "params": r.task.params_dict(),
                    "task_seed": r.task.seed,
                    "digest": r.digest,
                    "payload": r.payload,
                }
                for r in results
            ],
        }
        args.json.write_text(json.dumps(document, indent=2) + "\n")
        print(f"wrote {args.json}")
    return status


if __name__ == "__main__":
    raise SystemExit(main())
