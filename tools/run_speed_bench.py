#!/usr/bin/env python
"""Run the frozen speed workloads and maintain ``BENCH_speed.json``.

Two modes:

``python tools/run_speed_bench.py``
    Times every workload in :mod:`benchmarks.bench_speed` (best of
    ``--repeats`` interleaved rounds, GC disabled) and writes the
    results, plus derived bitmask-vs-reference speedups, to
    ``BENCH_speed.json`` at the repo root.

``python tools/run_speed_bench.py --check``
    Re-times the workloads and compares against the committed baseline.
    Exits non-zero if any workload is more than ``--tolerance`` (default
    25%) slower than its baseline entry, or if a work checksum diverges
    (the timed work itself changed).  Skips cleanly (exit 0) when no
    baseline file exists, so fresh clones and CI bootstrap runs pass.

``python tools/run_speed_bench.py --compare BASELINE.json --tolerance 30``
    The CI regression gate: compare against an explicit baseline file
    with the tolerance given in *percent*.  Unlike ``--check``, a
    missing baseline is an error (exit 2) -- a gate that silently
    passes because its baseline vanished is no gate.  Combine with
    ``--quick`` to time only the workloads marked cheap enough for
    every-push smoke runs.

Timings are wall-clock and machine-dependent; the baseline is only
meaningful against timings taken on the same machine, which is exactly
the regression-gate use case.
"""

from __future__ import annotations

import argparse
import gc
import json
import os
import platform
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_BASELINE = REPO_ROOT / "BENCH_speed.json"

sys.path.insert(0, str(REPO_ROOT / "src"))
sys.path.insert(0, str(REPO_ROOT))

from benchmarks.bench_speed import SPEEDUP_PAIRS, WORKLOADS  # noqa: E402

SCHEMA = 1


def time_workloads(
    repeats: int, verbose: bool = True, quick_only: bool = False
) -> dict:
    """Best-of-``repeats`` seconds per workload, interleaved.

    Interleaving the rounds (round 1 of every workload, then round 2,
    ...) spreads machine noise evenly across workloads instead of
    letting a slow spell land entirely on one of them, which matters for
    the derived reference/bitmask ratios.
    """
    workloads = [w for w in WORKLOADS if w.quick or not quick_only]
    results: dict = {}
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for round_index in range(repeats):
            for workload in workloads:
                outcome = workload.run()
                entry = results.setdefault(
                    workload.name,
                    {
                        "description": workload.description,
                        "seconds": outcome.seconds,
                        "checksum": outcome.checksum,
                    },
                )
                if outcome.checksum != entry["checksum"]:
                    raise RuntimeError(
                        f"{workload.name}: checksum varied across repeats "
                        f"({entry['checksum']} vs {outcome.checksum}); "
                        "the workload is not deterministic"
                    )
                entry["seconds"] = min(entry["seconds"], outcome.seconds)
                if verbose:
                    print(
                        f"  [{round_index + 1}/{repeats}] {workload.name}: "
                        f"{outcome.seconds:.3f}s"
                    )
    finally:
        if gc_was_enabled:
            gc.enable()
    return results


def derive_speedups(results: dict) -> dict:
    speedups = {}
    for name, (reference, bitmask) in SPEEDUP_PAIRS.items():
        if reference in results and bitmask in results:
            speedups[name] = round(
                results[reference]["seconds"] / results[bitmask]["seconds"], 2
            )
    return speedups


def write_baseline(path: Path, results: dict) -> dict:
    document = {
        "schema": SCHEMA,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "workloads": results,
        "speedups": derive_speedups(results),
    }
    path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    return document


def check_against_baseline(
    path: Path,
    repeats: int,
    tolerance: float,
    quick_only: bool = False,
    missing_ok: bool = True,
) -> int:
    if not path.exists():
        if missing_ok:
            print(f"no baseline at {path}; skipping speed check (run "
                  f"tools/run_speed_bench.py to create one)")
            return 0
        print(f"FAIL no baseline at {path}; the regression gate needs one")
        return 2
    baseline = json.loads(path.read_text())
    base_workloads = baseline.get("workloads", {})
    print(f"checking against baseline {path} (tolerance {tolerance:.0%})")
    current = time_workloads(repeats, quick_only=quick_only)
    # Workloads whose timing assumes more CPUs than this host has (the
    # parallel-speedup twins) cannot be gated here: with 2 cores a
    # 4-worker sweep legitimately times slower than its own baseline.
    # Their checksums are still enforced -- the work itself must not
    # change -- but their timings, and any speedup pair built on them,
    # are reported as informational only.
    cpus = os.cpu_count() or 1
    min_cpus = {w.name: getattr(w, "min_cpus", 1) for w in WORKLOADS}
    failures = []
    for name, entry in current.items():
        base = base_workloads.get(name)
        if base is None:
            print(f"  {name}: no baseline entry (new workload), skipping")
            continue
        if entry["checksum"] != base["checksum"]:
            failures.append(
                f"{name}: checksum {entry['checksum']} != baseline "
                f"{base['checksum']} (the timed work changed; re-baseline "
                "deliberately if intended)"
            )
            continue
        if min_cpus.get(name, 1) > cpus:
            print(
                f"  {name}: {entry['seconds']:.3f}s vs baseline "
                f"{base['seconds']:.3f}s -> informational (needs "
                f"{min_cpus[name]} cpus, host has {cpus}; checksum ok)"
            )
            continue
        limit = base["seconds"] * (1.0 + tolerance)
        verdict = "ok" if entry["seconds"] <= limit else "REGRESSION"
        print(
            f"  {name}: {entry['seconds']:.3f}s vs baseline "
            f"{base['seconds']:.3f}s -> {verdict}"
        )
        if entry["seconds"] > limit:
            failures.append(
                f"{name}: {entry['seconds']:.3f}s exceeds "
                f"{base['seconds']:.3f}s by more than {tolerance:.0%}"
            )
    cpu_limited_pairs = {
        pair: members
        for pair, members in SPEEDUP_PAIRS.items()
        if any(min_cpus.get(m, 1) > cpus for m in members)
        and all(m in current for m in members)
    }
    for pair, (slow, fast) in sorted(cpu_limited_pairs.items()):
        ratio = current[slow]["seconds"] / current[fast]["seconds"]
        print(
            f"  {pair}: {ratio:.2f}x (informational -- cpu-limited host)"
        )
    for line in failures:
        print(f"FAIL {line}")
    if not failures:
        print("speed check passed")
    return 1 if failures else 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--check",
        action="store_true",
        help="compare against the committed baseline instead of rewriting it",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=3,
        help="timed rounds per workload; best time wins (default 3)",
    )
    parser.add_argument(
        "--compare",
        type=Path,
        default=None,
        metavar="BASELINE.json",
        help="regression gate: compare against this baseline file "
        "(--tolerance is in percent here; missing baseline = exit 2)",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="time only the workloads marked quick (CI smoke subset)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=None,
        help="failure threshold: a fraction for --check (default 0.25), "
        "a percentage for --compare (default 25)",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=DEFAULT_BASELINE,
        help=f"baseline path (default {DEFAULT_BASELINE})",
    )
    args = parser.parse_args(argv)
    if args.repeats < 1:
        parser.error("--repeats must be >= 1")
    if args.check and args.compare:
        parser.error("--check and --compare are mutually exclusive")

    if args.compare:
        tolerance_pct = 25.0 if args.tolerance is None else args.tolerance
        if tolerance_pct <= 0:
            parser.error("--tolerance must be a positive percentage")
        return check_against_baseline(
            args.compare,
            args.repeats,
            tolerance_pct / 100.0,
            quick_only=args.quick,
            missing_ok=False,
        )

    if args.check:
        tolerance = 0.25 if args.tolerance is None else args.tolerance
        return check_against_baseline(
            args.output, args.repeats, tolerance, quick_only=args.quick
        )

    if args.quick:
        parser.error("--quick only applies to --check / --compare runs "
                     "(a quick-only baseline would gut the full gate)")
    print(f"timing {len(WORKLOADS)} workloads, best of {args.repeats} rounds")
    results = time_workloads(args.repeats)
    document = write_baseline(args.output, results)
    print(f"wrote {args.output}")
    for name, value in sorted(document["speedups"].items()):
        print(f"  {name}: {value}x")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
