#!/usr/bin/env python
"""Compare loss-recovery solutions across fault scenarios (EXPERIMENTS A6).

Runs a scenario x solution matrix -- every run rebuilt from the same
seed, so all solutions face the identical fault plan and traffic -- and
emits one comparison table::

    PYTHONPATH=src python tools/run_solutions.py                 # defaults
    PYTHONPATH=src python tools/run_solutions.py corruption_burst
    PYTHONPATH=src python tools/run_solutions.py --random 42 --random 43
    PYTHONPATH=src python tools/run_solutions.py --solutions do_nothing,link_retx

Columns: packets sent/delivered/lost (the penalty), end-to-end
retransmissions (``e2e_arq``), link-local resends (``link_retx``),
reconfiguration epochs consumed by repairs (``disable_and_repair``),
cells corrupted on the wire, whether the network settled, and the
invariant verdict.

``--gate`` adds the CI acceptance checks: every run's invariants must
pass, and on ``corruption_burst`` ``link_retx`` must recover with
strictly fewer end-to-end retransmissions than ``e2e_arq`` (that is the
point of sub-RTT link-local recovery).  Exit code 0 only if everything
holds, so CI can gate on it.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Dict, List, Optional, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

from repro.faults import (  # noqa: E402
    CANNED,
    ScenarioResult,
    ScenarioRunner,
    build_random_scenario,
)
from repro.solutions import SOLUTIONS, make_solution  # noqa: E402

DEFAULT_SCENARIOS = ("corruption_burst", "flapping_link")


def run_one(
    scenario_name: str,
    solution_name: Optional[str],
    seed: Optional[int],
    random_seed: Optional[int],
    flight_dir: Optional[str],
) -> Tuple[ScenarioResult, int]:
    """Build the scenario fresh (same seed => same faults), run it, and
    return the result plus cells corrupted on the wire."""
    if random_seed is not None:
        net, plan, loads = build_random_scenario(random_seed)
    else:
        build = CANNED[scenario_name].build
        net, plan, loads = build(seed) if seed is not None else build()
    solution = (
        make_solution(solution_name) if solution_name is not None else None
    )
    result = ScenarioRunner(
        net, plan, loads, solution=solution, flight_dir=flight_dir
    ).run()
    corrupted = sum(link.cells_corrupted for link in net.links.values())
    return result, corrupted


def render_table(rows: List[Tuple[str, ...]]) -> str:
    header = (
        "scenario", "solution", "sent", "delivered", "lost",
        "e2e_retx", "link_resends", "epochs", "corrupted",
        "settled", "invariants",
    )
    widths = [
        max(len(header[i]), *(len(r[i]) for r in rows)) if rows
        else len(header[i])
        for i in range(len(header))
    ]
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(header)),
        "  ".join("-" * widths[i] for i in range(len(header))),
    ]
    for row in rows:
        lines.append(
            "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
        )
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Compare loss-recovery solutions across fault scenarios."
    )
    parser.add_argument(
        "scenarios", nargs="*", default=[],
        help=f"canned scenarios (default: {', '.join(DEFAULT_SCENARIOS)}; "
        f"available: {', '.join(sorted(CANNED))})",
    )
    parser.add_argument(
        "--random", type=int, action="append", default=[], metavar="SEED",
        help="also run a chaos scenario derived from SEED (repeatable)",
    )
    parser.add_argument(
        "--solutions", default=None,
        help="comma-separated solution names "
        f"(default: all of {', '.join(sorted(SOLUTIONS))})",
    )
    parser.add_argument(
        "--seed", type=int, default=None,
        help="override the canned scenarios' default network seed",
    )
    parser.add_argument(
        "--flight-dir", default=None, metavar="DIR",
        help="dump the flight recorder here when an invariant fails "
        "(defaults to $REPRO_FLIGHT_DIR if set)",
    )
    parser.add_argument(
        "--gate", action="store_true",
        help="enforce the A6 acceptance checks (CI mode)",
    )
    args = parser.parse_args(argv)

    scenario_names = list(args.scenarios) or list(DEFAULT_SCENARIOS)
    for name in scenario_names:
        if name not in CANNED:
            parser.error(
                f"unknown scenario {name!r}; "
                f"choose from {', '.join(sorted(CANNED))}"
            )
    solution_names = (
        [s.strip() for s in args.solutions.split(",") if s.strip()]
        if args.solutions is not None
        else sorted(SOLUTIONS)
    )
    for name in solution_names:
        if name not in SOLUTIONS:
            parser.error(
                f"unknown solution {name!r}; "
                f"choose from {', '.join(sorted(SOLUTIONS))}"
            )

    jobs: List[Tuple[str, Optional[int], Optional[int]]] = [
        (name, args.seed, None) for name in scenario_names
    ] + [(f"chaos-{seed}", None, seed) for seed in args.random]

    rows: List[Tuple[str, ...]] = []
    results: Dict[Tuple[str, str], ScenarioResult] = {}
    failures: List[str] = []
    for scenario_label, seed, random_seed in jobs:
        for solution_name in solution_names:
            result, corrupted = run_one(
                scenario_label if random_seed is None else "",
                solution_name,
                seed,
                random_seed,
                args.flight_dir,
            )
            results[(scenario_label, solution_name)] = result
            rows.append(_row(scenario_label, solution_name, result, corrupted))
            if not result.passed:
                failures.append(
                    f"{scenario_label}/{solution_name}: "
                    + "; ".join(
                        r.name for r in result.invariants if not r.passed
                    )
                )
                if result.flight_dump:
                    print(
                        f"flight recorder dumped: {result.flight_dump}",
                        file=sys.stderr,
                    )

    print(render_table(rows))

    if failures:
        print()
        print("invariant failures:")
        for failure in failures:
            print(f"  {failure}")

    if args.gate:
        gate_errors = list(failures)
        key_retx = ("corruption_burst", "link_retx")
        key_arq = ("corruption_burst", "e2e_arq")
        if key_retx in results and key_arq in results:
            retx = int(
                results[key_retx].solution_metrics.get(
                    "e2e_retransmissions", 0
                )
            )
            arq = int(
                results[key_arq].solution_metrics.get(
                    "e2e_retransmissions", 0
                )
            )
            if not retx < arq:
                gate_errors.append(
                    f"link_retx should beat e2e_arq on end-to-end "
                    f"retransmissions for corruption_burst: {retx} vs {arq}"
                )
            else:
                print()
                print(
                    f"gate: link_retx used {retx} end-to-end "
                    f"retransmissions vs e2e_arq's {arq} -- link-local "
                    f"recovery wins"
                )
        elif "corruption_burst" in scenario_names:
            gate_errors.append(
                "gate mode needs both link_retx and e2e_arq on "
                "corruption_burst"
            )
        if gate_errors:
            print()
            print("GATE FAILED:")
            for error in gate_errors:
                print(f"  {error}")
            return 1
        print("gate: all checks passed")
        return 0

    return 1 if failures else 0


def _row(
    scenario: str, solution: str, result: ScenarioResult, corrupted: int
) -> Tuple[str, ...]:
    metrics = result.solution_metrics
    if solution == "e2e_arq" and metrics.get("packets_transmitted"):
        # ARQ replaces the recorded loads; judge it by its transfers.
        # "sent" is wire packets (retransmissions included); "lost" is
        # the waste the end-to-end recovery paid, not residual loss.
        sent = int(metrics["packets_transmitted"])
        useful = round(metrics.get("efficiency", 0.0) * sent)
        delivered, lost = useful, sent - useful
    else:
        sent = sum(len(p) for p in result.sent.values())
        delivered = min(result.delivered, sent)
        lost = sent - delivered
    settled = "yes" if result.settled_at_us is not None else "NO"
    verdict = "pass" if result.passed else "FAIL"
    return (
        scenario,
        solution,
        str(sent),
        str(delivered),
        str(lost),
        str(int(metrics.get("e2e_retransmissions", 0))),
        str(int(metrics.get("resends", 0))),
        str(int(metrics.get("epochs_consumed", 0))),
        str(corrupted),
        settled,
        verdict,
    )


if __name__ == "__main__":
    raise SystemExit(main())
