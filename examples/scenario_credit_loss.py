#!/usr/bin/env python3
"""Lost flow-control cells vs. credit resynchronization.

Section 5: the credit scheme keeps *cumulative* counters at both ends
precisely so that it is "robust in the face of lost flow-control
messages" -- a lost credit only shrinks the usable window, and the
periodic resynchronization protocol restores it from the counters.

The plan drops plain credit cells on two trunks of the h0->h1 route
(resync request/reply cells survive).  The conservation invariant then
demands that at quiescence every credit balance equals exactly
``allocation - (cells_sent - buffers_freed)`` -- the windows were
restored, not merely patched.

Run:  PYTHONPATH=src python examples/scenario_credit_loss.py
"""

from repro.faults import ScenarioRunner, build_credit_loss


def main() -> None:
    net, plan, loads = build_credit_loss(seed=5)
    print("scenario: drop credit cells on the backbone, let resync repair it")
    print(plan.describe())
    print()
    result = ScenarioRunner(net, plan, loads).run()
    print(result.report())
    print()
    counters = net.metrics_snapshot()["faults"]["counters"]
    print(f"credit cells destroyed: {counters.get('credit_cells_dropped', 0)}")
    stalls = sum(
        u.stalls
        for s in net.switches.values()
        for c in s.cards
        for u in c.upstream.values()
    )
    print(f"send stalls at switches while windows were shrunk: {stalls}")
    raise SystemExit(0 if result.passed else 1)


if __name__ == "__main__":
    main()
