#!/usr/bin/env python3
"""Multi-media over AN2: guaranteed streams beside best-effort bulk data.

The paper's motivating split (section 1): guaranteed (CBR) streams get
reserved bandwidth with bounded delay and jitter -- "well suited to
transmitting multi-media data" -- while file transfers ride best-effort.
This example reserves two "video" streams through bandwidth central,
floods the same trunks with a bulk transfer, and prints the measured
latency/jitter of the guaranteed cells against the paper's p*(2f+l)
bound.

Run:  python examples/multimedia_streams.py
"""

from repro import Network, Packet, Topology
from repro.constants import FAST_CELL_TIME_US
from repro.core.guaranteed.latency import guaranteed_latency_bound_us
from repro.net.host import HostConfig
from repro.switch.switch import SwitchConfig
from repro.traffic.cbr import interarrival_jitter, latency_jitter

FRAME_SLOTS = 64


def main() -> None:
    topo = Topology.line(4)
    for h in range(4):
        topo.add_host(h)
    topo.connect("h0", "s0", port_a=0, bps=622_000_000)
    topo.connect("h1", "s3", port_a=0, bps=622_000_000)
    topo.connect("h2", "s0", port_a=0, bps=622_000_000)
    topo.connect("h3", "s3", port_a=0, bps=622_000_000)

    net = Network(
        topo,
        seed=3,
        switch_config=SwitchConfig(frame_slots=FRAME_SLOTS),
        host_config=HostConfig(frame_slots=FRAME_SLOTS),
    )
    net.start()
    net.run_until_converged(timeout_us=500_000)
    print(f"network converged at {net.now/1000:.2f} ms")

    central = net.bandwidth_central()
    # Two "video" streams with different rates (cells per 64-slot frame).
    video_hd, res_hd = net.reserve_bandwidth("h0", "h1", 12, central=central)
    video_sd, res_sd = net.reserve_bandwidth("h0", "h1", 6, central=central)
    print(f"reserved: HD {video_hd.cells_per_frame} cells/frame, "
          f"SD {video_sd.cells_per_frame} cells/frame "
          f"({central.total_reserved()} of {FRAME_SLOTS} slots on the trunk)")

    net.run(2_000)

    # Best-effort bulk transfer sharing every trunk link.
    bulk = net.setup_circuit("h2", "h3")
    for _ in range(40):
        net.host("h2").send_packet(
            bulk.vc,
            Packet(source=bulk.source, destination=bulk.destination,
                   size=48 * 30),
        )

    # Stream 200 cells on each video circuit.
    net.host("h0").send_raw_cells(video_hd.vc, 200)
    net.host("h0").send_raw_cells(video_sd.vc, 200)
    net.run(1_500_000)

    h1, h3 = net.host("h1"), net.host("h3")
    frame_time = FRAME_SLOTS * FAST_CELL_TIME_US
    print()
    print(f"frame time: {frame_time:.1f} us; "
          f"per-switch jitter bound 2f = {2*frame_time:.1f} us")
    for name, circuit, reservation in (
        ("HD video", video_hd, res_hd),
        ("SD video", video_sd, res_sd),
    ):
        latencies = h1.cell_latency[circuit.vc]
        arrivals = h1.cell_arrivals[circuit.vc]
        bound = guaranteed_latency_bound_us(
            reservation.path_length, frame_time, 1.0
        )
        print(f"{name}: {latencies.count} cells"
              f"  mean {latencies.mean:6.1f} us"
              f"  max {latencies.maximum:6.1f} us"
              f"  (bound p*(2f+l) = {bound:.1f} us)"
              f"  jitter {latency_jitter(latencies.samples()):6.1f} us"
              f"  interarrival-jitter {interarrival_jitter(arrivals):6.1f} us")
    print(f"bulk transfer: {len(h3.delivered)}/40 packets, "
          f"mean latency {h3.packet_latency.mean/1000:.2f} ms "
          f"(best-effort: no bound, rides leftover slots)")


if __name__ == "__main__":
    main()
