#!/usr/bin/env python3
"""An intermittently failing trunk vs. the skeptic's hold-downs.

Section 2: "Care must be taken that an intermittent fault does not
cause a link to make frequent transitions between the two states, for
each transition would trigger a reconfiguration...  a skeptic module
...requires an increasingly long period of correct operation before
the link is considered to be recovered."

The plan flaps one grid trunk five times.  The invariant checker
verifies that no skeptic in the network published more verdict changes
than the escalating-probation bound allows -- i.e. the flapping link
was quarantined instead of driving reconfiguration storms -- and that
the network still converged to reality once the link calmed down.

Run:  PYTHONPATH=src python examples/scenario_flapping_link.py
"""

from repro.faults import ScenarioRunner, build_flapping_link


def main() -> None:
    net, plan, loads = build_flapping_link(seed=3)
    print("scenario: flap trunk s1<->s4 while h0->h1 traffic flows")
    print(plan.describe())
    print()
    result = ScenarioRunner(net, plan, loads).run()
    print(result.report())
    print()
    # Show what the skeptics on the flapped link went through.
    for switch_name in ("s1", "s4"):
        card = next(
            c for c in net.switch(switch_name).cards
            if c.skeptic is not None and c.skeptic.failures_seen
        )
        skeptic = card.skeptic
        print(
            f"{switch_name}: {skeptic.failures_seen} failures seen, "
            f"{len(skeptic.verdict_changes)} verdicts published, "
            f"final level {skeptic.level}"
        )
    raise SystemExit(0 if result.passed else 1)


if __name__ == "__main__":
    main()
