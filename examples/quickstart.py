#!/usr/bin/env python3
"""Quickstart: build an AN2 network, let it configure itself, move data.

Builds a small SRC-style installation (redundant switch core, dual-homed
hosts), boots it, waits for the distributed reconfiguration to converge,
sets up a best-effort virtual circuit with hop-by-hop signaling, and
sends packets across it.

Run:  python examples/quickstart.py
"""

from repro import Network, Packet, Topology


def main() -> None:
    # 1. Describe the installation: a 2x3 switch grid, two hosts.
    topo = Topology.grid(2, 3)
    topo.add_host(0)
    topo.add_host(1)
    topo.connect("h0", "s0", port_a=0)
    topo.connect("h1", "s5", port_a=0)

    # 2. Instantiate and boot.  Every switch starts its link monitors and
    #    triggers the three-phase reconfiguration once neighbors answer.
    net = Network(topo, seed=42)
    net.start()
    t_converged = net.run_until_converged(timeout_us=500_000)
    print(f"topology acquired by all switches at t={t_converged/1000:.2f} ms")
    view = net.converged_view()
    print(f"  {len(view.switches())} switches, {len(view.edges)} links discovered")
    print(f"  matches physical reality: {view == net.expected_view()}")

    # 3. Set up a virtual circuit h0 -> h1.  A setup cell travels hop by
    #    hop; each line card picks the next hop from its topology view
    #    (up*/down* legal) and installs a routing-table entry.
    circuit = net.setup_circuit("h0", "h1")
    print(f"circuit vc={circuit.vc} established at t={net.now/1000:.2f} ms")

    # 4. Send packets.  The controller segments them into 53-byte cells,
    #    credit-based flow control meters every hop, and the receiving
    #    controller reassembles.
    for index in range(5):
        payload = f"packet {index} via AN2".encode()
        net.host("h0").send_packet(
            circuit.vc,
            Packet(source=circuit.source, destination=circuit.destination,
                   payload=payload),
        )
    net.run(100_000)

    h1 = net.host("h1")
    print(f"delivered {len(h1.delivered)} packets:")
    for packet in h1.delivered:
        print(f"  {packet.payload.decode():24s} latency {packet.latency:7.1f} us")
    print(f"cells dropped anywhere: {net.total_cells_dropped()}")


if __name__ == "__main__":
    main()
