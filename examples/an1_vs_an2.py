#!/usr/bin/env python3
"""Two generations, one failure: AN1 flushes, AN2 shrugs.

Section 2 of the paper: "In AN1, all switches must collaborate in a
reconfiguration, and all packets in transit are dropped when a
reconfiguration begins...  Fortunately, it should often be possible to
restrict participation to switches 'near' the failing component, and to
drop cells only when the path of their virtual circuit goes through a
failed link."

This demo runs the same scenario on both networks: two senders stream to
one receiver while a link *they never use* fails.  Watch AN1 lose its
standing queues to the reconfiguration flush, while AN2's credit-metered
per-VC buffers deliver everything.

Run:  python examples/an1_vs_an2.py
"""

from repro._types import host_id, switch_id
from repro.net.host import HostConfig
from repro.net.network import Network
from repro.net.packet import Packet
from repro.net.topology import Topology
from repro.switch.an1 import An1Config, An1Network
from repro.switch.switch import SwitchConfig

N_PACKETS = 30


def build_topology():
    """h0,h2 -> s0 - s1 - s2 <- h1, with a bystander spur s1-s3."""
    topo = Topology.line(3)
    topo.add_switch(3)
    topo.connect("s1", "s3")
    topo.add_host(0)
    topo.add_host(1)
    topo.add_host(2)
    topo.connect("h0", "s0", port_a=0)
    topo.connect("h2", "s0", port_a=0)
    topo.connect("h1", "s2", port_a=0)
    return topo


def fail_spur(links) -> None:
    for edge, link in links.items():
        (na, _), (nb, _) = edge
        if {na, nb} == {switch_id(1), switch_id(3)}:
            link.fail()
            return


def run_an1() -> None:
    print("--- AN1 (FIFO packet switches, drop-on-reconfiguration) ---")
    net = An1Network(
        build_topology(),
        seed=1,
        config=An1Config(
            ping_interval_us=500.0, ack_timeout_us=200.0, miss_threshold=2,
            skeptic_base_wait_us=2_000.0, boot_reconfig_delay_us=1_500.0,
        ),
    )
    net.start()
    net.run_until_converged(timeout_us=500_000)
    print(f"[{net.sim.now/1000:7.2f} ms] converged")
    for sender in (host_id(0), host_id(2)):
        for _ in range(N_PACKETS // 2):
            net.hosts[sender].send_packet(
                Packet(source=sender, destination=host_id(1), size=1500)
            )
    net.run(1_000.0)
    print(f"[{net.sim.now/1000:7.2f} ms] {net.buffered_packets()} packets "
          f"queued in switch FIFOs; failing the bystander link s1-s3")
    fail_spur(net.links)
    net.run(1_000_000)
    delivered = len(net.hosts[host_id(1)].delivered)
    print(f"[{net.sim.now/1000:7.2f} ms] delivered {delivered}/{N_PACKETS}; "
          f"{net.total_dropped_on_reconfig()} packets flushed by the "
          f"reconfiguration\n")


def run_an2() -> None:
    print("--- AN2 (per-VC buffers, credits, local reroute) ---")
    net = Network(
        build_topology(),
        seed=2,
        switch_config=SwitchConfig(
            frame_slots=32, enable_local_reroute=True,
            ping_interval_us=500.0, ack_timeout_us=200.0, miss_threshold=2,
            skeptic_base_wait_us=2_000.0, boot_reconfig_delay_us=1_500.0,
        ),
        host_config=HostConfig(frame_slots=32),
    )
    net.start()
    net.run_until_converged(timeout_us=500_000)
    print(f"[{net.now/1000:7.2f} ms] converged")
    circuits = {
        0: net.setup_circuit("h0", "h1"),
        2: net.setup_circuit("h2", "h1"),
    }
    for sender, circuit in circuits.items():
        for _ in range(N_PACKETS // 2):
            net.host(f"h{sender}").send_packet(
                circuit.vc,
                Packet(source=host_id(sender), destination=host_id(1),
                       size=1500),
            )
    net.run(1_000.0)
    print(f"[{net.now/1000:7.2f} ms] cells in flight; failing the "
          f"bystander link s1-s3")
    net.fail_link("s1", "s3")
    net.run(1_000_000)
    h1 = net.host("h1")
    print(f"[{net.now/1000:7.2f} ms] delivered {len(h1.delivered)}/"
          f"{N_PACKETS}; reassembly errors: {h1.reassembly_errors}; "
          f"cells dropped: {net.total_cells_dropped()}")


if __name__ == "__main__":
    run_an1()
    run_an2()
