#!/usr/bin/env python3
"""The paper's favorite demo: pull the plug on an arbitrary switch.

"A favorite AN1 demo is pulling the plug on an arbitrary switch in SRC's
main LAN.  The network reconfigures in less than 200 milliseconds, and
users see no service interruption."  (Section 1.)

We run steady traffic between two dual-homed hosts, crash an interior
switch mid-stream, watch the monitors detect it, the skeptics publish it,
the network reconfigure, and the circuit locally reroute -- then plug the
switch back in and watch the skeptic make it earn its way back.

Run:  python examples/pull_the_plug.py
"""

from repro import Network, Packet, Topology
from repro.constants import RECONFIGURATION_BUDGET_US
from repro.net.host import HostConfig
from repro.switch.switch import SwitchConfig


def main() -> None:
    topo = Topology.grid(3, 3)
    topo.add_host(0)
    topo.add_host(1)
    topo.connect("h0", "s0", port_a=0, bps=622_000_000)
    topo.connect("h0", "s3", port_a=1, bps=622_000_000)
    topo.connect("h1", "s8", port_a=0, bps=622_000_000)
    topo.connect("h1", "s5", port_a=1, bps=622_000_000)

    net = Network(
        topo,
        seed=7,
        switch_config=SwitchConfig(
            frame_slots=64,
            enable_local_reroute=True,
            skeptic_base_wait_us=5_000.0,
        ),
        host_config=HostConfig(frame_slots=64),
    )
    net.start()
    net.run_until(net.fully_reconfigured, timeout_us=500_000)
    print(f"[{net.now/1000:8.2f} ms] network up: "
          f"{len(net.converged_view().edges)} links discovered")

    circuit = net.setup_circuit("h0", "h1")
    h0, h1 = net.host("h0"), net.host("h1")

    def send_burst(n):
        for _ in range(n):
            h0.send_packet(
                circuit.vc,
                Packet(source=circuit.source,
                       destination=circuit.destination, size=480),
            )

    send_burst(10)
    net.run(100_000)
    print(f"[{net.now/1000:8.2f} ms] {len(h1.delivered)} packets delivered "
          f"before the incident")

    victim = "s4"
    t_plug = net.now
    net.crash_switch(victim)
    print(f"[{net.now/1000:8.2f} ms] *** pulled the plug on {victim} ***")

    net.run_until(net.fully_reconfigured,
                  timeout_us=RECONFIGURATION_BUDGET_US)
    took = net.now - t_plug
    print(f"[{net.now/1000:8.2f} ms] reconfigured in {took/1000:.1f} ms "
          f"(budget {RECONFIGURATION_BUDGET_US/1000:.0f} ms)")
    survivors = net.main_component_switches()
    print(f"           survivors: {', '.join(str(s) for s in survivors)}")
    reroutes = sum(s.stats.reroutes for s in net.switches.values())
    print(f"           circuits locally rerouted: {reroutes}")

    send_burst(10)
    net.run(200_000)
    print(f"[{net.now/1000:8.2f} ms] {len(h1.delivered)} packets delivered "
          f"after reroute (no user-visible outage)")

    net.restore_switch(victim)
    print(f"[{net.now/1000:8.2f} ms] plugged {victim} back in "
          f"(skeptic now demands a quiet period)")
    net.run_until(
        lambda: net.fully_reconfigured()
        and len(net.main_component_switches()) == 9,
        timeout_us=2_000_000,
    )
    print(f"[{net.now/1000:8.2f} ms] {victim} re-admitted; "
          f"topology again matches reality: "
          f"{net.converged_view() == net.expected_view()}")


if __name__ == "__main__":
    main()
