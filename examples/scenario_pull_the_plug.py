#!/usr/bin/env python3
"""The pull-the-plug demo as a scripted, invariant-checked scenario.

Where ``examples/pull_the_plug.py`` walks through the demo by hand,
this version drives it through the fault-injection harness
(:mod:`repro.faults`): the crash and restart are declarative plan
events, steady traffic runs throughout, and at the end the harness
*proves* recovery -- one epoch, bounded skeptic activity, exact credit
balances, and not one silently corrupted packet.

Run:  PYTHONPATH=src python examples/scenario_pull_the_plug.py
"""

from repro.faults import ScenarioRunner, build_pull_the_plug


def main() -> None:
    net, plan, loads = build_pull_the_plug(seed=7)
    print("scenario: crash interior switch s4 mid-traffic, restart it later")
    print(plan.describe())
    print()
    result = ScenarioRunner(net, plan, loads).run()
    print(result.report())
    print()
    survivors = net.main_component_switches()
    print(f"final main component: {', '.join(str(s) for s in survivors)}")
    reroutes = sum(s.stats.reroutes for s in net.switches.values())
    print(f"circuits locally rerouted during the outage: {reroutes}")
    raise SystemExit(0 if result.passed else 1)


if __name__ == "__main__":
    main()
