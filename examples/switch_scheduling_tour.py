#!/usr/bin/env python3
"""A tour of crossbar scheduling: FIFO vs PIM vs output queueing.

Section 3 in one script: drive the same 16x16 switch with the same
traffic under four buffer/scheduler organisations and watch head-of-line
blocking cap FIFO at ~58% while PIM with 3 iterations tracks the output-
queueing yardstick.

Run:  python examples/switch_scheduling_tour.py
"""

import random

from repro.analysis.tables import Table
from repro.constants import AN2_PIM_ITERATIONS, pim_iteration_bound
from repro.core.matching.fifo import FifoScheduler
from repro.core.matching.islip import IslipMatcher
from repro.core.matching.pim import ParallelIterativeMatcher
from repro.switch.fabric import (
    FifoFabric,
    OutputQueueFabric,
    VoqFabric,
    run_fabric,
)
from repro.traffic.arrivals import BernoulliUniform, BurstyOnOff

N = 16
SLOTS = 20_000
WARMUP = 2_000


def build_fabrics(seed: int):
    return [
        ("FIFO input queues", FifoFabric(N, FifoScheduler(N, random.Random(seed)))),
        (
            f"PIM ({AN2_PIM_ITERATIONS} iterations)",
            VoqFabric(
                N,
                ParallelIterativeMatcher(
                    N, AN2_PIM_ITERATIONS, random.Random(seed + 1)
                ),
            ),
        ),
        (
            "iSLIP (3 iterations)",
            VoqFabric(N, IslipMatcher(N, iterations=3)),
        ),
        ("output queueing (k=16)", OutputQueueFabric(N)),
    ]


def main() -> None:
    for title, make_traffic in (
        (
            "uniform Bernoulli arrivals, saturated (load 1.0)",
            lambda seed: BernoulliUniform(N, 1.0, random.Random(seed)),
        ),
        (
            "bursty on/off arrivals (load 0.8, mean burst 16)",
            lambda seed: BurstyOnOff(N, 0.8, 16.0, random.Random(seed)),
        ),
    ):
        table = Table(
            ["organisation", "throughput", "mean latency (slots)", "p99"],
            title=title,
        )
        for name, fabric in build_fabrics(seed=11):
            metrics = run_fabric(
                fabric, make_traffic(99), SLOTS, warmup_slots=WARMUP
            )
            latency = metrics.latency
            table.add_row(
                name,
                metrics.utilization(N),
                latency.mean if latency.count else 0.0,
                latency.percentile(99) if latency.count else 0.0,
            )
        print(table)
        print()

    # PIM iteration statistics (the log2(N) + 4/3 story).
    fabric = VoqFabric(
        N, ParallelIterativeMatcher(N, N, random.Random(5))
    )
    metrics = run_fabric(
        fabric, BernoulliUniform(N, 1.0, random.Random(6)), 5_000, warmup_slots=500
    )
    iterations = metrics.iterations_to_maximal
    within4 = sum(
        count for bucket, count in metrics.maximal_within.items() if bucket <= 4
    )
    print(
        f"PIM run-to-maximal: mean {iterations.mean:.2f} iterations "
        f"(paper bound log2(16)+4/3 = {pim_iteration_bound(N):.2f}); "
        f"maximal within 4 iterations in "
        f"{100*within4/iterations.count:.1f}% of slots (paper: >98%)"
    )


if __name__ == "__main__":
    main()
