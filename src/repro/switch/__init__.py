"""The AN2 switch model.

Two granularities (see DESIGN.md section 4):

- :mod:`repro.switch.fabric` -- a slot-synchronous single-switch
  simulator used by the crossbar-scheduling experiments (fast; exactly
  the paper's slotted 16x16 crossbar semantics),
- :mod:`repro.switch.switch` (with :mod:`~repro.switch.crossbar`,
  :mod:`~repro.switch.linecard`, :mod:`~repro.switch.buffers`,
  :mod:`~repro.switch.routing_table`) -- the full event-driven switch
  that participates in the network-level experiments: reconfiguration,
  signaling, credit flow control, and guaranteed frames.
"""

from repro.switch.an1 import An1Config, An1Host, An1Network, An1Switch
from repro.switch.fabric import (
    FabricMetrics,
    FifoFabric,
    OutputQueueFabric,
    VoqFabric,
    run_fabric,
)
from repro.switch.switch import AN2Switch, SwitchConfig

__all__ = [
    "AN2Switch",
    "An1Config",
    "An1Host",
    "An1Network",
    "An1Switch",
    "FabricMetrics",
    "FifoFabric",
    "OutputQueueFabric",
    "SwitchConfig",
    "VoqFabric",
    "run_fabric",
]
