"""Line cards: the per-port intelligence of an AN2 switch.

"An AN2 switch contains up to 16 line cards...  The line card contains a
processor, buffers for incoming cells, memory for routing tables, logic
for buffer and crossbar management, and optical devices" (section 1).

A :class:`LineCard` aggregates, for one port:

- the routing table for circuits *arriving* on this port,
- per-VC random-access input buffers (best-effort) and the guaranteed
  buffer pool,
- the *downstream* credit state for circuits arriving here (these are the
  buffers the upstream node holds credits for),
- the *upstream* credit state for circuits departing through this port
  (our credits for the next switch's buffers),
- the link monitor and skeptic for the attached cable.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro._types import VcId
from repro.core.flowcontrol.credits import DownstreamCredits, UpstreamCredits
from repro.core.flowcontrol.resync import ResyncState
from repro.core.reconfig.monitor import PortMonitor
from repro.core.reconfig.skeptic import Skeptic
from repro.net.port import Port
from repro.switch.buffers import GuaranteedQueues, VcQueues
from repro.switch.routing_table import RoutingTable


class LineCard:
    """One port's buffers, tables, credit state, and monitor."""

    def __init__(self, port: Port, pending_cap: int = 1024) -> None:
        self.port = port
        self.index = port.index
        self.routing_table = RoutingTable(pending_cap=pending_cap)
        self.vc_queues = VcQueues()
        self.guaranteed_queues = GuaranteedQueues()
        #: circuits arriving on this card: their buffers, credited to the
        #: upstream neighbor.
        self.downstream: Dict[VcId, DownstreamCredits] = {}
        #: circuits departing through this card: our credit balances for
        #: the downstream neighbor's buffers.
        self.upstream: Dict[VcId, UpstreamCredits] = {}
        self.resync: Dict[VcId, ResyncState] = {}
        self.monitor: Optional[PortMonitor] = None
        self.skeptic: Optional[Skeptic] = None
        self.cells_dropped = 0
        self.cells_forwarded = 0
        #: set by the owning switch: ``(port_index, vc) -> hook or None``,
        #: attached to each new :class:`UpstreamCredits` so credit grants
        #: and stall transitions reach the tracer.  Returns ``None`` (no
        #: per-send overhead) when no tracer is attached.
        self.credit_trace_factory: Optional[Callable] = None

    # ------------------------------------------------------------------
    def ensure_downstream(self, vc: VcId, allocation: int) -> DownstreamCredits:
        state = self.downstream.get(vc)
        if state is None:
            state = self.downstream[vc] = DownstreamCredits(allocation)
        return state

    def ensure_upstream(self, vc: VcId, allocation: int) -> UpstreamCredits:
        state = self.upstream.get(vc)
        if state is None:
            state = self.upstream[vc] = UpstreamCredits(allocation)
            if self.credit_trace_factory is not None:
                state.trace = self.credit_trace_factory(self.index, vc)
            self.resync[vc] = ResyncState(vc, state)
        return state

    def release_vc(self, vc: VcId) -> int:
        """Free all state for a circuit; returns cells discarded."""
        discarded = len(self.vc_queues.drain_vc(vc))
        self.downstream.pop(vc, None)
        self.upstream.pop(vc, None)
        self.resync.pop(vc, None)
        self.routing_table.remove(vc)
        return discarded

    def buffered_cells(self) -> int:
        return self.vc_queues.occupancy + self.guaranteed_queues.occupancy

    def __repr__(self) -> str:  # pragma: no cover
        return f"<LineCard {self.port.label} buf={self.buffered_cells()}>"
