"""Input buffering for the event-driven switch.

Section 3: "the AN2 switch avoids the head-of-line blocking problem by
using random-access input buffers.  Cells that cannot be forwarded in a
time slot are retained at the input in a queue associated with their
virtual circuit.  The first cell of any queued virtual circuit can be
selected for transmission across the switch."

:class:`VcQueues` is one line card's input buffering: a FIFO per virtual
circuit, grouped by the output port the circuit leaves through, with
round-robin service among a group's circuits (so one credit-starved VC
cannot block its siblings -- "if one virtual circuit is blocked, other
virtual circuits passing over the same link are not affected").
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Set, Tuple

from repro._types import VcId
from repro.net.cell import Cell

#: can_send(out_port, vc) -> bool: does the circuit have credit, and is
#: the output able to transmit?
CanSend = Callable[[int, VcId], bool]


class VcQueues:
    """Per-VC random-access input buffers for one line card."""

    def __init__(self) -> None:
        # out_port -> vc -> cells
        self._queues: Dict[int, Dict[VcId, Deque[Cell]]] = {}
        # out_port -> round-robin order of its VCs
        self._rotation: Dict[int, Deque[VcId]] = {}
        self._occupancy = 0
        self.peak_occupancy = 0

    # ------------------------------------------------------------------
    @property
    def occupancy(self) -> int:
        return self._occupancy

    def occupancy_for(self, out_port: int) -> int:
        group = self._queues.get(out_port)
        if not group:
            return 0
        return sum(len(q) for q in group.values())

    def queued_vcs(self, out_port: int) -> List[VcId]:
        group = self._queues.get(out_port, {})
        return [vc for vc, q in group.items() if q]

    def push(self, out_port: int, vc: VcId, cell: Cell) -> None:
        group = self._queues.setdefault(out_port, {})
        queue = group.get(vc)
        if queue is None:
            queue = group[vc] = deque()
            self._rotation.setdefault(out_port, deque()).append(vc)
        queue.append(cell)
        self._occupancy += 1
        self.peak_occupancy = max(self.peak_occupancy, self._occupancy)

    # ------------------------------------------------------------------
    def eligible_outputs(self, can_send: CanSend) -> Set[int]:
        """Outputs for which some queued circuit is currently sendable."""
        eligible: Set[int] = set()
        for out_port, group in self._queues.items():
            for vc, queue in group.items():
                if queue and can_send(out_port, vc):
                    eligible.add(out_port)
                    break
        return eligible

    def has_backlog(self) -> bool:
        return self._occupancy > 0

    def pop(
        self, out_port: int, can_send: CanSend
    ) -> Optional[Tuple[VcId, Cell]]:
        """Serve the next sendable circuit destined for ``out_port``.

        Round-robin among the group's circuits: the served VC moves to the
        back of the rotation, which is the starvation-freedom complement
        to PIM's randomization at the port level.
        """
        rotation = self._rotation.get(out_port)
        group = self._queues.get(out_port)
        if not rotation or not group:
            return None
        for _ in range(len(rotation)):
            vc = rotation[0]
            rotation.rotate(-1)
            queue = group.get(vc)
            if queue and can_send(out_port, vc):
                cell = queue.popleft()
                self._occupancy -= 1
                return (vc, cell)
        return None

    def drain_vc(self, vc: VcId) -> List[Cell]:
        """Remove and return all cells of one circuit (teardown/reroute)."""
        drained: List[Cell] = []
        for out_port, group in list(self._queues.items()):
            queue = group.pop(vc, None)
            if queue:
                drained.extend(queue)
                self._occupancy -= len(queue)
            if queue is not None:
                rotation = self._rotation.get(out_port)
                if rotation and vc in rotation:
                    rotation.remove(vc)
        return drained


class GuaranteedQueues:
    """Guaranteed-traffic buffers for one line card.

    "Separate buffer pools are maintained for guaranteed and best-effort
    traffic" (section 4).  A FIFO per output port suffices: the frame
    schedule already dedicates specific slots to specific (input, output)
    pairs, and cells of circuits sharing a pair are interchangeable in
    arrival order.
    """

    def __init__(self) -> None:
        self._queues: Dict[int, Deque[Cell]] = {}
        self._occupancy = 0
        self.peak_occupancy = 0

    @property
    def occupancy(self) -> int:
        return self._occupancy

    def push(self, out_port: int, cell: Cell) -> None:
        self._queues.setdefault(out_port, deque()).append(cell)
        self._occupancy += 1
        self.peak_occupancy = max(self.peak_occupancy, self._occupancy)

    def pop(self, out_port: int) -> Optional[Cell]:
        queue = self._queues.get(out_port)
        if not queue:
            return None
        self._occupancy -= 1
        return queue.popleft()

    def has_backlog(self) -> bool:
        return self._occupancy > 0
