"""The assembled AN2 switch: line cards, crossbar, and software agents.

This is the event-driven switch used in the network-level experiments.
It wires together every mechanism of the paper:

- **control plane** (line-card software, modelled with a per-message
  processing delay): port monitors + skeptics (section 2), the
  reconfiguration agent (section 2), the signaling agent (section 2), and
  the extension hooks -- circuit paging and local reroute,
- **best-effort data plane** (section 3): per-VC random-access input
  buffers, parallel iterative matching across the crossbar every cell
  slot, and credit-based flow control (section 5) with periodic
  resynchronization,
- **guaranteed data plane** (section 4): a frame schedule revised with
  Slepian-Duguid insertions on reservation changes; scheduled slots carry
  guaranteed cells first and fall back to best-effort traffic when the
  reserved circuit has no cell present.

The slot clock is a per-switch :class:`~repro.sim.clock.DriftingClock`,
so the asynchronous-network analyses (buffer occupancy vs clock skew, E8)
exercise real rate differences between neighbors.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro._types import NodeId, VcId
from repro.constants import (
    AN2_PIM_ITERATIONS,
    FAST_CELL_TIME_US,
    FRAME_SLOTS,
)
from repro.core.flowcontrol.resync import ResyncReply, ResyncRequest
from repro.core.flowcontrol.sizing import credits_for_link
from repro.core.guaranteed.distributed import (
    DistributedAdmissionAgent,
    ReserveConfirm,
    ReserveReject,
    ReserveRelease,
    ReserveRequest,
)
from repro.core.guaranteed.frames import FrameSchedule
from repro.core.guaranteed.nested_frames import NestedFrameSchedule
from repro.core.guaranteed.slepian_duguid import insert_reservation, remove_cell
from repro.core.matching.pim import ParallelIterativeMatcher
from repro.core.reconfig.algorithm import ReconfigurationAgent
from repro.core.reconfig.monitor import PingPayload, PortMonitor, make_ack
from repro.core.reconfig.skeptic import LinkVerdict, Skeptic
from repro.core.routing.multicast import FanoutToken
from repro.core.routing.paths import RouteComputer
from repro.core.routing.signaling import (
    PageOut,
    SetupRequest,
    SignalingAgent,
    TeardownRequest,
)
from repro.net.cell import Cell, CellKind, TrafficClass
from repro.net.node import Node
from repro.net.port import Port
from repro.net.topology import Edge, TopologyView
from repro.sim.kernel import Simulator
from repro.sim.clock import DriftingClock
from repro.sim.random import RandomStreams
from repro.switch.crossbar import Crossbar
from repro.switch.linecard import LineCard


@dataclass
class SwitchConfig:
    """Tunable parameters of one switch (defaults follow the paper)."""

    n_ports: int = 16
    slot_time_us: float = FAST_CELL_TIME_US
    frame_slots: int = FRAME_SLOTS
    pim_iterations: int = AN2_PIM_ITERATIONS
    #: line-card software latency per control message.
    control_delay_us: float = 20.0
    #: hardware-assisted ping turnaround.
    ping_reply_delay_us: float = 1.0
    ping_interval_us: float = 1_000.0
    ack_timeout_us: float = 400.0
    miss_threshold: int = 3
    skeptic_base_wait_us: float = 10_000.0
    skeptic_max_level: int = 8
    skeptic_decay_us: float = 1_000_000.0
    #: delay after boot before triggering the initial reconfiguration
    #: (long enough for neighbor discovery pings to complete).
    boot_reconfig_delay_us: float = 3_500.0
    reconfig_watchdog_us: float = 100_000.0
    #: per-VC credit allocation; ``None`` derives it from each link's
    #: round trip (section 5's sizing rule).
    credit_allocation: Optional[int] = None
    pending_buffer_cap: int = 1024
    #: period of credit resynchronization; 0 disables it.
    resync_interval_us: float = 0.0
    #: best-effort flow control: "credits" (AN2, lossless) or "drop"
    #: (section 5's third option: "drop messages when buffer capacity is
    #: exceeded.  If messages are dropped, they are typically
    #: retransmitted by higher levels of the system").
    flow_control: str = "credits"
    #: enable the section-2 extensions.
    enable_paging: bool = False
    paging_idle_us: float = 50_000.0
    enable_local_reroute: bool = False
    #: section-4 extension: restrict guaranteed-cell re-ordering to
    #: subframes of this many slots (must divide ``frame_slots``);
    #: ``None`` keeps the flat frame schedule.
    nested_subframe_slots: Optional[int] = None
    clock_drift_ppm: float = 0.0


@dataclass
class SwitchStats:
    cells_forwarded: int = 0
    guaranteed_forwarded: int = 0
    cells_dropped: int = 0
    pending_buffered: int = 0
    credits_sent: int = 0
    page_outs: int = 0
    page_ins: int = 0
    reroutes: int = 0
    broken_circuits: int = 0
    #: epoch route installs served by incremental delta recomputation vs
    #: from-scratch orientation rebuilds (see _on_topology_ready).
    route_installs_incremental: int = 0
    route_installs_full: int = 0
    per_output_forwarded: Dict[int, int] = field(default_factory=dict)


class AN2Switch(Node):
    """A 16-port AN2 switch in the event-driven network model."""

    def __init__(
        self,
        sim: Simulator,
        node_id: NodeId,
        streams: RandomStreams,
        config: Optional[SwitchConfig] = None,
        n_ports: Optional[int] = None,
        registry=None,
    ) -> None:
        self.config = config if config is not None else SwitchConfig()
        ports = n_ports if n_ports is not None else self.config.n_ports
        super().__init__(sim, node_id, ports)
        self.streams = streams
        self.clock = DriftingClock(sim, drift_ppm=self.config.clock_drift_ppm)
        self.cards: List[LineCard] = [
            LineCard(port, pending_cap=self.config.pending_buffer_cap)
            for port in self.ports
        ]
        for card in self.cards:
            card.credit_trace_factory = self._make_credit_trace
        self.crossbar = Crossbar(
            ports,
            ParallelIterativeMatcher(
                ports,
                iterations=self.config.pim_iterations,
                rng=streams.stream(f"{node_id}.pim"),
            ),
            probes=(
                registry.node(f"switch.{node_id}.crossbar")
                if registry is not None
                else None
            ),
        )
        if self.config.nested_subframe_slots is not None:
            self.frame_schedule: object = NestedFrameSchedule(
                ports,
                frame_slots=self.config.frame_slots,
                subframe_slots=self.config.nested_subframe_slots,
            )
        else:
            self.frame_schedule = FrameSchedule(ports, self.config.frame_slots)
        self.reconfig = ReconfigurationAgent(
            sim, node_id, transport=self, watchdog_us=self.config.reconfig_watchdog_us
        )
        self.reconfig.ready.subscribe(self._on_topology_ready)
        self.signaling = SignalingAgent(node_id, transport=self)
        self.admission = DistributedAdmissionAgent(self)
        self.stats = SwitchStats()
        self._route_computer: Optional[RouteComputer] = None
        self._vc_in_port: Dict[VcId, int] = {}
        self._slot_index = 0
        self._tick_scheduled = False
        #: optional repro.fastpath.FabricSlotDriver; when set (and the
        #: local clock is drift-free) slot timers coalesce into its wave.
        self._slot_driver = None
        self._started = False
        #: observers of verdict changes: callbacks (port_index, verdict).
        self.verdict_observers: List[Callable[[int, LinkVerdict], None]] = []
        #: registry node for the per-epoch route cache counters; the
        #: RouteComputer re-points these gauges on every reconfiguration.
        self._routing_probes = (
            registry.node(f"switch.{node_id}.routing")
            if registry is not None
            else None
        )
        if registry is not None:
            self._register_probes(registry.node(f"switch.{node_id}"))

    def _register_probes(self, probes) -> None:
        """Expose the plain-int stats as registry gauges (snapshot-time
        reads; the forwarding hot path is untouched)."""
        stats = self.stats
        probes.gauge("cells_forwarded", lambda: stats.cells_forwarded)
        probes.gauge("guaranteed_forwarded", lambda: stats.guaranteed_forwarded)
        probes.gauge("cells_dropped", lambda: stats.cells_dropped)
        probes.gauge("pending_buffered", lambda: stats.pending_buffered)
        probes.gauge("credits_sent", lambda: stats.credits_sent)
        probes.gauge("reroutes", lambda: stats.reroutes)
        probes.gauge("broken_circuits", lambda: stats.broken_circuits)
        probes.gauge("buffered_cells", self.buffered_cells)

    def _make_credit_trace(self, port_index: int, vc: VcId):
        """Hook factory for :class:`UpstreamCredits` tracing.

        Evaluated once per circuit at setup time; returns ``None`` when no
        tracer is attached so untraced runs pay nothing on the send path.
        """
        sim = self.sim
        if sim.tracer is None:
            return None
        component = f"{self.node_id}.p{port_index}"

        def hook(name: str, payload: dict) -> None:
            tracer = sim.tracer
            if tracer is not None:
                tracer.emit(
                    sim.now, "flowcontrol", component, name, vc=vc, **payload
                )

        return hook

    # ==================================================================
    # lifecycle
    # ==================================================================
    def start(self) -> None:
        """Boot the switch: start monitors and the initial reconfiguration."""
        if self._started:
            return
        self._started = True
        jitter_rng = self.streams.stream(f"{self.node_id}.jitter")
        for card in self.cards:
            if not card.port.connected:
                continue
            skeptic = Skeptic(
                base_wait_us=self.config.skeptic_base_wait_us,
                max_level=self.config.skeptic_max_level,
                decay_interval_us=self.config.skeptic_decay_us,
                on_verdict=self._verdict_handler(card.index),
            )
            card.skeptic = skeptic
            card.monitor = PortMonitor(
                self.sim,
                self.node_id,
                card.port,
                skeptic,
                ping_interval_us=self.config.ping_interval_us,
                ack_timeout_us=self.config.ack_timeout_us,
                miss_threshold=self.config.miss_threshold,
                start_offset_us=jitter_rng.uniform(
                    0.0, self.config.ping_interval_us
                ),
            )
            card.monitor.start()
        self.sim.schedule(
            self.config.boot_reconfig_delay_us
            + jitter_rng.uniform(0.0, self.config.ping_interval_us),
            self._boot_trigger,
        )
        if self.config.resync_interval_us > 0:
            self.sim.schedule(
                self.config.resync_interval_us, self._resync_tick
            )

    def _boot_trigger(self) -> None:
        self.reconfig.trigger()

    def _verdict_handler(self, port_index: int):
        def handler(verdict: LinkVerdict, now: float) -> None:
            self._on_verdict(port_index, verdict)

        return handler

    def _on_verdict(self, port_index: int, verdict: LinkVerdict) -> None:
        card = self.cards[port_index]
        neighbor = card.monitor.neighbor if card.monitor else None
        # "State changes in host links do not trigger reconfiguration."
        if neighbor is not None and neighbor[0].is_switch:
            self.sim.schedule(
                self.config.control_delay_us, self.reconfig.trigger
            )
        if verdict is LinkVerdict.DEAD and self.config.enable_local_reroute:
            self.sim.schedule(
                self.config.control_delay_us, self._reroute_port, port_index
            )
        recorder = self.sim.recorder
        if recorder is not None:
            recorder.record(
                self.sim.now, f"switch.{self.node_id}", "skeptic.verdict",
                port=port_index, verdict=verdict.value,
            )
        for observer in list(self.verdict_observers):
            observer(port_index, verdict)

    # ==================================================================
    # ReconfigTransport interface
    # ==================================================================
    def reconfig_ports(self) -> List[int]:
        """Ports cabled to working, identified switch neighbors."""
        eligible = []
        for card in self.cards:
            monitor = card.monitor
            if monitor is None or monitor.neighbor is None:
                continue
            if card.skeptic and card.skeptic.verdict is not LinkVerdict.WORKING:
                continue
            if monitor.neighbor[0].is_switch:
                eligible.append(card.index)
        return eligible

    def local_edges(self) -> Set[Edge]:
        """Edges this switch vouches for: every working, identified port."""
        edges: Set[Edge] = set()
        for card in self.cards:
            monitor = card.monitor
            if monitor is None or monitor.neighbor is None:
                continue
            if card.skeptic and card.skeptic.verdict is not LinkVerdict.WORKING:
                continue
            neighbor_id, neighbor_port = monitor.neighbor
            a = (self.node_id, card.index)
            b = (neighbor_id, neighbor_port)
            edges.add((a, b) if a <= b else (b, a))
        return edges

    def send_reconfig(self, port_index: int, message) -> None:
        self.ports[port_index].send(
            Cell(vc=0, kind=CellKind.RECONFIG, payload=message)
        )

    def _on_topology_ready(self, value) -> None:
        tag, view = value
        root = tag.initiator
        if root not in set(view.switches()):
            switches = view.switches()
            root = switches[-1] if switches else self.node_id
        previous = self._route_computer
        if previous is not None and previous.root == root:
            # Same root, new view: repair the orientation over the delta
            # instead of rebuilding the world.  Cache entries provably
            # untouched by the delta survive; everything else is evicted
            # (see UpDownOrientation.apply_delta).
            try:
                self._route_computer = previous.with_view(
                    view, epoch=str(tag), probes=self._routing_probes
                )
                self.stats.route_installs_incremental += 1
                self._after_route_install()
                return
            except ValueError:
                pass  # delta incompatible (e.g. disconnection): rebuild
        try:
            # A new epoch gets a new computer, which is what evicts every
            # cached path from the previous configuration (the route
            # cache lives inside the orientation; see updown.py).
            self._route_computer = RouteComputer(
                view,
                root,
                epoch=str(tag),
                probes=self._routing_probes,
            )
            self.stats.route_installs_full += 1
        except ValueError:
            self._route_computer = None
        self._after_route_install()

    def _after_route_install(self) -> None:
        if self.config.enable_local_reroute and self._route_computer:
            # A detour that was illegal under the old up*/down* tree may
            # be legal under the new one: retry circuits still pointed at
            # dead ports.
            self.sim.schedule(
                self.config.control_delay_us, self._repair_broken_circuits
            )

    # ==================================================================
    # SignalingTransport interface
    # ==================================================================
    def route_computer(self) -> Optional[RouteComputer]:
        return self._route_computer

    def attached_host_port(self, host: NodeId) -> Optional[int]:
        for card in self.cards:
            monitor = card.monitor
            if monitor is None or monitor.neighbor is None:
                continue
            if card.skeptic and card.skeptic.verdict is not LinkVerdict.WORKING:
                continue
            if monitor.neighbor[0] == host:
                return card.index
        return None

    def install_circuit(
        self, vc: VcId, in_port: int, out_port: int, request: SetupRequest
    ) -> None:
        card = self.cards[in_port]
        card.routing_table.install(vc, out_port, request, self.sim.now)
        card.routing_table.paged.pop(vc, None)
        self._vc_in_port[vc] = in_port
        if request.traffic_class is TrafficClass.BEST_EFFORT:
            card.ensure_downstream(vc, self._allocation_for(in_port))
            if self.config.flow_control == "credits":
                self.cards[out_port].ensure_upstream(
                    vc, self._allocation_for(out_port)
                )
        entry = card.routing_table.lookup(vc)
        assert entry is not None
        for cell in card.routing_table.take_pending(vc):
            self._enqueue(card, entry, cell)
        self._kick()

    def install_multicast(
        self, vc: VcId, in_port: int, out_ports, request
    ) -> None:
        """Install a fanout entry for a multicast circuit."""
        card = self.cards[in_port]
        ports = frozenset(out_ports)
        # The stored request lets diagnostics see the group; reroute and
        # paging skip fanout entries in this release (see multicast.py).
        setup_like = SetupRequest(
            vc=vc,
            source=request.source,
            destination=min(request.destinations),
            traffic_class=TrafficClass.BEST_EFFORT,
            gone_down=request.gone_down,
            hop_count=request.hop_count,
        )
        entry = card.routing_table.install(
            vc, min(ports), setup_like, self.sim.now
        )
        entry.out_ports = ports
        card.routing_table.paged.pop(vc, None)
        self._vc_in_port[vc] = in_port
        card.ensure_downstream(vc, self._allocation_for(in_port))
        if self.config.flow_control == "credits":
            # Each port touches its own card, but sort so per-card state is
            # created in an order independent of the set's hash order.
            for out_port in sorted(ports):
                self.cards[out_port].ensure_upstream(
                    vc, self._allocation_for(out_port)
                )
        for cell in card.routing_table.take_pending(vc):
            self._enqueue(card, entry, cell)
        self._kick()

    def remove_circuit(self, vc: VcId) -> Optional[Tuple[int, int]]:
        in_port = self._vc_in_port.pop(vc, None)
        if in_port is None:
            return None
        card = self.cards[in_port]
        entry = card.routing_table.lookup(vc)
        out_port = entry.out_port if entry else None
        dropped = card.release_vc(vc)
        self.stats.cells_dropped += dropped
        if out_port is not None:
            self.cards[out_port].upstream.pop(vc, None)
            self.cards[out_port].resync.pop(vc, None)
        return (in_port, out_port if out_port is not None else -1)

    def send_signaling(self, port_index: int, message) -> None:
        self.ports[port_index].send(
            Cell(vc=1, kind=CellKind.SIGNALING, payload=message)
        )

    def _allocation_for(self, port_index: int) -> int:
        if self.config.credit_allocation is not None:
            return self.config.credit_allocation
        link = self.ports[port_index].link
        if link is None:
            return 4
        return credits_for_link(link.length_km, link.bps)

    # ==================================================================
    # guaranteed reservations (driven by bandwidth central)
    # ==================================================================
    def add_reservation(
        self, in_port: int, out_port: int, cells_per_frame: int
    ) -> int:
        """Revise the frame schedule for a new reservation; returns the
        total Slepian-Duguid displacements performed."""
        if isinstance(self.frame_schedule, NestedFrameSchedule):
            moves = self.frame_schedule.reserve(
                in_port, out_port, cells_per_frame
            )
            self._kick()
            return moves
        traces = insert_reservation(
            self.frame_schedule, in_port, out_port, cells_per_frame
        )
        self._kick()
        return sum(t.displacements for t in traces)

    def remove_reservation(
        self, in_port: int, out_port: int, cells_per_frame: int
    ) -> None:
        if isinstance(self.frame_schedule, NestedFrameSchedule):
            self.frame_schedule.release(in_port, out_port, cells_per_frame)
            return
        for _ in range(cells_per_frame):
            remove_cell(self.frame_schedule, in_port, out_port)

    # ==================================================================
    # receive path
    # ==================================================================
    def on_cell(self, port: Port, cell: Cell) -> None:
        kind = cell.kind
        if kind is CellKind.DATA:
            self._accept_data(port.index, cell)
        elif kind is CellKind.CREDIT:
            self._accept_credit(port.index, cell)
        elif kind is CellKind.PING:
            self.sim.schedule(
                self.config.ping_reply_delay_us,
                self._reply_ping,
                port.index,
                cell.payload,
            )
        elif kind is CellKind.PING_ACK:
            monitor = self.cards[port.index].monitor
            if monitor is not None:
                monitor.on_ack(cell.payload)
        elif kind is CellKind.RECONFIG:
            self.sim.schedule(
                self.config.control_delay_us,
                self._handle_reconfig,
                port.index,
                cell.payload,
            )
        elif kind is CellKind.SIGNALING:
            self.sim.schedule(
                self.config.control_delay_us,
                self._handle_signaling,
                port.index,
                cell.payload,
            )
        else:
            raise ValueError(f"switch cannot handle cell kind {kind}")

    def _reply_ping(self, port_index: int, payload: PingPayload) -> None:
        port = self.ports[port_index]
        if not port.connected:
            return
        ack = make_ack(payload, self.node_id, port_index)
        port.send(Cell(vc=0, kind=CellKind.PING_ACK, payload=ack))

    def _handle_reconfig(self, port_index: int, message) -> None:
        self.reconfig.handle(port_index, message)

    def _handle_signaling(self, port_index: int, message) -> None:
        if isinstance(message, PageOut):
            self._handle_page_out(port_index, message)
        elif isinstance(
            message,
            (ReserveRequest, ReserveConfirm, ReserveReject, ReserveRelease),
        ):
            self.admission.handle(port_index, message)
        else:
            self.signaling.handle(port_index, message)

    # ------------------------------------------------------------------
    def _accept_data(self, in_port: int, cell: Cell) -> None:
        card = self.cards[in_port]
        if cell.traffic_class is TrafficClass.BEST_EFFORT:
            state = card.ensure_downstream(
                cell.vc, self._allocation_for(in_port)
            )
            try:
                state.receive()
            except Exception:
                # A correct upstream never overflows us; a buggy or
                # byzantine one loses the cell (counted, not crashed).
                card.cells_dropped += 1
                self.stats.cells_dropped += 1
                if cell.trace_ctx is not None:
                    cell.trace_ctx.record(
                        self.sim.now, f"switch.{self.node_id}", "drop",
                        in_port=in_port, reason="overflow",
                    )
                return
        entry = card.routing_table.lookup(cell.vc)
        if entry is None:
            if (
                self.config.enable_paging
                and cell.vc in card.routing_table.paged
            ):
                self._page_in(in_port, cell.vc)
            if not card.routing_table.buffer_pending(cell.vc, cell):
                self.stats.cells_dropped += 1
                # The buffer the cell occupied is freed again.
                state = card.downstream.get(cell.vc)
                if state is not None and cell.traffic_class is TrafficClass.BEST_EFFORT:
                    state.free()
            else:
                self.stats.pending_buffered += 1
            return
        self._enqueue(card, entry, cell)
        self._kick()

    def _enqueue(self, card: LineCard, entry, cell: Cell) -> None:
        entry.last_activity = self.sim.now
        if cell.trace_ctx is not None:
            cell.trace_ctx.record(
                self.sim.now, f"switch.{self.node_id}", "voq.enqueue",
                in_port=card.index, out_port=entry.out_port,
            )
        if cell.traffic_class is TrafficClass.GUARANTEED:
            card.guaranteed_queues.push(entry.out_port, cell)
        elif entry.is_multicast:
            # Fanout: one copy per branch; the shared token frees the
            # input buffer when the last copy departs.
            assert entry.out_ports is not None
            token = FanoutToken(remaining=len(entry.out_ports))
            for out_port in sorted(entry.out_ports):
                copy = dataclasses.replace(cell, fanout_token=token)
                card.vc_queues.push(out_port, cell.vc, copy)
        else:
            card.vc_queues.push(entry.out_port, cell.vc, cell)

    def _accept_credit(self, port_index: int, cell: Cell) -> None:
        card = self.cards[port_index]
        payload = cell.payload
        if isinstance(payload, ResyncRequest):
            state = card.downstream.get(payload.vc)
            if state is not None:
                reply = ResyncReply(
                    payload.vc, payload.cells_sent, state.buffers_freed
                )
                card.port.send(
                    Cell(vc=payload.vc, kind=CellKind.CREDIT, payload=reply)
                )
            return
        if isinstance(payload, ResyncReply):
            resync = card.resync.get(payload.vc)
            if resync is not None:
                recovered = resync.apply_reply(payload)
                if recovered:
                    if self.sim.tracer is not None:
                        self.sim.tracer.emit(
                            self.sim.now, "flowcontrol",
                            f"{self.node_id}.p{port_index}",
                            "resync.recovered",
                            vc=payload.vc, recovered=recovered,
                        )
                    recorder = self.sim.recorder
                    if recorder is not None:
                        recorder.record(
                            self.sim.now, f"switch.{self.node_id}",
                            "resync.recovered",
                            port=port_index, vc=int(payload.vc),
                            recovered=recovered,
                        )
                    self._kick()
            return
        upstream = card.upstream.get(cell.vc)
        if upstream is None:
            return  # circuit torn down while the credit was in flight
        if upstream.credit(payload if isinstance(payload, int) else 1):
            recorder = self.sim.recorder
            if recorder is not None:
                recorder.record(
                    self.sim.now, f"switch.{self.node_id}", "credit.unstall",
                    port=port_index, vc=int(cell.vc),
                    stalls=upstream.stalls,
                )
        self._kick()

    # ==================================================================
    # crossbar loop
    # ==================================================================
    def _kick(self) -> None:
        if self._tick_scheduled:
            return
        self._tick_scheduled = True
        driver = self._slot_driver
        if driver is not None and self.clock.drift_ppm == 0.0:
            # Fabric-wide slot wave: one kernel event for every switch
            # due this slot.  A mid-run clock-drift fault drops the
            # switch back to its private timer (the branch above), the
            # same blast-radius fallback the array engine uses.
            driver.request_tick(self)
            return
        self.sim.schedule(
            self.clock.global_delay(self.config.slot_time_us), self._slot_tick
        )

    def _slot_tick(self) -> None:
        self._tick_scheduled = False
        slot = self._slot_index % self.config.frame_slots
        self._slot_index += 1
        now = self.sim.now

        # The transmitter's oscillator drives the link in real hardware,
        # so a switch whose clock runs a few ppm fast must not see its
        # own back-to-back slots as "link busy".  Half a slot of slack
        # absorbs the drift; the link model still enforces the true line
        # rate by queueing the start of serialization.
        slack = 0.5 * self.config.slot_time_us

        pre_matched: Dict[int, int] = {}
        if self.frame_schedule.total_reserved():
            for in_port, out_port in self.frame_schedule.slot_assignments(
                slot
            ).items():
                if not self.ports[out_port].can_transmit_at(now, slack=slack):
                    continue
                cell = self.cards[in_port].guaranteed_queues.pop(out_port)
                if cell is None:
                    continue  # unused reserved slot: free for best effort
                self._transmit(out_port, cell, guaranteed=True)
                pre_matched[in_port] = out_port

        used_outputs = set(pre_matched.values())

        credit_mode = self.config.flow_control == "credits"

        def can_send(out_port: int, vc: VcId) -> bool:
            if out_port in used_outputs:
                return False
            if not self.ports[out_port].can_transmit_at(now, slack=slack):
                return False
            if not credit_mode:
                return True
            upstream = self.cards[out_port].upstream.get(vc)
            return upstream is not None and upstream.can_send

        requests: List[Set[int]] = []
        any_requests = False
        for card in self.cards:
            if card.index in pre_matched or not card.vc_queues.has_backlog():
                requests.append(set())
                continue
            eligible = card.vc_queues.eligible_outputs(can_send)
            if eligible:
                any_requests = True
            requests.append(eligible)

        if any_requests or pre_matched:
            result = self.crossbar.schedule(requests, pre_matched=pre_matched)
            for in_port, out_port in result.matching.items():
                if in_port in pre_matched:
                    continue
                card = self.cards[in_port]
                popped = card.vc_queues.pop(out_port, can_send)
                if popped is None:  # pragma: no cover - defensive
                    continue
                vc, cell = popped
                if credit_mode:
                    self.cards[out_port].upstream[vc].consume()
                downstream = card.downstream.get(vc)
                if downstream is not None:
                    token = cell.fanout_token
                    if token is None or token.branch_departed():
                        downstream.free()
                        if credit_mode:
                            self._send_credit(in_port, vc)
                # The token is this switch's bookkeeping; it must not
                # ride to the next hop.
                cell.fanout_token = None
                entry = card.routing_table.lookup(vc)
                if entry is not None:
                    entry.cells_forwarded += 1
                    entry.last_activity = now
                self._transmit(out_port, cell, guaranteed=False)

        # Keep ticking while any work (or any reservation) remains.
        if self.frame_schedule.total_reserved() or any(
            card.vc_queues.has_backlog() or card.guaranteed_queues.has_backlog()
            for card in self.cards
        ):
            self._kick()

    def _transmit(self, out_port: int, cell: Cell, guaranteed: bool) -> None:
        if cell.trace_ctx is not None:
            cell.trace_ctx.record(
                self.sim.now, f"switch.{self.node_id}", "grant",
                out_port=out_port, guaranteed=guaranteed,
            )
        self.ports[out_port].send(cell)
        self.crossbar.note_transfer(guaranteed=guaranteed)
        self.stats.cells_forwarded += 1
        if guaranteed:
            self.stats.guaranteed_forwarded += 1
        self.stats.per_output_forwarded[out_port] = (
            self.stats.per_output_forwarded.get(out_port, 0) + 1
        )
        self.cards[out_port].cells_forwarded += 1

    def _send_credit(self, in_port: int, vc: VcId) -> None:
        port = self.ports[in_port]
        if not port.connected:
            return
        port.send(Cell(vc=vc, kind=CellKind.CREDIT, payload=1))
        self.stats.credits_sent += 1

    # ==================================================================
    # credit resynchronization driver
    # ==================================================================
    def _resync_tick(self) -> None:
        tracer = self.sim.tracer
        recorder = self.sim.recorder
        for card in self.cards:
            if not card.port.connected:
                continue
            for vc, resync in card.resync.items():
                request = resync.make_request()
                if tracer is not None:
                    tracer.emit(
                        self.sim.now, "flowcontrol",
                        f"{self.node_id}.p{card.index}", "resync.round",
                        vc=vc, cells_sent=request.cells_sent,
                    )
                if recorder is not None:
                    recorder.record(
                        self.sim.now, f"switch.{self.node_id}",
                        "resync.round", port=card.index, vc=int(vc),
                        cells_sent=request.cells_sent,
                    )
                card.port.send(
                    Cell(vc=vc, kind=CellKind.CREDIT, payload=request)
                )
        self.sim.schedule(self.config.resync_interval_us, self._resync_tick)

    # ==================================================================
    # extensions: paging (section 2)
    # ==================================================================
    def page_out(self, vc: VcId) -> bool:
        """Release an idle circuit's resources, keeping enough state to
        page it back in; notifies the downstream switch."""
        in_port = self._vc_in_port.get(vc)
        if in_port is None:
            return False
        card = self.cards[in_port]
        entry = card.routing_table.lookup(vc)
        if entry is None:
            return False
        if entry.is_multicast:
            return False  # fanout entries are not paged in this release
        if vc in card.vc_queues.queued_vcs(entry.out_port):
            return False  # never page out a circuit with cells queued
        out_port = entry.out_port
        card.routing_table.paged[vc] = entry.request
        card.release_vc(vc)
        self.cards[out_port].upstream.pop(vc, None)
        self.cards[out_port].resync.pop(vc, None)
        self._vc_in_port.pop(vc, None)
        self.send_signaling(out_port, PageOut(vc))
        self.stats.page_outs += 1
        return True

    def _handle_page_out(self, in_port: int, message: PageOut) -> None:
        """The upstream switch paged this circuit out; cascade if it is
        idle here too."""
        card = self.cards[in_port]
        entry = card.routing_table.lookup(message.vc)
        if entry is None:
            return
        idle_for = self.sim.now - entry.last_activity
        if idle_for >= self.config.paging_idle_us:
            self.page_out(message.vc)

    def _page_in(self, in_port: int, vc: VcId) -> None:
        """A cell arrived for a paged-out circuit: regenerate its setup."""
        card = self.cards[in_port]
        request = card.routing_table.paged.pop(vc, None)
        if request is None:
            return
        self.stats.page_ins += 1
        self.sim.schedule(
            self.config.control_delay_us,
            self.signaling.handle,
            in_port,
            request,
        )

    def idle_circuits(self, older_than_us: float) -> List[VcId]:
        """Circuits with no activity for ``older_than_us`` (paging input)."""
        idle: List[VcId] = []
        now = self.sim.now
        for vc, in_port in self._vc_in_port.items():
            entry = self.cards[in_port].routing_table.lookup(vc)
            if entry is None:
                continue
            if now - entry.last_activity >= older_than_us:
                idle.append(vc)
        return idle

    # ==================================================================
    # extensions: local reroute (section 2)
    # ==================================================================
    def _reroute_port(self, dead_port: int) -> None:
        """Reroute circuits leaving through a dead port.

        "the virtual circuit can be rerouted by sending a new circuit
        setup cell from the point where the path was broken."  Circuits
        whose path does not cross the failed link are untouched.
        """
        computer = self._route_computer
        for card in self.cards:
            for entry in card.routing_table.entries():
                if entry.is_multicast:
                    # Fanout entries are not rerouted in this release; a
                    # dead branch is counted broken (the paper leaves
                    # multicast aside).
                    if entry.out_ports and dead_port in entry.out_ports:
                        self.stats.broken_circuits += 1
                    continue
                if entry.out_port != dead_port:
                    continue
                rerouted = False
                if computer is not None:
                    rerouted = self._reroute_entry(
                        card, entry, computer,
                        blocked_edges=self._edges_on_port(dead_port),
                    )
                if rerouted:
                    self.stats.reroutes += 1
                else:
                    self.stats.broken_circuits += 1

    def reroute_circuit(self, vc: VcId, blocked_edges: frozenset) -> bool:
        """Move one circuit off the given edges from this switch onward
        (used by the load-balancing extension).  Returns success."""
        in_port = self._vc_in_port.get(vc)
        if in_port is None or self._route_computer is None:
            return False
        card = self.cards[in_port]
        entry = card.routing_table.lookup(vc)
        if entry is None:
            return False
        moved = self._reroute_entry(
            card, entry, self._route_computer, blocked_edges=blocked_edges
        )
        if moved:
            self.stats.reroutes += 1
        return moved

    def _repair_broken_circuits(self) -> None:
        """Retry local reroute for circuits still routed at dead ports."""
        computer = self._route_computer
        if computer is None:
            return
        for card in self.cards:
            for entry in card.routing_table.entries():
                if entry.is_multicast:
                    continue
                out_card = self.cards[entry.out_port]
                if (
                    out_card.skeptic is None
                    or out_card.skeptic.verdict is LinkVerdict.WORKING
                ):
                    continue
                if self._reroute_entry(
                    card,
                    entry,
                    computer,
                    blocked_edges=self._edges_on_port(entry.out_port),
                ):
                    self.stats.reroutes += 1

    def _reroute_entry(
        self, card: LineCard, entry, computer, blocked_edges: frozenset
    ) -> bool:
        request = entry.request
        host_port = self.attached_host_port(request.destination)
        dead_edges = blocked_edges
        if host_port is not None and host_port != entry.out_port:
            new_port = host_port
            gone_down = request.gone_down
        else:
            try:
                dest_switch, _ = computer.attachment(request.destination)
            except Exception:
                return False
            if dest_switch == self.node_id:
                return False
            if not request.gone_down:
                path = computer.orientation.shortest_legal_path(
                    self.node_id, dest_switch, blocked_edges=dead_edges
                )
            else:
                path = None  # only down-moves allowed; recompute below
            if path is None and request.gone_down:
                path = computer.orientation._shortest_down_only_path(
                    self.node_id, dest_switch
                )
                if path is not None and any(e in dead_edges for e in path[1]):
                    path = None
            if path is None or not path[1]:
                return False
            from repro.core.routing.paths import port_on

            first_edge = path[1][0]
            new_port = port_on(first_edge, self.node_id)
            gone_down = request.gone_down or not (
                computer.orientation.is_up_traversal(first_edge, self.node_id)
            )
        vc = entry.vc
        # Move queued cells to the new output group.
        cells = card.vc_queues.drain_vc(vc)
        old_out = entry.out_port
        entry.out_port = new_port
        self.cards[old_out].upstream.pop(vc, None)
        if request.traffic_class is TrafficClass.BEST_EFFORT:
            self.cards[new_port].ensure_upstream(
                vc, self._allocation_for(new_port)
            )
        for cell in cells:
            card.vc_queues.push(new_port, vc, cell)
        forwarded = SetupRequest(
            vc=vc,
            source=request.source,
            destination=request.destination,
            traffic_class=request.traffic_class,
            gone_down=gone_down,
            hop_count=request.hop_count + 1,
        )
        self.send_signaling(new_port, forwarded)
        self._kick()
        return True

    def _edges_on_port(self, port_index: int) -> frozenset:
        card = self.cards[port_index]
        monitor = card.monitor
        if monitor is None or monitor.neighbor is None:
            return frozenset()
        neighbor_id, neighbor_port = monitor.neighbor
        a = (self.node_id, port_index)
        b = (neighbor_id, neighbor_port)
        return frozenset({(a, b) if a <= b else (b, a)})

    # ==================================================================
    def buffered_cells(self) -> int:
        return sum(card.buffered_cells() for card in self.cards)

    def topology_view(self) -> Optional[TopologyView]:
        return self.reconfig.view

    def __repr__(self) -> str:  # pragma: no cover
        return f"<AN2Switch {self.node_id} buf={self.buffered_cells()}>"
