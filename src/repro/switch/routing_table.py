"""Per-line-card routing tables.

"The line card contains a routing table that maps the cell's virtual
circuit id to the port on which the cell should leave the switch"
(section 2).  Entries also retain the originating setup request so the
extensions (page-out/page-in, local reroute) can regenerate setup cells
without consulting the circuit's source.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional

from repro._types import VcId
from repro.core.routing.signaling import SetupRequest
from repro.net.cell import Cell


@dataclass
class RouteEntry:
    """One circuit's state on the line card it *arrives* at.

    Unicast circuits use ``out_port``; multicast fanout entries also
    carry ``out_ports`` (and keep ``out_port`` as their lowest branch
    for display/compatibility).
    """

    vc: VcId
    out_port: int
    request: SetupRequest
    installed_at: float = 0.0
    cells_forwarded: int = 0
    last_activity: float = 0.0
    out_ports: Optional[FrozenSet[int]] = None

    @property
    def is_multicast(self) -> bool:
        return self.out_ports is not None and len(self.out_ports) > 1


class RoutingTable:
    """VC id -> route entry, plus the awaiting-setup cell buffer.

    "If [cells] arrive at a switch before the virtual circuit is
    established there, they will be buffered until the routing table
    entry is filled in."
    """

    def __init__(self, pending_cap: int = 1024) -> None:
        self._entries: Dict[VcId, RouteEntry] = {}
        self._pending: Dict[VcId, List[Cell]] = {}
        #: circuits paged out on this card (section 2 extension): the
        #: retained setup request lets a later cell page them back in.
        self.paged: Dict[VcId, SetupRequest] = {}
        self.pending_cap = pending_cap
        self.pending_drops = 0

    # ------------------------------------------------------------------
    def lookup(self, vc: VcId) -> Optional[RouteEntry]:
        return self._entries.get(vc)

    def __contains__(self, vc: VcId) -> bool:
        return vc in self._entries

    def entries(self) -> List[RouteEntry]:
        return list(self._entries.values())

    def install(
        self, vc: VcId, out_port: int, request: SetupRequest, now: float
    ) -> RouteEntry:
        entry = RouteEntry(
            vc=vc,
            out_port=out_port,
            request=request,
            installed_at=now,
            last_activity=now,
        )
        self._entries[vc] = entry
        return entry

    def remove(self, vc: VcId) -> Optional[RouteEntry]:
        self._pending.pop(vc, None)
        return self._entries.pop(vc, None)

    # ------------------------------------------------------------------
    def buffer_pending(self, vc: VcId, cell: Cell) -> bool:
        """Hold a cell that beat its setup cell here.  False if dropped."""
        queue = self._pending.setdefault(vc, [])
        if len(queue) >= self.pending_cap:
            self.pending_drops += 1
            return False
        queue.append(cell)
        return True

    def take_pending(self, vc: VcId) -> List[Cell]:
        return self._pending.pop(vc, [])

    def pending_count(self, vc: VcId) -> int:
        return len(self._pending.get(vc, []))
