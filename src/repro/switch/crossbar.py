"""The crossbar: AN2's internal switching fabric.

"Transmission from input to output takes place across a 16x16 crossbar.
The crossbar operates synchronously, routing up to 16 cells in parallel
during each time slot" (section 1).  The class is a thin synchronous
wrapper around a pluggable matcher; it exists so the switch's composition
mirrors the hardware (line cards around a crossbar) and so the E2
iteration statistics can be collected in one place.
"""

from __future__ import annotations

from typing import Optional, Sequence, Set

from repro.core.matching.pim import MatchResult, Matching
from repro.sim.monitor import ProbeSet, Tally


class Crossbar:
    """A synchronous NxN crossbar scheduled by ``matcher``.

    When a registry-owned :class:`ProbeSet` is supplied, the iteration
    tally lives there and the plain-int counters are exposed as gauges, so
    a metrics snapshot sees this crossbar without any per-slot overhead.
    """

    def __init__(
        self, n_ports: int, matcher, probes: Optional[ProbeSet] = None
    ) -> None:
        self.n_ports = n_ports
        self.matcher = matcher
        self.slots = 0
        self.cells_transferred = 0
        self.guaranteed_transferred = 0
        if probes is not None:
            self.iterations_to_maximal = probes.tally("iterations_to_maximal")
            probes.gauge("slots", lambda: self.slots)
            probes.gauge("cells_transferred", lambda: self.cells_transferred)
            probes.gauge(
                "guaranteed_transferred", lambda: self.guaranteed_transferred
            )
            probes.gauge("utilization", self.utilization)
        else:
            self.iterations_to_maximal = Tally("crossbar.iterations_to_maximal")

    def schedule(
        self,
        requests: Sequence[Set[int]],
        pre_matched: Optional[Matching] = None,
    ) -> MatchResult:
        """One slot's matching decision (the transfer itself is performed
        by the switch, which owns the buffers)."""
        result = self.matcher.match(requests, pre_matched=pre_matched)
        self.slots += 1
        if result.iterations_to_maximal is not None:
            self.iterations_to_maximal.record(result.iterations_to_maximal)
        return result

    def note_transfer(self, guaranteed: bool = False) -> None:
        self.cells_transferred += 1
        if guaranteed:
            self.guaranteed_transferred += 1

    def utilization(self) -> float:
        if self.slots == 0:
            return 0.0
        return self.cells_transferred / (self.slots * self.n_ports)
