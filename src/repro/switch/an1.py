"""AN1 (Autonet): the packet-switched predecessor, for contrast.

Section 1: "AN1 was designed to provide the same service as ethernet,
transmitting variable-length packets between host computers...  AN1
supports a link bandwidth of 100 Mbit/sec...  A packet can be routed as
soon as its header has been received.  In the absence of contention, the
first bit of a packet leaves the switch 2 microseconds after it
arrives."  Each switch has 12 ports and **FIFO input buffers** -- the
head-of-line-blocking organisation AN2's random-access buffers replace.

Two AN1 behaviours this model exists to contrast with AN2:

- section 2: "In AN1, all switches must collaborate in a reconfiguration,
  and all packets in transit are dropped when a reconfiguration begins"
  (AN2's local reroute avoids this; ablation A5);
- section 5: AN1 prevents deadlock by **up*/down* route restriction**
  rather than per-VC buffers -- packets here carry the ``gone_down``
  bit and each hop forwards only along legal continuations.

The control plane (port monitors, skeptic, three-phase reconfiguration)
is shared verbatim with AN2 -- the same agents run on both switches,
which is itself a point of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Set

from collections import deque

from repro._types import NodeId
from repro.constants import AN1_LINK_BPS, AN1_SWITCH_PORTS, CUT_THROUGH_DELAY_US
from repro.core.reconfig.algorithm import ReconfigurationAgent
from repro.core.reconfig.monitor import PingPayload, PortMonitor, make_ack
from repro.core.reconfig.skeptic import LinkVerdict, Skeptic
from repro.core.routing.paths import RouteComputer, port_on
from repro.net.cell import Cell, CellKind
from repro.net.node import Node
from repro.net.packet import Packet
from repro.net.port import Port
from repro.net.topology import Edge
from repro.sim.kernel import Simulator
from repro.sim.monitor import Tally
from repro.sim.random import RandomStreams


@dataclass
class An1Config:
    n_ports: int = AN1_SWITCH_PORTS
    cut_through_delay_us: float = CUT_THROUGH_DELAY_US
    #: FIFO depth per input, in packets.
    fifo_packets: int = 64
    control_delay_us: float = 20.0
    ping_interval_us: float = 1_000.0
    ack_timeout_us: float = 400.0
    miss_threshold: int = 3
    skeptic_base_wait_us: float = 10_000.0
    skeptic_max_level: int = 8
    skeptic_decay_us: float = 1_000_000.0
    boot_reconfig_delay_us: float = 3_500.0
    reconfig_watchdog_us: float = 100_000.0
    #: the paper's AN1 behaviour; disable to measure its benefit.
    drop_packets_on_reconfig: bool = True


@dataclass
class _QueuedPacket:
    packet: Packet
    gone_down: bool
    enqueued_at: float


_an1_packet_overhead_bits = 96  # header+trailer, ethernet-ish


class An1Switch(Node):
    """A 12-port AN1 switch: FIFO input buffers, packet cut-through."""

    def __init__(
        self,
        sim: Simulator,
        node_id: NodeId,
        streams: RandomStreams,
        config: Optional[An1Config] = None,
        n_ports: Optional[int] = None,
        registry=None,
    ) -> None:
        self.config = config if config is not None else An1Config()
        ports = n_ports if n_ports is not None else self.config.n_ports
        super().__init__(sim, node_id, ports)
        self.streams = streams
        self.fifos: List[Deque[_QueuedPacket]] = [
            deque() for _ in range(ports)
        ]
        self._forwarding: List[bool] = [False] * ports  # per input
        self.monitors: Dict[int, PortMonitor] = {}
        self.skeptics: Dict[int, Skeptic] = {}
        self.reconfig = ReconfigurationAgent(
            sim,
            node_id,
            transport=self,
            watchdog_us=self.config.reconfig_watchdog_us,
        )
        self.reconfig.ready.subscribe(self._on_topology_ready)
        self.reconfig.joined.subscribe(self._on_reconfig_joined)
        self._route_computer: Optional[RouteComputer] = None
        self.packets_forwarded = 0
        self.packets_dropped_reconfig = 0
        self.packets_dropped_no_route = 0
        self.packets_dropped_overflow = 0
        self._started = False
        if registry is not None:
            probes = registry.node(f"an1.{node_id}")
            probes.gauge("packets_forwarded", lambda: self.packets_forwarded)
            probes.gauge(
                "dropped_reconfig", lambda: self.packets_dropped_reconfig
            )
            probes.gauge(
                "dropped_no_route", lambda: self.packets_dropped_no_route
            )
            probes.gauge(
                "dropped_overflow", lambda: self.packets_dropped_overflow
            )
            probes.gauge("buffered_packets", self.buffered_packets)

    # ==================================================================
    def start(self) -> None:
        if self._started:
            return
        self._started = True
        jitter = self.streams.stream(f"{self.node_id}.jitter")
        for port in self.ports:
            if not port.connected:
                continue
            skeptic = Skeptic(
                base_wait_us=self.config.skeptic_base_wait_us,
                max_level=self.config.skeptic_max_level,
                decay_interval_us=self.config.skeptic_decay_us,
                on_verdict=self._verdict_handler(port.index),
            )
            self.skeptics[port.index] = skeptic
            monitor = PortMonitor(
                self.sim,
                self.node_id,
                port,
                skeptic,
                ping_interval_us=self.config.ping_interval_us,
                ack_timeout_us=self.config.ack_timeout_us,
                miss_threshold=self.config.miss_threshold,
                start_offset_us=jitter.uniform(0, self.config.ping_interval_us),
            )
            self.monitors[port.index] = monitor
            monitor.start()
        self.sim.schedule(
            self.config.boot_reconfig_delay_us
            + jitter.uniform(0, self.config.ping_interval_us),
            self.reconfig.trigger,
        )

    def _verdict_handler(self, port_index: int):
        def handler(verdict: LinkVerdict, now: float) -> None:
            monitor = self.monitors.get(port_index)
            if (
                monitor is not None
                and monitor.neighbor is not None
                and monitor.neighbor[0].is_switch
            ):
                self.sim.schedule(
                    self.config.control_delay_us, self.reconfig.trigger
                )

        return handler

    # ==================================================================
    # ReconfigTransport interface (shared with AN2Switch)
    # ==================================================================
    def reconfig_ports(self) -> List[int]:
        eligible = []
        for index, monitor in self.monitors.items():
            if monitor.neighbor is None:
                continue
            skeptic = self.skeptics[index]
            if skeptic.verdict is not LinkVerdict.WORKING:
                continue
            if monitor.neighbor[0].is_switch:
                eligible.append(index)
        return sorted(eligible)

    def local_edges(self) -> Set[Edge]:
        edges: Set[Edge] = set()
        for index, monitor in self.monitors.items():
            if monitor.neighbor is None:
                continue
            if self.skeptics[index].verdict is not LinkVerdict.WORKING:
                continue
            neighbor_id, neighbor_port = monitor.neighbor
            a = (self.node_id, index)
            b = (neighbor_id, neighbor_port)
            edges.add((a, b) if a <= b else (b, a))
        return edges

    def send_reconfig(self, port_index: int, message) -> None:
        self.ports[port_index].send(
            Cell(vc=0, kind=CellKind.RECONFIG, payload=message)
        )

    def _on_topology_ready(self, value) -> None:
        tag, view = value
        root = tag.initiator
        if root not in set(view.switches()):
            switches = view.switches()
            root = switches[-1] if switches else self.node_id
        previous = self._route_computer
        if previous is not None and previous.root == root:
            try:
                self._route_computer = previous.with_view(view)
                return
            except ValueError:
                pass  # delta incompatible (e.g. disconnection): rebuild
        try:
            self._route_computer = RouteComputer(view, root)
        except ValueError:
            self._route_computer = None

    def _on_reconfig_joined(self, tag) -> None:
        """"all packets in transit are dropped when a reconfiguration
        begins" -- flush every FIFO."""
        if not self.config.drop_packets_on_reconfig:
            return
        for fifo in self.fifos:
            self.packets_dropped_reconfig += len(fifo)
            fifo.clear()

    # ==================================================================
    # packet data path
    # ==================================================================
    def on_cell(self, port: Port, cell: Cell) -> None:
        kind = cell.kind
        if kind is CellKind.DATA:
            self._accept_packet(port.index, cell.payload)
        elif kind is CellKind.PING:
            self.sim.schedule(
                1.0, self._reply_ping, port.index, cell.payload
            )
        elif kind is CellKind.PING_ACK:
            monitor = self.monitors.get(port.index)
            if monitor is not None:
                monitor.on_ack(cell.payload)
        elif kind is CellKind.RECONFIG:
            self.sim.schedule(
                self.config.control_delay_us,
                self.reconfig.handle,
                port.index,
                cell.payload,
            )
        else:
            raise ValueError(f"AN1 switch cannot handle cell kind {kind}")

    def _reply_ping(self, port_index: int, payload: PingPayload) -> None:
        port = self.ports[port_index]
        if port.connected:
            port.send(
                Cell(
                    vc=0,
                    kind=CellKind.PING_ACK,
                    payload=make_ack(payload, self.node_id, port_index),
                )
            )

    def _accept_packet(self, in_port: int, queued: "_QueuedPacket") -> None:
        fifo = self.fifos[in_port]
        if len(fifo) >= self.config.fifo_packets:
            self.packets_dropped_overflow += 1
            return
        queued.enqueued_at = self.sim.now
        fifo.append(queued)
        # Header processed after the cut-through delay.
        self.sim.schedule(
            self.config.cut_through_delay_us, self._try_forward, in_port
        )

    def _try_forward(self, in_port: int) -> None:
        """Serve the head of one input FIFO (head-of-line semantics)."""
        fifo = self.fifos[in_port]
        if self._forwarding[in_port] or not fifo:
            return
        head = fifo[0]
        out_port = self._output_for(head)
        if out_port is None:
            fifo.popleft()
            self.packets_dropped_no_route += 1
            self.sim.schedule(0.0, self._try_forward, in_port)
            return
        port = self.ports[out_port]
        if not port.connected or port.link is None or not port.link.working:
            fifo.popleft()
            self.packets_dropped_no_route += 1
            self.sim.schedule(0.0, self._try_forward, in_port)
            return
        if not port.can_transmit_at(self.sim.now):
            # Output busy: the whole input FIFO blocks (AN1's head-of-
            # line blocking).  Retry when the wire frees.
            delay = max(
                port.link.next_free(port._direction) - self.sim.now, 0.0
            )
            self._forwarding[in_port] = True
            self.sim.schedule(delay + 1e-6, self._retry, in_port)
            return
        fifo.popleft()
        head.gone_down = self._next_gone_down(head, out_port)
        bits = (head.packet.size or 0) * 8 + _an1_packet_overhead_bits
        port.send(Cell(vc=0, kind=CellKind.DATA, payload=head), bits=bits)
        self.packets_forwarded += 1
        if fifo:
            self.sim.schedule(0.0, self._try_forward, in_port)

    def _retry(self, in_port: int) -> None:
        self._forwarding[in_port] = False
        self._try_forward(in_port)

    def _output_for(self, queued: "_QueuedPacket") -> Optional[int]:
        computer = self._route_computer
        if computer is None:
            return None
        destination = queued.packet.destination
        # Directly attached host?
        for index, monitor in self.monitors.items():
            if (
                monitor.neighbor is not None
                and monitor.neighbor[0] == destination
                and self.skeptics[index].verdict is LinkVerdict.WORKING
            ):
                return index
        try:
            dest_switch, _ = computer.attachment(destination)
        except Exception:
            return None
        if dest_switch == self.node_id:
            return None
        hop = computer.orientation.next_hop(
            self.node_id, dest_switch, arrived_downward=queued.gone_down
        )
        if hop is None:
            return None
        _, edge = hop
        return port_on(edge, self.node_id)

    def _next_gone_down(self, queued: "_QueuedPacket", out_port: int) -> bool:
        computer = self._route_computer
        monitor = self.monitors.get(out_port)
        if computer is None or monitor is None or monitor.neighbor is None:
            return queued.gone_down
        neighbor_id, neighbor_port = monitor.neighbor
        if not neighbor_id.is_switch:
            return queued.gone_down
        a = (self.node_id, out_port)
        b = (neighbor_id, neighbor_port)
        edge = (a, b) if a <= b else (b, a)
        try:
            is_up = computer.orientation.is_up_traversal(edge, self.node_id)
        except (KeyError, ValueError):
            return queued.gone_down
        return queued.gone_down or not is_up

    def buffered_packets(self) -> int:
        return sum(len(fifo) for fifo in self.fifos)


class An1Host(Node):
    """A minimal AN1 host: whole-packet send/receive."""

    def __init__(
        self, sim: Simulator, node_id: NodeId, n_ports: int = 1,
        registry=None,
    ) -> None:
        super().__init__(sim, node_id, n_ports)
        self.delivered: List[Packet] = []
        if registry is not None:
            self.packet_latency = registry.tally(
                f"an1.{node_id}.an1_latency"
            )
        else:
            self.packet_latency = Tally(f"{node_id}.an1_latency")

    def send_packet(self, packet: Packet) -> None:
        packet.created_at = self.sim.now
        bits = (packet.size or 0) * 8 + _an1_packet_overhead_bits
        self.ports[0].send(
            Cell(
                vc=0,
                kind=CellKind.DATA,
                payload=_QueuedPacket(packet, gone_down=False, enqueued_at=self.sim.now),
            ),
            bits=bits,
        )

    def on_cell(self, port: Port, cell: Cell) -> None:
        if cell.kind is CellKind.DATA:
            queued = cell.payload
            packet = queued.packet
            packet.delivered_at = self.sim.now
            self.delivered.append(packet)
            self.packet_latency.record(packet.latency)
        elif cell.kind is CellKind.PING:
            payload = cell.payload
            port.send(
                Cell(
                    vc=0,
                    kind=CellKind.PING_ACK,
                    payload=make_ack(payload, self.node_id, port.index),
                )
            )
        elif cell.kind in (CellKind.PING_ACK, CellKind.RECONFIG):
            pass
        else:
            raise ValueError(f"AN1 host cannot handle {cell.kind}")


class An1Network:
    """Assembly of an AN1 installation (mirrors :class:`Network`)."""

    def __init__(self, topology, seed: int = 0, config: Optional[An1Config] = None):
        from repro.net.link import Link

        import repro.obs as obs
        from repro.obs import MetricsRegistry

        self.topology = topology
        self.sim = Simulator()
        self.registry = MetricsRegistry()
        cap = obs.active_capture()
        if cap is not None:
            self.sim.tracer = cap.tracer
            cap.adopt(self.registry)
        self.streams = RandomStreams(seed)
        self.config = config if config is not None else An1Config()
        self.switches: Dict[NodeId, An1Switch] = {}
        self.hosts: Dict[NodeId, An1Host] = {}
        self.links: Dict[Edge, object] = {}
        for node in topology.switches():
            self.switches[node] = An1Switch(
                self.sim,
                node,
                self.streams.fork(str(node)),
                config=self.config,
                n_ports=topology.ports_of(node),
                registry=self.registry,
            )
        for node in topology.hosts():
            self.hosts[node] = An1Host(
                self.sim, node, n_ports=topology.ports_of(node),
                registry=self.registry,
            )
        for spec in topology.cables():
            (node_a, pa), (node_b, pb) = spec.endpoints
            dev_a = self.switches.get(node_a) or self.hosts[node_a]
            dev_b = self.switches.get(node_b) or self.hosts[node_b]
            self.links[spec.endpoints] = Link(
                self.sim,
                dev_a.port(pa),
                dev_b.port(pb),
                length_km=spec.length_km,
                bps=AN1_LINK_BPS,
                rng=self.streams.stream(f"link.{node_a}.{pa}.{node_b}.{pb}"),
            )

    def start(self) -> None:
        for switch in self.switches.values():
            switch.start()

    def run(self, duration_us: float) -> None:
        self.sim.run(until=self.sim.now + duration_us)

    def converged(self) -> bool:
        agents = [s.reconfig for s in self.switches.values()]
        if any(a.active for a in agents):
            return False
        views = {a.view for a in agents}
        tags = {a.view_tag for a in agents}
        return len(views) == 1 and len(tags) == 1 and None not in tags

    def run_until_converged(self, timeout_us: float = 1_000_000.0) -> float:
        deadline = self.sim.now + timeout_us
        while self.sim.now < deadline:
            if self.converged():
                return self.sim.now
            self.sim.run(until=min(self.sim.now + 500.0, deadline))
        if self.converged():
            return self.sim.now
        raise RuntimeError("AN1 network failed to converge")

    def metrics_snapshot(self) -> Dict[str, dict]:
        return self.registry.snapshot()

    def total_dropped_on_reconfig(self) -> int:
        return sum(
            s.packets_dropped_reconfig for s in self.switches.values()
        )

    def buffered_packets(self) -> int:
        return sum(s.buffered_packets() for s in self.switches.values())
