"""Slot-synchronous single-switch fabric simulators.

These model exactly the crossbar semantics of section 3: time advances in
cell slots; at each slot new cells arrive at inputs, a scheduler pairs
inputs with outputs, and each paired input forwards one cell.  Three
buffer organisations are provided, matching the paper's comparison:

- :class:`VoqFabric` -- AN2's random-access input buffers: "Cells that
  cannot be forwarded in a time slot are retained at the input in a queue
  associated with their virtual circuit.  The first cell of any queued
  virtual circuit can be selected for transmission."  (A queue per
  (input, output) pair -- in a single-switch experiment a virtual circuit
  is identified by its output.)
- :class:`FifoFabric` -- AN1-style FIFO input buffers, exhibiting
  head-of-line blocking (the 58% ceiling).
- :class:`OutputQueueFabric` -- output buffering with internal speedup
  ``k``: up to ``k`` cells may cross to one output per slot ("typically by
  replicating the fabric k times"); with ``k = N`` and unbounded buffers
  this is the paper's performance yardstick.

Guaranteed traffic enters :class:`VoqFabric` through an optional frame
schedule: scheduled (input, output) pairs are served first from the
guaranteed queues, and best-effort matching fills the remaining ports --
including reserved slots whose guaranteed queue is empty, per section 4.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional, Sequence, Set, Tuple

from repro.core.matching.pim import MatchResult, Matching
from repro.sim.monitor import ProbeSet, Tally
from repro.traffic.arrivals import ArrivalProcess

Arrival = Tuple[int, int]

# _POW2[i] == 1 << i: an index is cheaper than a shift in the per-cell
# mask bookkeeping below (same trick as core.matching.bitmask).
_POW2: Tuple[int, ...] = tuple(1 << _i for _i in range(64))


@dataclass
class FabricMetrics:
    """Measurements accumulated over a fabric run."""

    slots: int = 0
    cells_offered: int = 0
    cells_delivered: int = 0
    cells_dropped: int = 0
    latency: Tally = field(default_factory=lambda: Tally("latency_slots"))
    iterations_to_maximal: Tally = field(
        default_factory=lambda: Tally("iterations_to_maximal")
    )
    maximal_within: Dict[int, int] = field(default_factory=dict)
    slots_with_backlog: int = 0
    delivered_per_pair: Dict[Arrival, int] = field(default_factory=dict)

    def record_delivery(self, pair: Arrival, waited_slots: int) -> None:
        self.cells_delivered += 1
        self.latency.record(waited_slots)
        self.delivered_per_pair[pair] = self.delivered_per_pair.get(pair, 0) + 1

    def utilization(self, n_ports: int) -> float:
        """Delivered cells per port per slot (1.0 = all links saturated)."""
        if self.slots == 0:
            return 0.0
        return self.cells_delivered / (self.slots * n_ports)

    @classmethod
    def on_probes(cls, probes: ProbeSet) -> "FabricMetrics":
        """A metrics object whose tallies live in a registry node.

        The tallies are reset so a fresh ``FabricMetrics`` starts empty
        even when the probe set is reused across warmup resets.
        """
        latency = probes.tally("latency_slots")
        iterations = probes.tally("iterations_to_maximal")
        latency.reset()
        iterations.reset()
        return cls(latency=latency, iterations_to_maximal=iterations)


def _fabric_metrics(probes: Optional[ProbeSet]) -> FabricMetrics:
    if probes is None:
        return FabricMetrics()
    return FabricMetrics.on_probes(probes)


def _register_fabric_gauges(fabric, probes: ProbeSet) -> None:
    """Counter gauges reading through ``fabric.metrics`` (which warmup
    resets swap out, hence the indirection)."""
    probes.gauge("slots", lambda: fabric.metrics.slots)
    probes.gauge("cells_offered", lambda: fabric.metrics.cells_offered)
    probes.gauge("cells_delivered", lambda: fabric.metrics.cells_delivered)
    probes.gauge("cells_dropped", lambda: fabric.metrics.cells_dropped)
    probes.gauge(
        "slots_with_backlog", lambda: fabric.metrics.slots_with_backlog
    )
    probes.gauge(
        "utilization", lambda: fabric.metrics.utilization(fabric.n_ports)
    )


class VoqFabric:
    """Random-access input buffers plus a pluggable matcher.

    The fabric keeps, for every input, a request *bitmask* with bit ``o``
    set iff the (input, ``o``) queue is non-empty, updated incrementally
    on :meth:`offer` and on delivery.  Schedulers that expose
    ``match_masks`` (the bitmask fast path in
    :mod:`repro.core.matching.bitmask`) receive those masks directly;
    reference set-based schedulers get per-slot request sets built from
    the same masks, so both plug in unchanged.
    """

    def __init__(
        self,
        n_ports: int,
        scheduler,
        buffer_capacity: Optional[int] = None,
        per_vc_capacity: Optional[int] = None,
        frame_schedule: Optional[Sequence[Matching]] = None,
        *,
        probes: Optional[ProbeSet] = None,
        tracer=None,
        component: str = "fabric",
    ) -> None:
        """Args:
            n_ports: switch radix.
            scheduler: any object with ``match(requests, pre_matched)``
                returning a :class:`MatchResult` (PIM, iSLIP, maximum).
                Objects that additionally provide ``match_masks(masks,
                pre_matched, col_masks)`` are called through the bitmask
                fast path, receiving the fabric's incrementally
                maintained request masks and their transpose.
            buffer_capacity: max best-effort cells buffered per input
                (``None`` = unbounded); overflow drops the arriving cell.
            per_vc_capacity: max cells per (input, output) queue -- AN2's
                per-virtual-circuit buffer pools, where one full circuit
                never steals another circuit's buffers.
            frame_schedule: per-slot guaranteed reservations, cycled with
                period ``len(frame_schedule)``; each entry maps input ->
                output for that slot.
            probes: registry node to host this fabric's metrics.
            tracer: optional :class:`~repro.obs.trace.Tracer`; emits
                ``fabric`` events (``match.round`` per slot and the
                ``voq.active``/``voq.idle`` occupancy transitions) with
                the slot index as the timestamp.
            component: component name stamped on trace records.
        """
        self.n_ports = n_ports
        self.scheduler = scheduler
        self.buffer_capacity = buffer_capacity
        self.per_vc_capacity = per_vc_capacity
        self.frame_schedule = list(frame_schedule) if frame_schedule else None
        # queues[input][output] -> deque of arrival slots (best effort).
        self.queues: List[Dict[int, Deque[int]]] = [
            {} for _ in range(n_ports)
        ]
        # Occupancy counters back the capacity checks; with unbounded
        # buffers nothing reads them per slot, so the hot loops skip the
        # upkeep and backlog() counts the queues directly instead.
        self._track_occupancy = (
            buffer_capacity is not None or per_vc_capacity is not None
        )
        self._occupancy: List[int] = [0] * n_ports
        # request_masks[input] has bit o set iff queues[input][o] exists;
        # col_masks is the transpose (bit i of col_masks[o]).  Both are
        # maintained incrementally so the per-slot scheduling call never
        # walks the queue dictionaries.
        self.request_masks: List[int] = [0] * n_ports
        self.col_masks: List[int] = [0] * n_ports
        # union_mask has bit o set iff any input has a cell for output o
        # (i.e. ``col_masks[o] != 0``); handed to bitmask schedulers so
        # they can skip re-deriving it from the rows.
        self.union_mask: int = 0
        self._use_masks = hasattr(scheduler, "match_masks")
        # Guaranteed queues, same indexing.
        self.guaranteed_queues: List[Dict[int, Deque[int]]] = [
            {} for _ in range(n_ports)
        ]
        self.tracer = tracer
        self.component = component
        self._probes = probes
        self.metrics = _fabric_metrics(probes)
        if probes is not None:
            _register_fabric_gauges(self, probes)
            probes.gauge("backlog", self.total_backlog)

    def reset_metrics(self) -> None:
        """Start a fresh measurement interval (e.g. after warmup)."""
        self.metrics = _fabric_metrics(self._probes)

    def recompute_masks(self) -> None:
        """Rebuild request/col/union masks from the queues.

        The masks are normally maintained incrementally by ``offer`` and
        ``step``; this re-derives them after bulk queue surgery -- the
        fastpath engine's write-back uses it when a vectorized fabric is
        pinned back onto the scalar path.
        """
        self.request_masks = [0] * self.n_ports
        self.col_masks = [0] * self.n_ports
        union = 0
        for input_port, queues in enumerate(self.queues):
            row = 0
            for output_port, queue in queues.items():
                if queue:
                    row |= _POW2[output_port]
                    self.col_masks[output_port] |= _POW2[input_port]
            self.request_masks[input_port] = row
            union |= row
        self.union_mask = union

    # ------------------------------------------------------------------
    def offer(self, input_port: int, output_port: int, slot: int) -> bool:
        """Enqueue a best-effort cell; returns False if dropped (overflow)."""
        metrics = self.metrics
        metrics.cells_offered += 1
        if (
            self.buffer_capacity is not None
            and self._occupancy[input_port] >= self.buffer_capacity
        ):
            metrics.cells_dropped += 1
            return False
        if self.per_vc_capacity is not None:
            existing = self.queues[input_port].get(output_port)
            if existing is not None and len(existing) >= self.per_vc_capacity:
                metrics.cells_dropped += 1
                return False
        queues = self.queues[input_port]
        queue = queues.get(output_port)
        if queue is None:
            # Avoid setdefault: it would construct a throwaway deque on
            # every offered cell once the queue exists.
            queue = queues[output_port] = deque()
            if self.tracer is not None:
                self.tracer.emit(
                    slot, "fabric", self.component, "voq.active",
                    input=input_port, output=output_port,
                )
        queue.append(slot)
        if self._track_occupancy:
            self._occupancy[input_port] += 1
        obit = _POW2[output_port]
        self.request_masks[input_port] |= obit
        self.col_masks[output_port] |= _POW2[input_port]
        self.union_mask |= obit
        return True

    def offer_batch(self, cells: Sequence[Arrival], slot: int) -> None:
        """Enqueue one slot's best-effort arrivals in a single call.

        Semantically identical to calling :meth:`offer` per cell (and
        falls back to exactly that when buffer limits are configured,
        so drop accounting is unchanged); the unbounded common case
        skips the per-cell method dispatch, which matters at saturation
        where every slot offers ``n_ports`` cells.
        """
        if (
            self.buffer_capacity is not None
            or self.per_vc_capacity is not None
            or self.tracer is not None
        ):
            # Capacity checks and voq.active tracing live in offer();
            # traced runs take the per-cell path so transitions are seen.
            for input_port, output_port in cells:
                self.offer(input_port, output_port, slot)
            return
        self.metrics.cells_offered += len(cells)
        all_queues = self.queues
        request_masks = self.request_masks
        col_masks = self.col_masks
        pow2 = _POW2
        union = 0
        for input_port, output_port in cells:
            try:
                # At any sustained load the VOQ almost always exists.
                all_queues[input_port][output_port].append(slot)
            except KeyError:
                all_queues[input_port][output_port] = deque((slot,))
            request_masks[input_port] |= (obit := pow2[output_port])
            union |= obit
            col_masks[output_port] |= pow2[input_port]
        self.union_mask |= union

    def offer_train(
        self, input_port: int, output_port: int, first_slot: int, count: int
    ) -> int:
        """Enqueue a cell train: ``count`` back-to-back cells from one
        input to one output, arriving in consecutive slots starting at
        ``first_slot``.  Returns how many were accepted.

        This is the fabric-side counterpart of link cell-train batching
        (:class:`~repro.net.link.Link` with ``batch_trains``): a burst
        delivered by one train event enqueues with one call, touching
        the VOQ dictionary and the request/column/union masks once
        instead of ``count`` times.  Semantically identical to ``count``
        :meth:`offer` calls -- capacity-limited or traced fabrics take
        exactly that path so drop accounting and ``voq.active``
        transitions are unchanged.
        """
        if count <= 0:
            return 0
        if (
            self.buffer_capacity is not None
            or self.per_vc_capacity is not None
            or self.tracer is not None
        ):
            accepted = 0
            for i in range(count):
                if self.offer(input_port, output_port, first_slot + i):
                    accepted += 1
            return accepted
        self.metrics.cells_offered += count
        queues = self.queues[input_port]
        queue = queues.get(output_port)
        if queue is None:
            queue = queues[output_port] = deque()
        queue.extend(range(first_slot, first_slot + count))
        obit = _POW2[output_port]
        self.request_masks[input_port] |= obit
        self.col_masks[output_port] |= _POW2[input_port]
        self.union_mask |= obit
        return count

    def offer_guaranteed(
        self, input_port: int, output_port: int, slot: int
    ) -> None:
        """Enqueue a guaranteed cell (its buffers are reserved; no drop)."""
        self.metrics.cells_offered += 1
        queue = self.guaranteed_queues[input_port].setdefault(
            output_port, deque()
        )
        queue.append(slot)

    def backlog(self, input_port: int) -> int:
        if self._track_occupancy:
            return self._occupancy[input_port]
        return sum(len(q) for q in self.queues[input_port].values())

    def total_backlog(self) -> int:
        if self._track_occupancy:
            return sum(self._occupancy)
        return sum(
            len(q) for queues in self.queues for q in queues.values()
        )

    # ------------------------------------------------------------------
    def step(self, slot: int) -> MatchResult:
        """Run one cell slot: guaranteed transfers, then best-effort fill."""
        pre_matched: Matching = {}
        if self.frame_schedule:
            reservations = self.frame_schedule[slot % len(self.frame_schedule)]
            for input_port, output_port in reservations.items():
                queue = self.guaranteed_queues[input_port].get(output_port)
                if queue:
                    # A guaranteed cell is present: the slot is used.
                    waited = slot - queue.popleft()
                    if not queue:
                        del self.guaranteed_queues[input_port][output_port]
                    self.metrics.record_delivery(
                        (input_port, output_port), waited
                    )
                    pre_matched[input_port] = output_port
                # else: the reserved slot is free for best-effort traffic.

        if self._use_masks:
            if pre_matched:
                reserved = 0
                for output_port in pre_matched.values():
                    reserved |= 1 << output_port
                masks = [
                    0 if i in pre_matched else self.request_masks[i] & ~reserved
                    for i in range(self.n_ports)
                ]
                union = None  # union_mask covers unfiltered rows only
                backlogged = any(masks)
            else:
                # Passed read-only; bitmask matchers never mutate masks.
                masks = self.request_masks
                union = self.union_mask
                backlogged = union != 0
            if backlogged:
                self.metrics.slots_with_backlog += 1
            result = self.scheduler.match_masks(
                masks, pre_matched, self.col_masks, union
            )
        else:
            # Hoist the reserved-output lookup out of the per-input loop:
            # ``pre_matched.values()`` is rebuilt on every membership test
            # when used inline.
            reserved_outputs: Set[int] = set(pre_matched.values())
            requests: List[Set[int]] = []
            for input_port in range(self.n_ports):
                if input_port in pre_matched:
                    requests.append(set())
                elif reserved_outputs:
                    requests.append(
                        {
                            o
                            for o in self.queues[input_port]
                            if o not in reserved_outputs
                        }
                    )
                else:
                    requests.append(set(self.queues[input_port]))
            if any(requests):
                self.metrics.slots_with_backlog += 1
            result = self.scheduler.match(requests, pre_matched=pre_matched)
        metrics = self.metrics
        bucket = result.iterations_to_maximal
        if bucket is not None:
            metrics.iterations_to_maximal.record(bucket)
            try:
                metrics.maximal_within[bucket] += 1
            except KeyError:
                metrics.maximal_within[bucket] = 1
        tracer = self.tracer
        if tracer is not None:
            tracer.emit(
                slot, "fabric", self.component, "match.round",
                matched=len(result.matching), iterations=bucket,
            )
        # Delivery loop, with metrics.record_delivery inlined: one
        # delivered cell per matched pair is the hottest path in every
        # load sweep, and the bound locals below are worth ~20% of a
        # saturated N=16 slot.
        queues = self.queues
        occupancy = self._occupancy
        track_occupancy = self._track_occupancy
        latency_samples = metrics.latency._samples
        delivered_per_pair = metrics.delivered_per_pair
        delivered = len(result.matching)
        # ``items()`` already materialises each pair as a tuple; reusing
        # it as the per-pair dict key avoids a second allocation per cell.
        for pair in result.matching.items():
            input_port, output_port = pair
            if pre_matched and input_port in pre_matched:
                delivered -= 1
                continue  # already served from the guaranteed queue
            try:
                queue = queues[input_port][output_port]
            except KeyError:
                raise RuntimeError(
                    f"scheduler matched empty queue {input_port}->{output_port}"
                ) from None
            waited = slot - queue.popleft()
            if not queue:
                del queues[input_port][output_port]
                self.request_masks[input_port] &= ~_POW2[output_port]
                col = self.col_masks[output_port] & ~_POW2[input_port]
                self.col_masks[output_port] = col
                if not col:
                    self.union_mask &= ~_POW2[output_port]
                if tracer is not None:
                    tracer.emit(
                        slot, "fabric", self.component, "voq.idle",
                        input=input_port, output=output_port,
                    )
            if track_occupancy:
                occupancy[input_port] -= 1
            latency_samples.append(waited)
            try:
                delivered_per_pair[pair] += 1
            except KeyError:
                delivered_per_pair[pair] = 1
        metrics.cells_delivered += delivered
        metrics.slots += 1
        return result


class FifoFabric:
    """A single FIFO queue per input: the head-of-line blocking baseline."""

    def __init__(
        self,
        n_ports: int,
        scheduler,
        buffer_capacity: Optional[int] = None,
        *,
        probes: Optional[ProbeSet] = None,
    ) -> None:
        self.n_ports = n_ports
        self.scheduler = scheduler
        self.buffer_capacity = buffer_capacity
        self.queues: List[Deque[Tuple[int, int]]] = [
            deque() for _ in range(n_ports)
        ]
        self._probes = probes
        self.metrics = _fabric_metrics(probes)
        if probes is not None:
            _register_fabric_gauges(self, probes)

    def reset_metrics(self) -> None:
        self.metrics = _fabric_metrics(self._probes)

    def offer(self, input_port: int, output_port: int, slot: int) -> bool:
        self.metrics.cells_offered += 1
        if (
            self.buffer_capacity is not None
            and len(self.queues[input_port]) >= self.buffer_capacity
        ):
            self.metrics.cells_dropped += 1
            return False
        self.queues[input_port].append((slot, output_port))
        return True

    def backlog(self, input_port: int) -> int:
        return len(self.queues[input_port])

    def total_backlog(self) -> int:
        return sum(len(q) for q in self.queues)

    def step(self, slot: int) -> MatchResult:
        heads: List[Optional[int]] = [
            queue[0][1] if queue else None for queue in self.queues
        ]
        if any(h is not None for h in heads):
            self.metrics.slots_with_backlog += 1
        result = self.scheduler.match_heads(heads)
        for input_port, output_port in result.matching.items():
            arrival, head_output = self.queues[input_port].popleft()
            assert head_output == output_port
            self.metrics.record_delivery(
                (input_port, output_port), slot - arrival
            )
        self.metrics.slots += 1
        return result


class OutputQueueFabric:
    """Output buffering with internal fabric speedup ``k``.

    Per slot: each output pulls up to ``k`` waiting cells across the
    fabric (oldest-first, ties by input index -- the replicated-fabric
    arbitration), then transmits one cell from its output queue.  With
    ``k = n_ports`` no cell ever waits at an input, which is the paper's
    "maximum attainable" comparison point for E3.
    """

    def __init__(
        self,
        n_ports: int,
        speedup: Optional[int] = None,
        buffer_capacity: Optional[int] = None,
        *,
        probes: Optional[ProbeSet] = None,
    ) -> None:
        self.n_ports = n_ports
        self.speedup = speedup if speedup is not None else n_ports
        if self.speedup < 1:
            raise ValueError(f"speedup {self.speedup} must be >= 1")
        self.buffer_capacity = buffer_capacity
        # Cells waiting at inputs to cross the fabric: (arrival, input) per output.
        self._waiting: List[Deque[Tuple[int, int]]] = [
            deque() for _ in range(n_ports)
        ]  # indexed by output
        self.output_queues: List[Deque[Tuple[int, int]]] = [
            deque() for _ in range(n_ports)
        ]
        self._probes = probes
        self.metrics = _fabric_metrics(probes)
        if probes is not None:
            _register_fabric_gauges(self, probes)

    def reset_metrics(self) -> None:
        self.metrics = _fabric_metrics(self._probes)

    def offer(self, input_port: int, output_port: int, slot: int) -> bool:
        self.metrics.cells_offered += 1
        self._waiting[output_port].append((slot, input_port))
        return True

    def total_backlog(self) -> int:
        waiting = sum(len(q) for q in self._waiting)
        queued = sum(len(q) for q in self.output_queues)
        return waiting + queued

    def step(self, slot: int) -> None:
        # Fabric transfer: each output accepts up to ``speedup`` cells.
        for output_port in range(self.n_ports):
            waiting = self._waiting[output_port]
            out_queue = self.output_queues[output_port]
            moved = 0
            while waiting and moved < self.speedup:
                if (
                    self.buffer_capacity is not None
                    and len(out_queue) >= self.buffer_capacity
                ):
                    waiting.popleft()
                    self.metrics.cells_dropped += 1
                    continue
                out_queue.append(waiting.popleft())
                moved += 1
        # Departure: each output transmits one cell.
        for output_port in range(self.n_ports):
            out_queue = self.output_queues[output_port]
            if out_queue:
                arrival, input_port = out_queue.popleft()
                self.metrics.record_delivery(
                    (input_port, output_port), slot - arrival
                )
        self.metrics.slots += 1


def run_fabric(
    fabric,
    traffic: ArrivalProcess,
    n_slots: int,
    warmup_slots: int = 0,
    on_slot: Optional[Callable[[int], None]] = None,
) -> FabricMetrics:
    """Drive a fabric with ``traffic`` for ``n_slots`` slots.

    ``warmup_slots`` initial slots run but their deliveries are not
    counted (the metrics object is replaced after warmup).  ``on_slot`` is
    an optional per-slot hook for custom probing.
    """
    offer_batch = getattr(fabric, "offer_batch", None)
    reset_metrics = getattr(fabric, "reset_metrics", None)
    for slot in range(n_slots + warmup_slots):
        if slot == warmup_slots:
            # reset_metrics keeps registry-owned tallies attached; ad-hoc
            # fabrics without it get the old wholesale replacement.
            if reset_metrics is not None:
                reset_metrics()
            else:
                fabric.metrics = FabricMetrics()
        arrivals = traffic.arrivals(slot)
        if offer_batch is not None:
            offer_batch(arrivals, slot)
        else:
            for input_port, output_port in arrivals:
                fabric.offer(input_port, output_port, slot)
        fabric.step(slot)
        if on_slot is not None:
            on_slot(slot)
    return fabric.metrics
