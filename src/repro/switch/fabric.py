"""Slot-synchronous single-switch fabric simulators.

These model exactly the crossbar semantics of section 3: time advances in
cell slots; at each slot new cells arrive at inputs, a scheduler pairs
inputs with outputs, and each paired input forwards one cell.  Three
buffer organisations are provided, matching the paper's comparison:

- :class:`VoqFabric` -- AN2's random-access input buffers: "Cells that
  cannot be forwarded in a time slot are retained at the input in a queue
  associated with their virtual circuit.  The first cell of any queued
  virtual circuit can be selected for transmission."  (A queue per
  (input, output) pair -- in a single-switch experiment a virtual circuit
  is identified by its output.)
- :class:`FifoFabric` -- AN1-style FIFO input buffers, exhibiting
  head-of-line blocking (the 58% ceiling).
- :class:`OutputQueueFabric` -- output buffering with internal speedup
  ``k``: up to ``k`` cells may cross to one output per slot ("typically by
  replicating the fabric k times"); with ``k = N`` and unbounded buffers
  this is the paper's performance yardstick.

Guaranteed traffic enters :class:`VoqFabric` through an optional frame
schedule: scheduled (input, output) pairs are served first from the
guaranteed queues, and best-effort matching fills the remaining ports --
including reserved slots whose guaranteed queue is empty, per section 4.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional, Sequence, Set, Tuple

from repro.core.matching.pim import MatchResult, Matching
from repro.sim.monitor import Tally
from repro.traffic.arrivals import ArrivalProcess

Arrival = Tuple[int, int]


@dataclass
class FabricMetrics:
    """Measurements accumulated over a fabric run."""

    slots: int = 0
    cells_offered: int = 0
    cells_delivered: int = 0
    cells_dropped: int = 0
    latency: Tally = field(default_factory=lambda: Tally("latency_slots"))
    iterations_to_maximal: Tally = field(
        default_factory=lambda: Tally("iterations_to_maximal")
    )
    maximal_within: Dict[int, int] = field(default_factory=dict)
    slots_with_backlog: int = 0
    delivered_per_pair: Dict[Arrival, int] = field(default_factory=dict)

    def record_delivery(self, pair: Arrival, waited_slots: int) -> None:
        self.cells_delivered += 1
        self.latency.record(waited_slots)
        self.delivered_per_pair[pair] = self.delivered_per_pair.get(pair, 0) + 1

    def utilization(self, n_ports: int) -> float:
        """Delivered cells per port per slot (1.0 = all links saturated)."""
        if self.slots == 0:
            return 0.0
        return self.cells_delivered / (self.slots * n_ports)


class VoqFabric:
    """Random-access input buffers plus a pluggable matcher."""

    def __init__(
        self,
        n_ports: int,
        scheduler,
        buffer_capacity: Optional[int] = None,
        per_vc_capacity: Optional[int] = None,
        frame_schedule: Optional[Sequence[Matching]] = None,
    ) -> None:
        """Args:
            n_ports: switch radix.
            scheduler: any object with ``match(requests, pre_matched)``
                returning a :class:`MatchResult` (PIM, iSLIP, maximum).
            buffer_capacity: max best-effort cells buffered per input
                (``None`` = unbounded); overflow drops the arriving cell.
            per_vc_capacity: max cells per (input, output) queue -- AN2's
                per-virtual-circuit buffer pools, where one full circuit
                never steals another circuit's buffers.
            frame_schedule: per-slot guaranteed reservations, cycled with
                period ``len(frame_schedule)``; each entry maps input ->
                output for that slot.
        """
        self.n_ports = n_ports
        self.scheduler = scheduler
        self.buffer_capacity = buffer_capacity
        self.per_vc_capacity = per_vc_capacity
        self.frame_schedule = list(frame_schedule) if frame_schedule else None
        # queues[input][output] -> deque of arrival slots (best effort).
        self.queues: List[Dict[int, Deque[int]]] = [
            {} for _ in range(n_ports)
        ]
        self._occupancy: List[int] = [0] * n_ports
        # Guaranteed queues, same indexing.
        self.guaranteed_queues: List[Dict[int, Deque[int]]] = [
            {} for _ in range(n_ports)
        ]
        self.metrics = FabricMetrics()

    # ------------------------------------------------------------------
    def offer(self, input_port: int, output_port: int, slot: int) -> bool:
        """Enqueue a best-effort cell; returns False if dropped (overflow)."""
        self.metrics.cells_offered += 1
        if (
            self.buffer_capacity is not None
            and self._occupancy[input_port] >= self.buffer_capacity
        ):
            self.metrics.cells_dropped += 1
            return False
        if self.per_vc_capacity is not None:
            existing = self.queues[input_port].get(output_port)
            if existing is not None and len(existing) >= self.per_vc_capacity:
                self.metrics.cells_dropped += 1
                return False
        queue = self.queues[input_port].setdefault(output_port, deque())
        queue.append(slot)
        self._occupancy[input_port] += 1
        return True

    def offer_guaranteed(
        self, input_port: int, output_port: int, slot: int
    ) -> None:
        """Enqueue a guaranteed cell (its buffers are reserved; no drop)."""
        self.metrics.cells_offered += 1
        queue = self.guaranteed_queues[input_port].setdefault(
            output_port, deque()
        )
        queue.append(slot)

    def backlog(self, input_port: int) -> int:
        return self._occupancy[input_port]

    def total_backlog(self) -> int:
        return sum(self._occupancy)

    # ------------------------------------------------------------------
    def step(self, slot: int) -> MatchResult:
        """Run one cell slot: guaranteed transfers, then best-effort fill."""
        pre_matched: Matching = {}
        if self.frame_schedule:
            reservations = self.frame_schedule[slot % len(self.frame_schedule)]
            for input_port, output_port in reservations.items():
                queue = self.guaranteed_queues[input_port].get(output_port)
                if queue:
                    # A guaranteed cell is present: the slot is used.
                    waited = slot - queue.popleft()
                    if not queue:
                        del self.guaranteed_queues[input_port][output_port]
                    self.metrics.record_delivery(
                        (input_port, output_port), waited
                    )
                    pre_matched[input_port] = output_port
                # else: the reserved slot is free for best-effort traffic.

        requests: List[Set[int]] = []
        for input_port in range(self.n_ports):
            if input_port in pre_matched:
                requests.append(set())
            else:
                requests.append(
                    {
                        o
                        for o in self.queues[input_port]
                        if o not in pre_matched.values()
                    }
                )
        if any(requests):
            self.metrics.slots_with_backlog += 1
        result = self.scheduler.match(requests, pre_matched=pre_matched)
        if result.iterations_to_maximal is not None:
            self.metrics.iterations_to_maximal.record(
                result.iterations_to_maximal
            )
            bucket = result.iterations_to_maximal
            self.metrics.maximal_within[bucket] = (
                self.metrics.maximal_within.get(bucket, 0) + 1
            )
        for input_port, output_port in result.matching.items():
            if input_port in pre_matched:
                continue  # already served from the guaranteed queue
            queue = self.queues[input_port].get(output_port)
            if queue is None:
                raise RuntimeError(
                    f"scheduler matched empty queue {input_port}->{output_port}"
                )
            waited = slot - queue.popleft()
            if not queue:
                del self.queues[input_port][output_port]
            self._occupancy[input_port] -= 1
            self.metrics.record_delivery((input_port, output_port), waited)
        self.metrics.slots += 1
        return result


class FifoFabric:
    """A single FIFO queue per input: the head-of-line blocking baseline."""

    def __init__(
        self,
        n_ports: int,
        scheduler,
        buffer_capacity: Optional[int] = None,
    ) -> None:
        self.n_ports = n_ports
        self.scheduler = scheduler
        self.buffer_capacity = buffer_capacity
        self.queues: List[Deque[Tuple[int, int]]] = [
            deque() for _ in range(n_ports)
        ]
        self.metrics = FabricMetrics()

    def offer(self, input_port: int, output_port: int, slot: int) -> bool:
        self.metrics.cells_offered += 1
        if (
            self.buffer_capacity is not None
            and len(self.queues[input_port]) >= self.buffer_capacity
        ):
            self.metrics.cells_dropped += 1
            return False
        self.queues[input_port].append((slot, output_port))
        return True

    def backlog(self, input_port: int) -> int:
        return len(self.queues[input_port])

    def total_backlog(self) -> int:
        return sum(len(q) for q in self.queues)

    def step(self, slot: int) -> MatchResult:
        heads: List[Optional[int]] = [
            queue[0][1] if queue else None for queue in self.queues
        ]
        if any(h is not None for h in heads):
            self.metrics.slots_with_backlog += 1
        result = self.scheduler.match_heads(heads)
        for input_port, output_port in result.matching.items():
            arrival, head_output = self.queues[input_port].popleft()
            assert head_output == output_port
            self.metrics.record_delivery(
                (input_port, output_port), slot - arrival
            )
        self.metrics.slots += 1
        return result


class OutputQueueFabric:
    """Output buffering with internal fabric speedup ``k``.

    Per slot: each output pulls up to ``k`` waiting cells across the
    fabric (oldest-first, ties by input index -- the replicated-fabric
    arbitration), then transmits one cell from its output queue.  With
    ``k = n_ports`` no cell ever waits at an input, which is the paper's
    "maximum attainable" comparison point for E3.
    """

    def __init__(
        self,
        n_ports: int,
        speedup: Optional[int] = None,
        buffer_capacity: Optional[int] = None,
    ) -> None:
        self.n_ports = n_ports
        self.speedup = speedup if speedup is not None else n_ports
        if self.speedup < 1:
            raise ValueError(f"speedup {self.speedup} must be >= 1")
        self.buffer_capacity = buffer_capacity
        # Cells waiting at inputs to cross the fabric: (arrival, input) per output.
        self._waiting: List[Deque[Tuple[int, int]]] = [
            deque() for _ in range(n_ports)
        ]  # indexed by output
        self.output_queues: List[Deque[Tuple[int, int]]] = [
            deque() for _ in range(n_ports)
        ]
        self.metrics = FabricMetrics()

    def offer(self, input_port: int, output_port: int, slot: int) -> bool:
        self.metrics.cells_offered += 1
        self._waiting[output_port].append((slot, input_port))
        return True

    def total_backlog(self) -> int:
        waiting = sum(len(q) for q in self._waiting)
        queued = sum(len(q) for q in self.output_queues)
        return waiting + queued

    def step(self, slot: int) -> None:
        # Fabric transfer: each output accepts up to ``speedup`` cells.
        for output_port in range(self.n_ports):
            waiting = self._waiting[output_port]
            out_queue = self.output_queues[output_port]
            moved = 0
            while waiting and moved < self.speedup:
                if (
                    self.buffer_capacity is not None
                    and len(out_queue) >= self.buffer_capacity
                ):
                    waiting.popleft()
                    self.metrics.cells_dropped += 1
                    continue
                out_queue.append(waiting.popleft())
                moved += 1
        # Departure: each output transmits one cell.
        for output_port in range(self.n_ports):
            out_queue = self.output_queues[output_port]
            if out_queue:
                arrival, input_port = out_queue.popleft()
                self.metrics.record_delivery(
                    (input_port, output_port), slot - arrival
                )
        self.metrics.slots += 1


def run_fabric(
    fabric,
    traffic: ArrivalProcess,
    n_slots: int,
    warmup_slots: int = 0,
    on_slot: Optional[Callable[[int], None]] = None,
) -> FabricMetrics:
    """Drive a fabric with ``traffic`` for ``n_slots`` slots.

    ``warmup_slots`` initial slots run but their deliveries are not
    counted (the metrics object is replaced after warmup).  ``on_slot`` is
    an optional per-slot hook for custom probing.
    """
    for slot in range(n_slots + warmup_slots):
        if slot == warmup_slots:
            fabric.metrics = FabricMetrics()
        for input_port, output_port in traffic.arrivals(slot):
            fabric.offer(input_port, output_port, slot)
        fabric.step(slot)
        if on_slot is not None:
            on_slot(slot)
    return fabric.metrics
