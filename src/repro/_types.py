"""Small shared value types and type aliases."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

#: Virtual circuit identifier (the VCI carried in every cell header).
VcId = int

#: Index of a port on a switch (0..15 for a full AN2 switch).
PortIndex = int


@dataclass(frozen=True, order=True)
class NodeId:
    """Globally unique node identity.

    Switch ids are totally ordered; the reconfiguration algorithm breaks
    epoch-tag ties on them, and up*/down* orientation uses them for links
    between same-level switches.  Ordering is (kind, num) so switches and
    hosts never collide.
    """

    kind: str  # "switch" or "host"
    num: int

    def __post_init__(self) -> None:
        if self.kind not in ("switch", "host"):
            raise ValueError(f"unknown node kind {self.kind!r}")

    @property
    def is_switch(self) -> bool:
        return self.kind == "switch"

    @property
    def is_host(self) -> bool:
        return self.kind == "host"

    def __str__(self) -> str:
        return f"{'s' if self.is_switch else 'h'}{self.num}"


def switch_id(num: int) -> NodeId:
    """The :class:`NodeId` of switch ``num``."""
    return NodeId("switch", num)


def host_id(num: int) -> NodeId:
    """The :class:`NodeId` of host ``num``."""
    return NodeId("host", num)


NodeRef = Union[NodeId, str]


def parse_node_id(ref: NodeRef) -> NodeId:
    """Accept ``NodeId`` or compact strings like ``"s3"`` / ``"h12"``."""
    if isinstance(ref, NodeId):
        return ref
    if isinstance(ref, str) and len(ref) >= 2 and ref[1:].isdigit():
        if ref[0] == "s":
            return switch_id(int(ref[1:]))
        if ref[0] == "h":
            return host_id(int(ref[1:]))
    raise ValueError(f"cannot parse node id {ref!r}")
