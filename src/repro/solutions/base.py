"""The Solution interface: interchangeable cures for cell loss.

A solution plugs into a scenario at three seams:

- **link observation** -- :meth:`Solution.attach` may install the
  :class:`~repro.net.link.Link` hooks (``tx_observers``,
  ``adjudicator``, ``deliver_hook``, ``state_observers``) on whichever
  links it cares about;
- **scenario lifecycle** -- the runner calls
  :meth:`Solution.on_circuits_open` after circuits are established
  (solutions that need extra circuits open them here, while the kernel
  is between ``run`` calls), :meth:`Solution.schedule_traffic` when
  traffic is laid out (returning True replaces the default recorded
  loads -- how ``e2e_arq`` substitutes ARQ transfers), and
  :meth:`Solution.finish` after the fault window, *before* the final
  settle -- a solution holding a link down for repair must release it
  here so full reconvergence stays a fair demand;
- **judgement** -- :meth:`Solution.metrics` feeds the comparison table
  and :meth:`Solution.invariants` may append solution-specific checks
  to the scenario verdict.

The digest-neutrality contract: a solution that overrides *nothing*
(:class:`~repro.solutions.do_nothing.DoNothing`) must leave a scenario
run digest-identical to a solution-less run.  ``attach`` therefore only
creates a metrics node (registry state is not digested); it must not
schedule events or install hooks.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, List, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.faults.invariants import InvariantResult
    from repro.faults.runner import ScenarioRunner
    from repro.net.network import Network


class SolutionError(Exception):
    """The solution could not be constructed or attached."""


class Solution:
    """Base class: every hook is a no-op; every subclass picks its seams."""

    #: registry / table name; subclasses override.
    name = "solution"

    def __init__(self) -> None:
        self.net: Optional["Network"] = None
        self.probes = None

    # -- lifecycle -----------------------------------------------------
    def attach(self, net: "Network") -> None:
        """Bind to a network (before boot).  Subclasses that install
        link hooks must call ``super().attach(net)`` first."""
        if self.net is not None and self.net is not net:
            raise SolutionError(
                f"solution {self.name!r} is already attached to a network; "
                "build a fresh instance per scenario run"
            )
        self.net = net
        self.probes = net.registry.node(f"solutions.{self.name}")

    def on_circuits_open(self, runner: "ScenarioRunner") -> None:
        """Called after the runner opened the load circuits (may advance
        simulated time; the kernel is between ``run`` calls here)."""

    def schedule_traffic(
        self, runner: "ScenarioRunner", t0: float, vcs: List[int]
    ) -> bool:
        """Lay out the scenario's traffic.  Return True to replace the
        runner's default recorded loads (``e2e_arq`` does); False keeps
        the default path byte-for-byte."""
        return False

    def finish(self, runner: "ScenarioRunner") -> None:
        """Called after the fault window, before the final settle; undo
        any administrative state (e.g. release links held for repair)."""

    # -- judgement -----------------------------------------------------
    def metrics(self) -> Dict[str, float]:
        """Plain numbers for the comparison table (name -> value)."""
        return {}

    def invariants(self, net: "Network") -> List["InvariantResult"]:
        """Solution-specific invariants appended to the scenario verdict."""
        return []

    def __repr__(self) -> str:  # pragma: no cover
        return f"<{type(self).__name__} {self.name}>"


#: name -> factory for every shipped solution (filled by the modules).
SOLUTIONS: Dict[str, Callable[..., Solution]] = {}


def register(name: str, factory: Callable[..., Solution]) -> None:
    SOLUTIONS[name] = factory


def make_solution(name: str, **kwargs) -> Solution:
    """Build a registered solution by name (keyword args reach the
    constructor)."""
    factory = SOLUTIONS.get(name)
    if factory is None:
        raise SolutionError(
            f"unknown solution {name!r}; choose from {sorted(SOLUTIONS)}"
        )
    return factory(**kwargs)
