"""Pluggable loss-recovery solutions for fault scenarios.

Section 5 rejects drop-and-retransmit for best-effort traffic in favour
of credits, and EXPERIMENTS A6 measures that ablation with a single
hand-wired ARQ.  This package turns the one-off into a comparative
harness: a :class:`~repro.solutions.base.Solution` is an interchangeable
cure for cell loss that any canned or chaos scenario can run under
(``ScenarioRunner(..., solution=...)``), so the same fault plan can be
judged with no recovery, with administrative disable-and-repair, with
LinkGuardian-style link-local retransmission, or with host-level
end-to-end ARQ -- and the penalties compared.

The four implementations:

- :class:`~repro.solutions.do_nothing.DoNothing` -- the baseline.
  Installs no hooks and schedules no events, so a scenario run under it
  is *digest-identical* to a solution-less run (checked by test).
- :class:`~repro.solutions.disable_repair.DisableAndRepair` -- on an
  error-burst threshold, administratively fail the link (triggering a
  reconfiguration that routes around it), then restore it after a
  repair delay.  Only acts when the link is locally safe to remove
  (its endpoints stay connected), the transition-safety discipline of
  consistent-network-update schemes.
- :class:`~repro.solutions.link_retx.LinkRetx` -- sub-RTT link-local
  retransmission between adjacent switches: a bounded retransmit buffer
  keyed by per-link cell sequence, corruption detected at the receiving
  port, NACK/resend over the reverse direction, FIFO order restored by
  a receiver-side resequencer, falling back to loss on buffer overflow.
- :class:`~repro.solutions.e2e_arq.EndToEndArq` -- wraps the existing
  :class:`~repro.traffic.arq.ArqTransfer` go-back-N at the hosts (with
  the bounded-retry / exponential-backoff knobs).

``tools/run_solutions.py`` runs the scenario x solution matrix and
emits the comparison table; per-solution probes (retransmit buffer
occupancy, resend counts, repair epochs consumed) live under the
``solutions.<name>`` node of the network's metrics registry.
"""

from repro.solutions.base import SOLUTIONS, Solution, make_solution
from repro.solutions.disable_repair import DisableAndRepair
from repro.solutions.do_nothing import DoNothing
from repro.solutions.e2e_arq import EndToEndArq
from repro.solutions.link_retx import LinkRetx, LinkRetxGuard

__all__ = [
    "SOLUTIONS",
    "Solution",
    "DisableAndRepair",
    "DoNothing",
    "EndToEndArq",
    "LinkRetx",
    "LinkRetxGuard",
    "make_solution",
]
