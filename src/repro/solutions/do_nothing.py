"""The baseline solution: recover nothing, observe nothing.

``do_nothing`` exists so every comparison table has an honest zero
point, and it carries a checkable contract: because it installs no link
hooks and schedules no events, a scenario run under it is
*digest-identical* to a solution-less run (the kernel dispatches the
same events in the same order and the network ends in the same state).
The conformance test pins that equality; any future hook that breaks it
is charging all four solutions for machinery only some of them use.
"""

from __future__ import annotations

from repro.solutions.base import Solution, register


class DoNothing(Solution):
    """Every hook inherited as a no-op; loss lands where it falls."""

    name = "do_nothing"


register(DoNothing.name, DoNothing)
