"""LinkGuardian-style link-local retransmission between adjacent switches.

Instead of surfacing a corrupted cell as loss for the end hosts to
repair (an end-to-end RTT plus a go-back-N window of waste), the two
ports of a link repair it between themselves in roughly one *link*
round trip:

- the sending port numbers every cell it serializes (a per-direction
  link-local sequence, assigned via ``Link.tx_observers``) and keeps a
  copy in a bounded retransmit buffer;
- the receiving port detects the corruption (the link's adjudication
  hook fires with reason ``"filtered"`` or ``"error"``) and NACKs the
  sequence number over the reverse direction -- modelled as a scheduled
  resend after the reverse propagation plus one cell's serialization;
- the sender retransmits the buffered copy (bounded ``max_resends`` per
  cell); the receiver holds back later cells until the gap is filled,
  so delivery order stays FIFO -- AAL5 reassembly requires strictly
  in-order sequence numbers per VC, so a resequencer is not optional;
- anything unrecoverable -- buffer overflow evicted the copy, the link
  died, the resend budget ran out -- is *declared lost* to the
  resequencer, which skips the gap and releases the held cells: the
  fallback is ordinary loss, never deadlock.

Simplifications, stated: the NACK itself is an abstract scheduled
callback (it occupies no reverse-direction wire capacity and cannot
itself be lost), and the implicit cumulative ack that frees a buffered
copy is delivery at the far port.  Both err in link_retx's favour by a
cell time or two; the comparison the A6 study cares about -- link RTT
recovery versus end-to-end RTT recovery -- dwarfs that.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Optional, Set

from repro.core.flowcontrol.sizing import retx_buffer_for_link
from repro.net.cell import Cell
from repro.net.link import Link
from repro.sim.kernel import Simulator
from repro.solutions.base import Solution, register


class LinkRetxGuard:
    """Link-local retransmission state for ONE link (both directions).

    One guard object plays both ends: sender-side numbering and buffer,
    receiver-side detection and resequencing.  Usable standalone (the
    conformance oracle attaches it to a bare :class:`Link`); the
    :class:`LinkRetx` solution instantiates one per switch-to-switch
    link of a network.
    """

    def __init__(
        self,
        link: Link,
        sim: Optional[Simulator] = None,
        buffer_cells: Optional[int] = None,
        max_resends: int = 3,
        nack_delay_us: Optional[float] = None,
        holdback_limit: Optional[int] = None,
    ) -> None:
        if max_resends < 1:
            raise ValueError(f"max_resends must be >= 1, got {max_resends}")
        self.link = link
        self.sim = sim if sim is not None else link.sim
        #: per-direction retransmit buffer bound, sized like credits:
        #: a copy must survive one link round trip (cell out, NACK back).
        self.buffer_cells = (
            buffer_cells
            if buffer_cells is not None
            else retx_buffer_for_link(link.length_km, link.bps)
        )
        if self.buffer_cells < 1:
            raise ValueError(f"buffer_cells must be >= 1, got {buffer_cells}")
        self.max_resends = max_resends
        #: detection-to-resend turnaround: the NACK rides the reverse
        #: direction (one propagation) plus one cell serialization.
        self.nack_delay_us = (
            nack_delay_us
            if nack_delay_us is not None
            else link.latency_us + link.cell_time_us
        )
        self.holdback_limit = (
            holdback_limit if holdback_limit is not None
            else 4 * self.buffer_cells
        )
        # -- per-direction state (index 0: a->b, 1: b->a) --------------
        self._next_seq = [0, 0]
        self._seq_of: List[Dict[int, int]] = [{}, {}]  # cell.uid -> seq
        self._buffer: List["OrderedDict[int, Cell]"] = [
            OrderedDict(), OrderedDict(),
        ]
        self._resends_left: List[Dict[int, int]] = [{}, {}]
        self._expected = [0, 0]          # receiver resequencer cursor
        self._holdback: List[Dict[int, Cell]] = [{}, {}]
        self._lost: List[Set[int]] = [set(), set()]
        # -- counters --------------------------------------------------
        self.nacks = 0
        self.resends = 0
        self.recovered = 0
        self.abandoned = 0
        self.buffer_overflows = 0
        self.holdback_overflows = 0
        self.duplicates = 0
        self.max_occupancy = 0
        self._attached = False
        self._install()

    # ------------------------------------------------------------------
    def _install(self) -> None:
        link = self.link
        if link.adjudicator is not None or link.deliver_hook is not None:
            raise ValueError(
                f"{link!r} already has a loss-recovery guard attached"
            )
        link.tx_observers.append(self._on_transmit)
        link.adjudicator = self._adjudicate
        link.deliver_hook = self._on_deliver
        self._attached = True

    def detach(self) -> None:
        """Remove the hooks (the link reverts to plain loss)."""
        if not self._attached:
            return
        self.link.tx_observers.remove(self._on_transmit)
        self.link.adjudicator = None
        self.link.deliver_hook = None
        self._attached = False

    def occupancy(self) -> int:
        """Cells currently held in the retransmit buffers (both ways)."""
        return len(self._buffer[0]) + len(self._buffer[1])

    # ------------------------------------------------------------------
    # sender side
    # ------------------------------------------------------------------
    def _on_transmit(self, link: Link, direction: int, cell: Cell) -> None:
        seqs = self._seq_of[direction]
        if cell.uid in seqs:
            return  # a resend keeps its original sequence number
        seq = self._next_seq[direction]
        self._next_seq[direction] = seq + 1
        seqs[cell.uid] = seq
        buffer = self._buffer[direction]
        buffer[seq] = cell
        if len(buffer) > self.buffer_cells:
            # Bounded buffer: evict the oldest unacknowledged copy; a
            # later NACK for it is answered by declaring the cell lost.
            buffer.popitem(last=False)
            self.buffer_overflows += 1
        occupancy = self.occupancy()
        if occupancy > self.max_occupancy:
            self.max_occupancy = occupancy

    def _resend(self, direction: int, seq: int) -> None:
        if seq < self._expected[direction] or seq in self._lost[direction]:
            return  # settled while the NACK was in flight
        cell = self._buffer[direction].get(seq)
        if cell is None or not self.link.working:
            self._abandon(direction, seq)
            return
        self.resends += 1
        self.link.transmit(direction, cell)

    # ------------------------------------------------------------------
    # receiver side: detection
    # ------------------------------------------------------------------
    def _adjudicate(
        self, link: Link, direction: int, cell: Cell, reason: str
    ) -> None:
        seq = self._seq_of[direction].get(cell.uid)
        if seq is None:
            return  # never numbered (transmitted before the guard attached)
        if seq < self._expected[direction] or seq in self._lost[direction]:
            return
        if reason == "dead":
            # Nothing to NACK over a dead link; recovery is the
            # reconfiguration layer's job.  Declare the cell lost so the
            # resequencer never waits for it.
            self._abandon(direction, seq)
            return
        remaining = self._resends_left[direction].setdefault(
            seq, self.max_resends
        )
        if remaining <= 0 or seq not in self._buffer[direction]:
            self._abandon(direction, seq)
            return
        self._resends_left[direction][seq] = remaining - 1
        self.nacks += 1
        self.sim.schedule(self.nack_delay_us, self._resend, direction, seq)

    # ------------------------------------------------------------------
    # receiver side: resequencing
    # ------------------------------------------------------------------
    def _on_deliver(self, link: Link, direction: int, cell: Cell) -> bool:
        seq = self._seq_of[direction].get(cell.uid)
        if seq is None:
            return False  # unnumbered: let the link deliver directly
        if seq < self._expected[direction] or seq in self._lost[direction]:
            self.duplicates += 1
            return True  # late copy of a settled sequence; swallow it
        if seq == self._expected[direction]:
            self._release(direction, seq, cell)
            self._expected[direction] = seq + 1
            self._drain(direction)
            return True
        # A gap (its recovery is in flight) precedes us: hold FIFO order.
        self._holdback[direction][seq] = cell
        if len(self._holdback[direction]) > self.holdback_limit:
            # The gap is taking too long to fill; fall back to loss for
            # the blocking sequence so held cells cannot pile up forever.
            self.holdback_overflows += 1
            self._abandon(direction, self._expected[direction])
        return True

    def _release(self, direction: int, seq: int, cell: Cell) -> None:
        """Deliver one in-order cell to the target port and free state."""
        if seq in self._resends_left[direction]:
            self.recovered += 1
        self._buffer[direction].pop(seq, None)
        self._resends_left[direction].pop(seq, None)
        self._seq_of[direction].pop(cell.uid, None)
        self.link.target_port(direction).deliver(cell)

    def _drain(self, direction: int) -> None:
        """Advance the cursor over held-back cells and declared losses."""
        while True:
            expected = self._expected[direction]
            if expected in self._lost[direction]:
                self._lost[direction].discard(expected)
                self._expected[direction] = expected + 1
                continue
            cell = self._holdback[direction].pop(expected, None)
            if cell is None:
                return
            self._release(direction, expected, cell)
            self._expected[direction] = expected + 1

    def _abandon(self, direction: int, seq: int) -> None:
        """Give up on ``seq``: fall back to loss and unblock the cursor."""
        if seq < self._expected[direction] or seq in self._lost[direction]:
            return
        self.abandoned += 1
        cell = self._buffer[direction].pop(seq, None)
        self._resends_left[direction].pop(seq, None)
        if cell is not None:
            self._seq_of[direction].pop(cell.uid, None)
        if seq == self._expected[direction]:
            self._expected[direction] = seq + 1
            self._drain(direction)
        else:
            self._lost[direction].add(seq)


class LinkRetx(Solution):
    """One :class:`LinkRetxGuard` per switch-to-switch link."""

    name = "link_retx"

    def __init__(
        self,
        buffer_cells: Optional[int] = None,
        max_resends: int = 3,
        holdback_limit: Optional[int] = None,
    ) -> None:
        super().__init__()
        self.buffer_cells = buffer_cells
        self.max_resends = max_resends
        self.holdback_limit = holdback_limit
        self.guards: List[LinkRetxGuard] = []

    def attach(self, net) -> None:
        super().attach(net)
        for edge, link in sorted(net.links.items()):
            (node_a, _), (node_b, _) = edge
            if not (node_a.is_switch and node_b.is_switch):
                continue  # host access links keep end-to-end semantics
            self.guards.append(
                LinkRetxGuard(
                    link,
                    buffer_cells=self.buffer_cells,
                    max_resends=self.max_resends,
                    holdback_limit=self.holdback_limit,
                )
            )
        self.probes.gauge(
            "retx_buffer_occupancy",
            lambda: sum(g.occupancy() for g in self.guards),
        )

    def finish(self, runner) -> None:
        totals = self.metrics()
        for key in ("resends", "nacks", "recovered", "abandoned",
                    "buffer_overflows"):
            counter = self.probes.counter(key)
            counter.increment(int(totals[key]) - counter.value)

    def metrics(self) -> Dict[str, float]:
        return {
            "guards": len(self.guards),
            "nacks": sum(g.nacks for g in self.guards),
            "resends": sum(g.resends for g in self.guards),
            "recovered": sum(g.recovered for g in self.guards),
            "abandoned": sum(g.abandoned for g in self.guards),
            "buffer_overflows": sum(g.buffer_overflows for g in self.guards),
            "holdback_overflows": sum(
                g.holdback_overflows for g in self.guards
            ),
            "max_buffer_occupancy": max(
                (g.max_occupancy for g in self.guards), default=0
            ),
        }

    def invariants(self, net) -> List:
        from repro.faults.invariants import InvariantResult

        # Accounting closure: every NACK either recovered its cell or
        # was abandoned; nothing may be left pending once the scenario
        # has drained (a pending NACK at quiescence is a stuck gap).
        problems: List[str] = []
        for guard in self.guards:
            held = len(guard._holdback[0]) + len(guard._holdback[1])
            if held:
                problems.append(
                    f"{guard.link!r}: {held} cells still held back"
                )
        if problems:
            return [
                InvariantResult(
                    "link_retx resequencers drained", False,
                    "; ".join(problems[:5]),
                )
            ]
        totals = self.metrics()
        return [
            InvariantResult(
                "link_retx resequencers drained", True,
                f"{int(totals['recovered'])} recovered, "
                f"{int(totals['abandoned'])} fell back to loss, "
                f"no cells held back at quiescence",
            )
        ]


register(LinkRetx.name, LinkRetx)
