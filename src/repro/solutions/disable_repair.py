"""Administrative disable-and-repair: route around a sick link.

The paper's position (section 2) is that the reconfiguration layer
turns component failure into a routine event: take the component out,
let the spanning-tree/flood machinery rebuild routes without it, put it
back when fixed.  This solution applies that posture to *intermittent*
faults, the kind the skeptic exists for: a link that is corrupting
cells faster than some threshold is administratively failed (a
deliberate :meth:`~repro.net.link.Link.fail`, indistinguishable to the
reconfiguration layer from pulling the plug), repaired off-line for
``repair_delay_us``, then restored -- consuming two reconfiguration
epochs per repair cycle.

Two disciplines keep this honest:

- **transition safety** -- a link is only disabled when its endpoints
  remain connected through the surviving working switch graph, so the
  cure never partitions the network the way the disease might not have
  (the consistent-update rule: verify the post-removal topology before
  acting);
- **bounded appetite** -- at most ``max_repairs_per_link`` cycles per
  link per scenario, so a persistently noisy link cannot keep the
  network in reconfiguration forever; after the budget, its loss is
  endured.

The threshold decision runs on the link's adjudication hook, but the
repair itself is a zero-delay scheduled event: ``Link.fail`` flushes
trains and fans out to state observers, which must not reenter from
the middle of a ``_deliver`` call.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Set, Tuple

from repro.net.cell import Cell
from repro.net.link import Link
from repro.solutions.base import Solution, register


class DisableAndRepair(Solution):
    """Threshold-triggered administrative link repair."""

    name = "disable_and_repair"

    def __init__(
        self,
        error_threshold: int = 5,
        window_us: float = 20_000.0,
        repair_delay_us: float = 60_000.0,
        max_repairs_per_link: int = 2,
    ) -> None:
        super().__init__()
        if error_threshold < 1:
            raise ValueError(
                f"error_threshold must be >= 1, got {error_threshold}"
            )
        if repair_delay_us <= 0:
            raise ValueError(
                f"repair_delay_us must be positive, got {repair_delay_us}"
            )
        self.error_threshold = error_threshold
        self.window_us = window_us
        self.repair_delay_us = repair_delay_us
        self.max_repairs_per_link = max_repairs_per_link
        self._watched: List[Link] = []
        #: per-link sliding window of corrupt-cell observation times.
        self._recent: Dict[int, Deque[float]] = {}
        self._repairs_used: Dict[int, int] = {}
        #: links currently held down for repair -> their restore event.
        self._in_repair: Dict[int, Tuple[Link, object]] = {}
        self.repairs_started = 0
        self.repairs_completed = 0
        self.unsafe_skips = 0
        self.corrupt_observed = 0

    # ------------------------------------------------------------------
    def attach(self, net) -> None:
        super().attach(net)
        for edge, link in sorted(net.links.items()):
            (node_a, _), (node_b, _) = edge
            if not (node_a.is_switch and node_b.is_switch):
                continue  # a host access link has no route around it
            if link.adjudicator is not None:
                raise ValueError(
                    f"{link!r} already has an adjudication hook attached"
                )
            link.adjudicator = self._adjudicate
            self._watched.append(link)
            self._recent[id(link)] = deque()
            self._repairs_used[id(link)] = 0
        probes = self.probes
        self._c_started = probes.counter("repairs_started")
        self._c_completed = probes.counter("repairs_completed")
        self._c_epochs = probes.counter("epochs_consumed")
        self._c_unsafe = probes.counter("unsafe_skips")
        self._c_corrupt = probes.counter("corrupt_observed")
        probes.gauge("links_in_repair", lambda: len(self._in_repair))

    # ------------------------------------------------------------------
    def _adjudicate(
        self, link: Link, direction: int, cell: Cell, reason: str
    ) -> None:
        if reason not in ("error", "filtered"):
            return  # "dead" is an outage, not noise; nothing to decide
        self.corrupt_observed += 1
        self._c_corrupt.increment()
        if id(link) in self._in_repair:
            return
        if self._repairs_used[id(link)] >= self.max_repairs_per_link:
            return
        window = self._recent[id(link)]
        now = link.sim.now
        window.append(now)
        while window and window[0] < now - self.window_us:
            window.popleft()
        if len(window) < self.error_threshold:
            return
        window.clear()
        # Decide here, act between deliveries: fail() flushes pending
        # trains and fans out to the reconfiguration machinery, neither
        # of which may reenter from inside this _deliver call.
        link.sim.schedule(0.0, self._begin_repair, link)

    def _begin_repair(self, link: Link) -> None:
        if id(link) in self._in_repair or not link.working:
            return  # a scenario fault beat us to it
        if self._repairs_used[id(link)] >= self.max_repairs_per_link:
            return
        if not self._safe_to_disable(link):
            self.unsafe_skips += 1
            self._c_unsafe.increment()
            return
        self._repairs_used[id(link)] += 1
        self.repairs_started += 1
        self._c_started.increment()
        self._c_epochs.increment()  # the disable forces one epoch
        link.set_error_rate(0.0)  # the repair fixes the physical fault
        link.fail()
        restore_event = link.sim.schedule(
            self.repair_delay_us, self._restore, link
        )
        self._in_repair[id(link)] = (link, restore_event)

    def _restore(self, link: Link) -> None:
        if self._in_repair.pop(id(link), None) is None:
            return
        self.repairs_completed += 1
        self._c_completed.increment()
        self._c_epochs.increment()  # ...and the restore forces another
        link.restore()

    # ------------------------------------------------------------------
    def _safe_to_disable(self, link: Link) -> bool:
        """Would the working switch graph stay connected without
        ``link``?  BFS over every other working switch-switch link."""
        adjacency: Dict[object, List[object]] = {}
        for edge, other in self.net.links.items():
            if other is link or not other.working:
                continue
            (node_a, _), (node_b, _) = edge
            if not (node_a.is_switch and node_b.is_switch):
                continue
            adjacency.setdefault(node_a, []).append(node_b)
            adjacency.setdefault(node_b, []).append(node_a)
        endpoints = [
            node
            for edge, candidate in self.net.links.items()
            if candidate is link
            for (node, _) in edge
        ]
        if len(endpoints) != 2:
            return False
        start, goal = endpoints
        seen: Set[object] = {start}
        frontier = deque([start])
        while frontier:
            node = frontier.popleft()
            if node == goal:
                return True
            for neighbor in adjacency.get(node, ()):
                if neighbor not in seen:
                    seen.add(neighbor)
                    frontier.append(neighbor)
        return False

    # ------------------------------------------------------------------
    def finish(self, runner) -> None:
        """Release every link still held for repair so the scenario's
        final reconvergence demand stays fair."""
        for link, restore_event in list(self._in_repair.values()):
            restore_event.cancel()
            self._restore(link)

    def metrics(self) -> Dict[str, float]:
        return {
            "repairs_started": self.repairs_started,
            "repairs_completed": self.repairs_completed,
            "epochs_consumed": self._c_epochs.value if self.probes else 0,
            "unsafe_skips": self.unsafe_skips,
            "corrupt_observed": self.corrupt_observed,
        }

    def invariants(self, net) -> List:
        from repro.faults.invariants import InvariantResult

        if self._in_repair:
            held = ", ".join(repr(l) for l, _ in self._in_repair.values())
            return [
                InvariantResult(
                    "repaired links released", False,
                    f"still held down at scenario end: {held}",
                )
            ]
        return [
            InvariantResult(
                "repaired links released", True,
                f"{self.repairs_completed}/{self.repairs_started} repair "
                f"cycles completed, {self.unsafe_skips} skipped as unsafe",
            )
        ]


register(DisableAndRepair.name, DisableAndRepair)
