"""End-to-end go-back-N ARQ as a pluggable solution.

This is the "drop and let higher levels retransmit" posture section 5
rejects for best-effort traffic, packaged so the A6 ablation can run it
against the same fault plans as the link-local alternatives.  Each
scenario load becomes one :class:`~repro.traffic.arq.ArqTransfer`: the
raw paced stream is replaced by a windowed reliable transfer over the
same circuit, with a reverse ack circuit opened alongside, and recovery
happens at host timescales -- an end-to-end RTT plus timeout slack per
loss, retransmitting the whole outstanding window.

The bounded-retry knobs added to :class:`ArqTransfer` matter here:
a chaos plan may sever a data circuit permanently, and without
``max_retries`` the sender would retransmit its window every timeout
until the scenario horizon -- an event storm that measures nothing.
A transfer that exhausts its retries parks in the terminal ``failed``
state and is reported as such in the comparison table.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.solutions.base import Solution, SolutionError, register
from repro.traffic.arq import ArqTransfer


class EndToEndArq(Solution):
    """One go-back-N transfer per scenario load."""

    name = "e2e_arq"

    def __init__(
        self,
        window: int = 8,
        timeout_us: float = 3_000.0,
        max_retries: Optional[int] = 25,
        backoff: float = 1.5,
    ) -> None:
        super().__init__()
        self.window = window
        self.timeout_us = timeout_us
        self.max_retries = max_retries
        self.backoff = backoff
        self._ack_vcs: List[int] = []
        self.transfers: List[ArqTransfer] = []

    # ------------------------------------------------------------------
    def on_circuits_open(self, runner) -> None:
        """Open the reverse ack circuit for every load (the kernel is
        between ``run`` calls here, so ``setup_circuit`` may block)."""
        for load in runner.loads:
            circuit = runner.net.setup_circuit(load.destination, load.source)
            self._ack_vcs.append(circuit.vc)

    def schedule_traffic(self, runner, t0: float, vcs: List[int]) -> bool:
        """Replace the raw paced loads with ARQ transfers.

        ``runner.sent`` keeps its empty per-circuit lists: the
        mis-assembly invariant compares recorded payloads, and the ARQ
        frames (sequence-numbered, self-checked by cumulative acks) are
        accounted by the transfers themselves instead.
        """
        if len(self._ack_vcs) != len(vcs):
            raise SolutionError(
                "ack circuits were not opened; the runner must call "
                "on_circuits_open before schedule_traffic"
            )
        net = runner.net
        for vc, ack_vc, load in zip(vcs, self._ack_vcs, runner.loads):
            transfer = ArqTransfer(
                sim=net.sim,
                sender=net.host(load.source),
                receiver=net.host(load.destination),
                data_vc=vc,
                ack_vc=ack_vc,
                n_packets=load.count,
                packet_bytes=load.packet_size,
                window=self.window,
                timeout_us=self.timeout_us,
                max_retries=self.max_retries,
                backoff=self.backoff,
                # Same offered load over the same span as the raw paced
                # stream it replaces -- without this the whole transfer
                # blasts through before the fault window even opens.
                pacing_us=load.interval_us,
            )
            self.transfers.append(transfer)
            net.sim.schedule_at(t0 + load.start_us, transfer.start)
        return True

    # ------------------------------------------------------------------
    def finish(self, runner) -> None:
        probes = self.probes
        totals = self.metrics()
        for key in ("e2e_retransmissions", "timeouts", "transfers_done",
                    "transfers_failed"):
            counter = probes.counter(key)
            counter.increment(int(totals[key]) - counter.value)

    def metrics(self) -> Dict[str, float]:
        transfers = self.transfers
        done = sum(1 for t in transfers if t.done)
        failed = sum(1 for t in transfers if t.failed)
        transmitted = sum(t.packets_transmitted for t in transfers)
        useful = sum(t.delivered for t in transfers)
        completions = [
            t.completed_at for t in transfers if t.completed_at is not None
        ]
        return {
            "transfers": len(transfers),
            "transfers_done": done,
            "transfers_failed": failed,
            "e2e_retransmissions": sum(t.retransmissions for t in transfers),
            "timeouts": sum(t.timeouts for t in transfers),
            "packets_transmitted": transmitted,
            "efficiency": (useful / transmitted) if transmitted else 0.0,
            "last_completion_us": max(completions) if completions else 0.0,
        }

    def invariants(self, net) -> List:
        from repro.faults.invariants import InvariantResult

        stuck = [
            t for t in self.transfers
            if not t.done and not t.failed
        ]
        if stuck:
            return [
                InvariantResult(
                    "arq transfers terminated", False,
                    f"{len(stuck)} transfer(s) neither done nor failed "
                    f"at scenario end (first: base={stuck[0].base}/"
                    f"{stuck[0].n_packets})",
                )
            ]
        done = sum(1 for t in self.transfers if t.done)
        failed = sum(1 for t in self.transfers if t.failed)
        return [
            InvariantResult(
                "arq transfers terminated", True,
                f"{done} completed, {failed} failed terminally",
            )
        ]


register(EndToEndArq.name, EndToEndArq)
