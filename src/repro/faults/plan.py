"""Declarative fault plans: what breaks, when, and for how long.

The paper's headline claim is operational: "A favorite AN1 demo is
pulling the plug on an arbitrary switch...  The network reconfigures in
less than 200 milliseconds, and users see no service interruption"
(section 1).  Reproducing that claim -- and the subtler ones about
skeptic hold-downs and credit resynchronization -- needs *scripted*
faults, not ad-hoc test code: a plan that says "at t=50ms cut this
trunk, at t=80ms start dropping credit cells, restore everything by
t=200ms", runs identically under any seed, and can be generated
randomly for chaos testing.

A :class:`FaultPlan` is an immutable, time-sorted sequence of fault
events.  Each event is a frozen dataclass naming the component it hits
and the window it is active; the :class:`~repro.faults.runner.ScenarioRunner`
translates them into simulator callbacks.  Times are microseconds
*relative to scenario start* (after initial convergence), so the same
plan applies to any topology that has the named components.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import ClassVar, Iterator, Optional, Sequence, Tuple, Union


class PlanError(Exception):
    """An event or plan that cannot describe a physical fault."""


@dataclass(frozen=True)
class LinkCut:
    """Cut the cable between two nodes; optionally splice it back."""

    kind: ClassVar[str] = "link_cut"
    at_us: float
    a: str
    b: str
    restore_at_us: Optional[float] = None

    def __post_init__(self) -> None:
        _check_start(self)
        if self.restore_at_us is not None and self.restore_at_us <= self.at_us:
            raise PlanError(
                f"link cut restored at {self.restore_at_us} before "
                f"it happens at {self.at_us}"
            )

    @property
    def end_us(self) -> float:
        return self.restore_at_us if self.restore_at_us is not None else self.at_us

    def describe(self) -> str:
        tail = (
            f", restored at {self.restore_at_us / 1000:.1f} ms"
            if self.restore_at_us is not None
            else " (permanent)"
        )
        return f"cut {self.a}<->{self.b} at {self.at_us / 1000:.1f} ms{tail}"


@dataclass(frozen=True)
class LinkFlap:
    """An intermittent fault: a train of down/up transitions.

    This is the input the skeptic exists for -- "a faulty link may
    exhibit intermittent failures" (section 2).  The link goes down at
    ``at_us``, comes back ``down_us`` later, and repeats ``flaps``
    times; it ends up *working*.
    """

    kind: ClassVar[str] = "link_flap"
    at_us: float
    a: str
    b: str
    flaps: int = 3
    down_us: float = 2_000.0
    up_us: float = 2_000.0

    def __post_init__(self) -> None:
        _check_start(self)
        if self.flaps <= 0:
            raise PlanError(f"flap train needs at least one flap, got {self.flaps}")
        if self.down_us <= 0 or self.up_us <= 0:
            raise PlanError(
                f"flap phases must be positive (down={self.down_us}, "
                f"up={self.up_us})"
            )

    @property
    def end_us(self) -> float:
        return self.at_us + self.flaps * (self.down_us + self.up_us)

    def describe(self) -> str:
        return (
            f"flap {self.a}<->{self.b} x{self.flaps} from "
            f"{self.at_us / 1000:.1f} ms ({self.down_us:.0f}us down / "
            f"{self.up_us:.0f}us up)"
        )


@dataclass(frozen=True)
class SwitchCrash:
    """Pull the plug on a switch: every cable to it goes dark at once."""

    kind: ClassVar[str] = "switch_crash"
    at_us: float
    switch: str
    restart_at_us: Optional[float] = None

    def __post_init__(self) -> None:
        _check_start(self)
        if self.restart_at_us is not None and self.restart_at_us <= self.at_us:
            raise PlanError(
                f"switch restarted at {self.restart_at_us} before "
                f"it crashes at {self.at_us}"
            )

    @property
    def end_us(self) -> float:
        return self.restart_at_us if self.restart_at_us is not None else self.at_us

    def describe(self) -> str:
        tail = (
            f", restarted at {self.restart_at_us / 1000:.1f} ms"
            if self.restart_at_us is not None
            else " (permanent)"
        )
        return f"crash {self.switch} at {self.at_us / 1000:.1f} ms{tail}"


@dataclass(frozen=True)
class CreditLossBurst:
    """Drop flow-control (CREDIT) cells on one link for a while.

    Exercises the claim that the credit scheme is "robust in the face
    of lost flow-control messages" (section 5): lost credits shrink the
    window; resynchronization must restore it exactly.  Resync
    request/reply cells ride the CREDIT kind too and survive the burst
    unless ``include_resync`` is set.
    """

    kind: ClassVar[str] = "credit_loss"
    at_us: float
    a: str
    b: str
    duration_us: float = 20_000.0
    probability: float = 1.0
    include_resync: bool = False

    def __post_init__(self) -> None:
        _check_start(self)
        if self.duration_us <= 0:
            raise PlanError(f"burst duration must be positive, got {self.duration_us}")
        if not 0.0 < self.probability <= 1.0:
            raise PlanError(f"drop probability {self.probability} out of (0, 1]")

    @property
    def end_us(self) -> float:
        return self.at_us + self.duration_us

    def describe(self) -> str:
        return (
            f"drop credits on {self.a}<->{self.b} "
            f"(p={self.probability:.2f}) for {self.duration_us / 1000:.1f} ms "
            f"from {self.at_us / 1000:.1f} ms"
        )


@dataclass(frozen=True)
class ErrorRateStep:
    """Step a link's cell error rate; optionally step it back to zero."""

    kind: ClassVar[str] = "error_rate"
    at_us: float
    a: str
    b: str
    rate: float = 0.01
    until_us: Optional[float] = None

    def __post_init__(self) -> None:
        _check_start(self)
        if not 0.0 <= self.rate <= 1.0:
            raise PlanError(f"error rate {self.rate} out of [0, 1]")
        if self.until_us is not None and self.until_us <= self.at_us:
            raise PlanError(
                f"error step ends at {self.until_us} before it starts "
                f"at {self.at_us}"
            )

    @property
    def end_us(self) -> float:
        return self.until_us if self.until_us is not None else self.at_us

    def describe(self) -> str:
        tail = (
            f" until {self.until_us / 1000:.1f} ms"
            if self.until_us is not None
            else ""
        )
        return (
            f"error rate {self.rate:.3f} on {self.a}<->{self.b} "
            f"from {self.at_us / 1000:.1f} ms{tail}"
        )


@dataclass(frozen=True)
class ClockDriftStep:
    """A switch oscillator goes out of spec: step its rate mid-run.

    Section 4: buffer requirements in the asynchronous regime depend on
    "the variation in switch clock rates"; this event lets scenarios
    perturb exactly that.
    """

    kind: ClassVar[str] = "clock_drift"
    at_us: float
    switch: str
    drift_ppm: float = 100.0

    def __post_init__(self) -> None:
        _check_start(self)
        if 1.0 + self.drift_ppm * 1e-6 <= 0:
            raise PlanError(f"drift {self.drift_ppm} ppm gives non-positive rate")

    @property
    def end_us(self) -> float:
        return self.at_us

    def describe(self) -> str:
        return (
            f"step {self.switch} clock to {self.drift_ppm:+.0f} ppm "
            f"at {self.at_us / 1000:.1f} ms"
        )


FaultEvent = Union[
    LinkCut, LinkFlap, SwitchCrash, CreditLossBurst, ErrorRateStep,
    ClockDriftStep,
]

EVENT_KINDS = (
    LinkCut, LinkFlap, SwitchCrash, CreditLossBurst, ErrorRateStep,
    ClockDriftStep,
)


def _check_start(event) -> None:
    if event.at_us < 0:
        raise PlanError(f"event scheduled before scenario start: {event.at_us}")


@dataclass(frozen=True)
class FaultPlan:
    """An immutable, time-sorted sequence of fault events."""

    events: Tuple[FaultEvent, ...] = ()

    def __post_init__(self) -> None:
        for event in self.events:
            if not isinstance(event, EVENT_KINDS):
                raise PlanError(f"not a fault event: {event!r}")
        ordered = tuple(sorted(self.events, key=lambda e: (e.at_us, e.kind)))
        object.__setattr__(self, "events", ordered)

    @classmethod
    def of(cls, *events: FaultEvent) -> "FaultPlan":
        return cls(tuple(events))

    @property
    def end_us(self) -> float:
        """When the last fault activity (including restores) is over."""
        return max((e.end_us for e in self.events), default=0.0)

    @property
    def last_onset_us(self) -> float:
        """When the last fault *begins* (convergence is judged after the
        last restore, but this is useful for reporting)."""
        return max((e.at_us for e in self.events), default=0.0)

    def describe(self) -> str:
        if not self.events:
            return "(empty plan)"
        return "\n".join(e.describe() for e in self.events)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[FaultEvent]:
        return iter(self.events)


def sequential_plan(events: Sequence[FaultEvent]) -> FaultPlan:
    """Convenience wrapper kept for symmetry with generated plans."""
    return FaultPlan(tuple(events))
