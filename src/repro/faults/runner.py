"""Applying a fault plan to a live network and judging the outcome.

The :class:`ScenarioRunner` is the harness behind the paper's
pull-the-plug demo and its chaos-test generalization.  It:

1. boots the network and waits for initial convergence,
2. opens circuits and schedules deterministic traffic (payloads are
   recorded so the mis-assembly invariant can compare bytes),
3. translates every :class:`~repro.faults.plan.FaultPlan` event into
   simulator callbacks (the event kernel is not reentrant, so all
   orchestration happens *between* ``run`` calls, and fault actions are
   plain scheduled events),
4. runs past the last fault, waits for the network to settle, drains
   queues, and
5. evaluates the invariant suite (:mod:`repro.faults.invariants`).

Randomness discipline: every fault event that needs an RNG (credit-loss
bursts) draws from its own substream of ``net.streams.fork("faults")``,
keyed by the event's index and kind -- adding a fault to a plan never
perturbs the randomness seen by the others, and the whole scenario
replays exactly from the network seed.

Observability: each fault opens a ``faults``-category trace span
(``fault.<kind>.begin`` / ``.end``) and bumps counters under the
``faults`` metrics node, so ``tools/trace_report.py`` timelines show
fault windows against reconfiguration activity.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.solutions.base import Solution

from repro.faults.invariants import InvariantResult, check_all
from repro.faults.plan import (
    ClockDriftStep,
    CreditLossBurst,
    ErrorRateStep,
    FaultPlan,
    LinkCut,
    LinkFlap,
    SwitchCrash,
)
from repro.net.cell import Cell, CellKind
from repro.net.network import Network, NetworkError
from repro.net.packet import Packet


class ScenarioError(Exception):
    """The scenario could not even be staged (bad load, boot failure...)."""


@dataclass(frozen=True)
class TrafficLoad:
    """Steady packet traffic on one circuit for the scenario's duration."""

    source: str
    destination: str
    packet_size: int = 480
    interval_us: float = 2_000.0
    count: int = 50
    start_us: float = 0.0  # relative to scenario start

    def __post_init__(self) -> None:
        if self.packet_size <= 0:
            raise ScenarioError(f"packet size {self.packet_size} not positive")
        if self.interval_us <= 0:
            raise ScenarioError(f"send interval {self.interval_us} not positive")
        if self.count <= 0:
            raise ScenarioError(f"packet count {self.count} not positive")


@dataclass
class ScenarioResult:
    """Everything a scenario produced, plus the invariant verdicts."""

    plan: FaultPlan
    boot_us: float
    settled_at_us: Optional[float]
    finished_at_us: float
    invariants: List[InvariantResult]
    sent: Dict[int, List[Packet]]
    delivered: int
    faults_applied: int
    sampled_violations: List[str] = field(default_factory=list)
    #: path of the flight-recorder dump written because an invariant
    #: failed (``None`` when everything passed or no ``flight_dir`` set).
    flight_dump: Optional[str] = None
    #: loss-recovery solution the scenario ran under (``None`` = bare).
    solution_name: Optional[str] = None
    #: the solution's own numbers for the comparison table.
    solution_metrics: Dict[str, float] = field(default_factory=dict)

    @property
    def passed(self) -> bool:
        return all(r.passed for r in self.invariants)

    @property
    def settle_after_last_fault_us(self) -> Optional[float]:
        """How long after the last fault activity the network settled."""
        if self.settled_at_us is None:
            return None
        return self.settled_at_us - (self.boot_us + self.plan.end_us)

    def report(self) -> str:
        lines = [
            f"plan ({len(self.plan)} events):",
            *("  " + line for line in self.plan.describe().splitlines()),
            f"boot converged at {self.boot_us / 1000:.1f} ms",
        ]
        if self.settled_at_us is not None:
            lines.append(
                f"settled at {self.settled_at_us / 1000:.1f} ms "
                f"({(self.settle_after_last_fault_us or 0) / 1000:.1f} ms "
                f"after last fault activity)"
            )
        else:
            lines.append("network did NOT settle after the last fault")
        total_sent = sum(len(p) for p in self.sent.values())
        lines.append(
            f"traffic: {total_sent} packets sent, {self.delivered} delivered"
        )
        if self.solution_name is not None:
            parts = ", ".join(
                f"{key}={value:g}"
                for key, value in sorted(self.solution_metrics.items())
            )
            lines.append(
                f"solution: {self.solution_name}"
                + (f" ({parts})" if parts else "")
            )
        lines.append("invariants:")
        lines.extend(f"  {result}" for result in self.invariants)
        verdict = "ALL GREEN" if self.passed else "VIOLATIONS FOUND"
        lines.append(f"verdict: {verdict}")
        if self.flight_dump is not None:
            lines.append(f"flight recorder dumped to {self.flight_dump}")
        return "\n".join(lines)


class ScenarioRunner:
    """Drives one :class:`FaultPlan` against one :class:`Network`."""

    def __init__(
        self,
        net: Network,
        plan: FaultPlan,
        loads: Sequence[TrafficLoad] = (),
        settle_us: float = 200_000.0,
        convergence_timeout_us: float = 2_000_000.0,
        sample_interval_us: float = 10_000.0,
        conservation_exact: Optional[bool] = None,
        flight_dir: Optional[str] = None,
        solution: Optional["Solution"] = None,
    ) -> None:
        self.net = net
        self.plan = plan
        self.loads = tuple(loads)
        #: loss-recovery solution driving this run (``None`` = bare run;
        #: kept distinct from DoNothing only in labeling -- the two are
        #: digest-identical by contract).
        self.solution = solution
        if solution is not None:
            solution.attach(net)
        self.settle_us = settle_us
        self.convergence_timeout_us = convergence_timeout_us
        self.sample_interval_us = sample_interval_us
        self.conservation_exact = conservation_exact
        if flight_dir is None:
            flight_dir = os.environ.get("REPRO_FLIGHT_DIR") or None
        #: directory for flight-recorder dumps on invariant failure (and,
        #: via the recorder's ``auto_dump_dir``, on kernel exceptions);
        #: ``None`` disables dumping.  Defaults to ``$REPRO_FLIGHT_DIR``.
        self.flight_dir = flight_dir
        recorder = net.sim.recorder
        if recorder is not None and flight_dir:
            recorder.auto_dump_dir = flight_dir
        self._streams = net.streams.fork("faults")
        self._probes = net.registry.node("faults")
        self._events_applied = self._probes.counter("events_applied")
        self.sent: Dict[int, List[Packet]] = {}
        self.sampled_violations: List[str] = []
        self._undo: List[Callable[[], None]] = []

    # ------------------------------------------------------------------
    # tracing helpers
    # ------------------------------------------------------------------
    def _span(self, name: str, **payload):
        recorder = self.net.sim.recorder
        if recorder is not None:
            recorder.record(self.net.now, "faults", name, **payload)
        tracer = self.net.sim.tracer
        if tracer is None:
            return None
        return tracer.span(self.net.now, "faults", "scenario", name, **payload)

    def _emit(self, name: str, **payload) -> None:
        tracer = self.net.sim.tracer
        if tracer is not None:
            tracer.emit(self.net.now, "faults", "scenario", name, **payload)
        recorder = self.net.sim.recorder
        if recorder is not None:
            recorder.record(self.net.now, "faults", name, **payload)

    def _count(self, name: str, amount: int = 1) -> None:
        self._probes.counter(name).increment(amount)
        self._events_applied.increment(amount)

    # ------------------------------------------------------------------
    # fault application (all run as scheduled simulator events)
    # ------------------------------------------------------------------
    def _schedule_plan(self, t0: float) -> None:
        for index, event in enumerate(self.plan):
            apply = {
                LinkCut: self._apply_link_cut,
                LinkFlap: self._apply_link_flap,
                SwitchCrash: self._apply_switch_crash,
                CreditLossBurst: self._apply_credit_burst,
                ErrorRateStep: self._apply_error_step,
                ClockDriftStep: self._apply_clock_drift,
            }[type(event)]
            self.net.sim.schedule_at(t0 + event.at_us, apply, t0, index, event)

    def _apply_link_cut(self, t0: float, index: int, event: LinkCut) -> None:
        link = self.net.link_between(event.a, event.b)
        span = self._span("fault.link_cut", a=event.a, b=event.b, index=index)
        self._count("link_cuts")
        link.fail()
        if event.restore_at_us is not None:
            def restore() -> None:
                link.restore()
                if span is not None:
                    span.end(self.net.now, restored=True)
            self.net.sim.schedule_at(t0 + event.restore_at_us, restore)
        else:
            self._undo.append(lambda: span and span.end(self.net.now, restored=False))

    def _apply_link_flap(self, t0: float, index: int, event: LinkFlap) -> None:
        link = self.net.link_between(event.a, event.b)
        span = self._span(
            "fault.link_flap", a=event.a, b=event.b, flaps=event.flaps,
            index=index,
        )
        period = event.down_us + event.up_us
        for flap in range(event.flaps):
            down_at = t0 + event.at_us + flap * period
            up_at = down_at + event.down_us
            self.net.sim.schedule_at(down_at, self._flap_transition, link, False)
            self.net.sim.schedule_at(up_at, self._flap_transition, link, True)
        if span is not None:
            self.net.sim.schedule_at(
                t0 + event.end_us, span.end, t0 + event.end_us
            )

    def _flap_transition(self, link, up: bool) -> None:
        self._count("flap_transitions")
        self._emit("fault.flap", link=repr(link), up=up)
        if up:
            link.restore()
        else:
            link.fail()

    def _apply_switch_crash(
        self, t0: float, index: int, event: SwitchCrash
    ) -> None:
        span = self._span("fault.switch_crash", switch=event.switch, index=index)
        self._count("switch_crashes")
        failed = self.net.crash_switch(event.switch)
        self._emit("fault.switch_crash.links", count=len(failed))
        if event.restart_at_us is not None:
            def restart() -> None:
                self.net.restore_switch(event.switch)
                if span is not None:
                    span.end(self.net.now, restarted=True)
            self.net.sim.schedule_at(t0 + event.restart_at_us, restart)
        else:
            self._undo.append(lambda: span and span.end(self.net.now, restarted=False))

    def _apply_credit_burst(
        self, t0: float, index: int, event: CreditLossBurst
    ) -> None:
        link = self.net.link_between(event.a, event.b)
        rng = self._streams.stream(f"{index}.credit_loss")
        span = self._span(
            "fault.credit_loss", a=event.a, b=event.b,
            probability=event.probability, index=index,
        )
        self._count("credit_bursts")
        previous = link.drop_filter
        dropped = self._probes.counter("credit_cells_dropped")

        def burst_filter(cell: Cell) -> bool:
            if previous is not None and previous(cell):
                return True
            if cell.kind is not CellKind.CREDIT:
                return False
            if not event.include_resync and not isinstance(cell.payload, int):
                # Resync request/reply cells ride the CREDIT kind; by
                # default only plain credit grants are lost, so the
                # recovery protocol itself survives the burst.
                return False
            if rng.random() < event.probability:
                dropped.increment()
                return True
            return False

        link.drop_filter = burst_filter

        def end_burst() -> None:
            link.drop_filter = previous
            if span is not None:
                span.end(self.net.now, credits_dropped=dropped.value)

        self.net.sim.schedule_at(t0 + event.end_us, end_burst)

    def _apply_error_step(
        self, t0: float, index: int, event: ErrorRateStep
    ) -> None:
        link = self.net.link_between(event.a, event.b)
        previous = link.error_rate
        span = self._span(
            "fault.error_rate", a=event.a, b=event.b, rate=event.rate,
            index=index,
        )
        self._count("error_rate_steps")
        link.set_error_rate(event.rate)
        if event.until_us is not None:
            def end_step() -> None:
                link.set_error_rate(previous)
                if span is not None:
                    span.end(self.net.now, corrupted=link.cells_corrupted)
            self.net.sim.schedule_at(t0 + event.until_us, end_step)
        else:
            self._undo.append(lambda: span and span.end(self.net.now))

    def _apply_clock_drift(
        self, t0: float, index: int, event: ClockDriftStep
    ) -> None:
        switch = self.net.switch(event.switch)
        self._count("clock_drift_steps")
        self._emit(
            "fault.clock_drift", switch=event.switch,
            drift_ppm=event.drift_ppm, index=index,
        )
        switch.clock.set_drift(event.drift_ppm)

    # ------------------------------------------------------------------
    # traffic
    # ------------------------------------------------------------------
    def _open_circuits(self) -> List[int]:
        """Establish one circuit per load (advances simulated time)."""
        vcs: List[int] = []
        for load in self.loads:
            circuit = self.net.setup_circuit(load.source, load.destination)
            self.sent[circuit.vc] = []
            vcs.append(circuit.vc)
        return vcs

    def _schedule_traffic(self, t0: float, vcs: List[int]) -> None:
        for load_index, (vc, load) in enumerate(zip(vcs, self.loads)):
            rng = self._streams.stream(f"traffic.{load_index}")
            for k in range(load.count):
                at = t0 + load.start_us + k * load.interval_us
                self.net.sim.schedule_at(at, self._send_one, vc, load, rng)

    def _send_one(self, vc: int, load: TrafficLoad, rng) -> None:
        host = self.net.host(load.source)
        if vc not in host.senders:
            return  # circuit was torn down by the scenario
        payload = bytes(rng.randrange(256) for _ in range(load.packet_size))
        packet = Packet(
            source=host.node_id,
            destination=host.senders[vc].destination,
            payload=payload,
        )
        self.sent[vc].append(packet)
        host.send_packet(vc, packet)

    # ------------------------------------------------------------------
    # mid-run sampling
    # ------------------------------------------------------------------
    def _sample(self) -> None:
        """Invariants that must hold DURING the run, not just at the end:
        no credit balance ever leaves [0, allocation] (the clamp fix),
        and no downstream buffer pool overflows (losslessness)."""
        for switch in self.net.switches.values():
            for card in switch.cards:
                for vc, upstream in card.upstream.items():
                    if not 0 <= upstream.balance <= upstream.allocation:
                        self.sampled_violations.append(
                            f"t={self.net.now:.0f}us {card.port.label}/vc{vc}: "
                            f"balance {upstream.balance}"
                        )
                for vc, downstream in card.downstream.items():
                    if downstream.overflows:
                        self.sampled_violations.append(
                            f"t={self.net.now:.0f}us {card.port.label}/vc{vc}: "
                            f"{downstream.overflows} buffer overflows"
                        )

    def _schedule_samples(self, t0: float, horizon: float) -> None:
        t = t0 + self.sample_interval_us
        while t < horizon:
            self.net.sim.schedule_at(t, self._sample)
            t += self.sample_interval_us

    # ------------------------------------------------------------------
    def run(self) -> ScenarioResult:
        """Execute the scenario end to end and judge it."""
        net = self.net
        net.start()
        try:
            boot_us = net.run_until(
                net.fully_reconfigured, timeout_us=self.convergence_timeout_us
            )
        except NetworkError as exc:
            raise ScenarioError(f"network never booted: {exc}") from exc

        scenario_span = self._span(
            "scenario", events=len(self.plan), loads=len(self.loads)
        )
        vcs = self._open_circuits()  # advances simulated time
        if self.solution is not None:
            self.solution.on_circuits_open(self)  # may advance time too
        t0 = net.now
        handled = (
            self.solution is not None
            and self.solution.schedule_traffic(self, t0, vcs)
        )
        if not handled:
            self._schedule_traffic(t0, vcs)
        self._schedule_plan(t0)
        horizon = t0 + self.plan.end_us + self.settle_us
        self._schedule_samples(t0, horizon)
        net.run(horizon - net.now)
        if self.solution is not None:
            # Before the settle phase: a solution holding links down for
            # repair must release them so full reconvergence (and the
            # convergence invariant) stays a fair demand.
            self.solution.finish(self)

        settled_at: Optional[float] = None
        try:
            settled_at = net.run_until(
                net.fully_reconfigured, timeout_us=self.convergence_timeout_us
            )
        except NetworkError:
            pass  # convergence invariant will report the failure
        # Drain: let queued cells, credits, and resync rounds finish.
        net.run(self.settle_us)
        self._sample()
        for undo in self._undo:
            undo()
        if scenario_span is not None:
            scenario_span.end(net.now, settled=settled_at is not None)

        invariants = check_all(
            net,
            self.sent,
            settled_at,
            conservation_exact=self.conservation_exact,
            extra_invariants=(
                self.solution.invariants(net)
                if self.solution is not None
                else None
            ),
        )
        if self.sampled_violations:
            invariants.append(
                InvariantResult(
                    "credit bounds held throughout (sampled)",
                    False,
                    "; ".join(self.sampled_violations[:5]),
                )
            )
        else:
            invariants.append(
                InvariantResult(
                    "credit bounds held throughout (sampled)",
                    True,
                    f"sampled every {self.sample_interval_us / 1000:.0f} ms",
                )
            )
        delivered = sum(len(h.delivered) for h in net.hosts.values())
        flight_dump: Optional[str] = None
        failed = [r.name for r in invariants if not r.passed]
        recorder = net.sim.recorder
        if failed and recorder is not None and self.flight_dir:
            from repro.obs.flight import next_dump_path

            path = next_dump_path(self.flight_dir, "invariant-violation")
            flight_dump = str(
                recorder.dump(
                    path,
                    reason="invariant violation: " + "; ".join(failed[:3]),
                )
            )
        return ScenarioResult(
            plan=self.plan,
            boot_us=boot_us,
            settled_at_us=settled_at,
            finished_at_us=net.now,
            invariants=invariants,
            sent=self.sent,
            delivered=delivered,
            faults_applied=self._events_applied.value,
            sampled_violations=self.sampled_violations,
            flight_dump=flight_dump,
            solution_name=(
                self.solution.name if self.solution is not None else None
            ),
            solution_metrics=(
                self.solution.metrics() if self.solution is not None else {}
            ),
        )


def run_scenario(
    net: Network,
    plan: FaultPlan,
    loads: Sequence[TrafficLoad] = (),
    **kwargs,
) -> ScenarioResult:
    """One-shot convenience: build a runner and run it."""
    return ScenarioRunner(net, plan, loads, **kwargs).run()
