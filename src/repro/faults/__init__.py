"""Fault-injection scenarios: declarative plans, a runner, invariants.

The paper's systems claims are operational ("pull the plug... users see
no service interruption"), so reproducing them takes scripted fault
campaigns with machine-checked recovery criteria.  See
:mod:`repro.faults.plan` for the event vocabulary,
:mod:`repro.faults.runner` for execution, and
:mod:`repro.faults.invariants` for what "recovered" means.
"""

from repro.faults.invariants import (
    InvariantResult,
    check_all,
    check_convergence,
    check_credit_conservation,
    check_no_misassembly,
    check_skeptic_bounded,
    max_verdict_changes,
)
from repro.faults.plan import (
    ClockDriftStep,
    CreditLossBurst,
    ErrorRateStep,
    FaultEvent,
    FaultPlan,
    LinkCut,
    LinkFlap,
    PlanError,
    SwitchCrash,
)
from repro.faults.runner import (
    ScenarioError,
    ScenarioResult,
    ScenarioRunner,
    TrafficLoad,
    run_scenario,
)
from repro.faults.scenarios import (
    CANNED,
    Scenario,
    build_corruption_burst,
    build_credit_loss,
    build_flapping_link,
    build_pull_the_plug,
    build_random_scenario,
    random_biconnected_topology,
    random_plan,
)

__all__ = [
    "CANNED",
    "ClockDriftStep",
    "CreditLossBurst",
    "ErrorRateStep",
    "FaultEvent",
    "FaultPlan",
    "InvariantResult",
    "LinkCut",
    "LinkFlap",
    "PlanError",
    "Scenario",
    "ScenarioError",
    "ScenarioResult",
    "ScenarioRunner",
    "SwitchCrash",
    "TrafficLoad",
    "build_corruption_burst",
    "build_credit_loss",
    "build_flapping_link",
    "build_pull_the_plug",
    "build_random_scenario",
    "check_all",
    "check_convergence",
    "check_credit_conservation",
    "check_no_misassembly",
    "check_skeptic_bounded",
    "max_verdict_changes",
    "random_biconnected_topology",
    "random_plan",
    "run_scenario",
]
