"""Post-scenario invariant checks.

A fault scenario is only a reproduction of the paper's claims if the
network *provably* recovered.  Four checks, each mapped to a claim:

- **convergence** -- "The network reconfigures in less than 200
  milliseconds" (section 1): after the last fault clears, the largest
  working partition settles on ONE epoch whose distributed view matches
  physical reality.
- **skeptic bound** -- "too-frequent reconfigurations can keep the
  network from providing service" (section 2): under any flap train,
  each skeptic's published verdict changes at most a computable number
  of times, because probation periods escalate geometrically.
- **credit conservation** -- the scheme is "robust in the face of lost
  flow-control messages" (section 5): at quiescence every surviving
  credit balance equals the value derived from the cumulative
  sent/freed counters (resynchronization restored exactly what was
  lost; duplicated credits were clamped, not banked).
- **no silent mis-assembly** -- cells are dropped, never corrupted into
  plausible packets: every delivered packet is byte-identical to what
  was sent, no packet is delivered twice, and every missing packet is
  accounted for by observed loss.

Each check returns an :class:`InvariantResult`; the runner aggregates
them into the scenario verdict.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.net.network import Network
from repro.net.packet import Packet


@dataclass
class InvariantResult:
    """One checked invariant: a verdict and a human-readable account."""

    name: str
    passed: bool
    detail: str

    def __str__(self) -> str:  # pragma: no cover - formatting aid
        mark = "PASS" if self.passed else "FAIL"
        return f"[{mark}] {self.name}: {self.detail}"


# ======================================================================
# skeptic verdict-change bound
# ======================================================================
def max_verdict_changes(
    duration_us: float,
    base_wait_us: float,
    max_level: int,
    decay_interval_us: float = float("inf"),
) -> int:
    """An upper bound on published verdict changes in ``duration_us``.

    The skeptic publishes WORKING only after surviving a probation of
    ``base_wait * 2**min(level, max_level)``, and every DEAD->WORKING->
    DEAD round trip raises the level (until decay).  So the k-th
    re-admission costs at least the k-th escalating probation, and the
    number of round trips that fit in a window is logarithmic in its
    length.  Decay can shed at most one level per ``decay_interval_us``
    of WORKING time, each refund worth at most one extra round trip.

    This is deliberately conservative (ping/timeout latencies are
    ignored); the property test drives adversarial flap trains against
    it and the scenario checker applies it to every skeptic in the
    network.
    """
    if duration_us <= 0:
        return 1
    # One initial WORKING->DEAD publish can happen immediately.
    changes = 1
    elapsed = 0.0
    level = 1  # level after the first failure
    while True:
        wait = base_wait_us * (2 ** min(level, max_level))
        elapsed += wait
        if elapsed > duration_us:
            break
        # Survived a probation (DEAD->WORKING) and failed again
        # (WORKING->DEAD): two more published changes.
        changes += 2
        level += 1
        if level > max_level + 64:  # fully saturated; count linearly
            remaining = duration_us - elapsed
            wait = base_wait_us * (2 ** max_level)
            changes += 2 * int(remaining / wait)
            break
    if decay_interval_us and decay_interval_us != float("inf"):
        # Each decay interval of working time can shed one level,
        # enabling at most one cheaper extra round trip.
        changes += 2 * int(duration_us / decay_interval_us)
    # The final probation may complete just inside the window.
    return changes + 1


def _all_skeptics(net: Network):
    """(component-label, skeptic) for every skeptic in the network."""
    for switch in net.switches.values():
        for card in switch.cards:
            if card.skeptic is not None:
                yield f"{switch.node_id}.p{card.index}", card.skeptic
    for host in net.hosts.values():
        for index, monitor in host.monitors.items():
            yield f"{host.node_id}.p{index}", monitor.skeptic


def check_skeptic_bounded(net: Network) -> InvariantResult:
    """No skeptic changed its published verdict more than the bound allows."""
    duration = net.now
    worst_label, worst_count, worst_bound = "", 0, 0
    offenders: List[str] = []
    for label, skeptic in _all_skeptics(net):
        bound = max_verdict_changes(
            duration,
            skeptic.base_wait_us,
            skeptic.max_level,
            skeptic.decay_interval_us,
        )
        count = len(skeptic.verdict_changes)
        if count > worst_count:
            worst_label, worst_count, worst_bound = label, count, bound
        if count > bound:
            offenders.append(f"{label}: {count} > {bound}")
    if offenders:
        return InvariantResult(
            "skeptic verdict rate bounded", False, "; ".join(offenders)
        )
    detail = (
        f"worst skeptic {worst_label}: {worst_count} changes "
        f"(bound {worst_bound})"
        if worst_label
        else "no verdict changes anywhere"
    )
    return InvariantResult("skeptic verdict rate bounded", True, detail)


# ======================================================================
# convergence
# ======================================================================
def check_convergence(
    net: Network, settled_at_us: Optional[float]
) -> InvariantResult:
    """The main partition holds ONE epoch and its view matches reality."""
    if not net.fully_reconfigured():
        return InvariantResult(
            "reconfiguration converged",
            False,
            "main component never settled on a reality-matching view",
        )
    component = net.main_component_switches()
    tags = {net.switches[s].reconfig.view_tag for s in component}
    if len(tags) != 1:
        return InvariantResult(
            "reconfiguration converged",
            False,
            f"main component split across epochs: {sorted(map(str, tags))}",
        )
    tag = next(iter(tags))
    settle = (
        f", settled at {settled_at_us / 1000:.1f} ms"
        if settled_at_us is not None
        else ""
    )
    return InvariantResult(
        "reconfiguration converged",
        True,
        f"{len(component)} switches share epoch {tag}{settle}",
    )


# ======================================================================
# credit conservation
# ======================================================================
def _iter_credit_pairs(net: Network):
    """(label, upstream, downstream_freed_total) for every pairable VC.

    Upstream state lives at the card a circuit *departs* through; the
    matching downstream state is at the peer port's card (switch) or is
    implied by the receive count (host buffers drain instantly).  Pairs
    whose link is down, or whose peer has no matching state (the route
    moved during the scenario), yield ``None`` for the freed count.
    """
    for switch in net.switches.values():
        for card in switch.cards:
            for vc, upstream in card.upstream.items():
                peer = card.port.peer()
                if (
                    peer is None
                    or card.port.link is None
                    or not card.port.link.working
                ):
                    yield f"{card.port.label}/vc{vc}", upstream, None
                    continue
                node = peer.node
                if hasattr(node, "cards"):
                    downstream = node.cards[peer.index].downstream.get(vc)
                    freed = downstream.buffers_freed if downstream else None
                elif hasattr(node, "received_counts"):
                    freed = node.received_counts.get(vc, 0)
                else:  # pragma: no cover - no other node types exist
                    freed = None
                yield f"{card.port.label}/vc{vc}", upstream, freed
    for host in net.hosts.values():
        for vc, sender in host.senders.items():
            if sender.upstream is None:
                continue
            peer = host.active_port.peer()
            freed = None
            if (
                peer is not None
                and host.active_port.link is not None
                and host.active_port.link.working
                and hasattr(peer.node, "cards")
            ):
                downstream = peer.node.cards[peer.index].downstream.get(vc)
                freed = downstream.buffers_freed if downstream else None
            yield f"{host.node_id}/vc{vc}", sender.upstream, freed


def check_credit_conservation(
    net: Network, exact: Optional[bool] = None
) -> InvariantResult:
    """At quiescence every balance equals the counter-derived value.

    ``exact=None`` auto-detects: the exact check needs periodic
    resynchronization (otherwise a lost credit legitimately leaves the
    balance low forever) -- without it only the bounds
    ``0 <= balance <= allocation`` are enforced.
    """
    if exact is None:
        exact = all(
            s.config.resync_interval_us > 0 for s in net.switches.values()
        ) and bool(net.switches)
    checked = skipped = 0
    violations: List[str] = []
    total_excess = 0
    for label, upstream, freed in _iter_credit_pairs(net):
        total_excess += upstream.excess_credits
        if not 0 <= upstream.balance <= upstream.allocation:
            violations.append(
                f"{label}: balance {upstream.balance} outside "
                f"[0, {upstream.allocation}]"
            )
            continue
        if freed is None:
            skipped += 1
            continue
        expected = upstream.allocation - (upstream.cells_sent - freed)
        if not 0 <= expected <= upstream.allocation:
            # Counters from different incarnations of the circuit (the
            # route moved mid-scenario); no pairing exists to check.
            skipped += 1
            continue
        checked += 1
        if exact and upstream.balance != expected:
            violations.append(
                f"{label}: balance {upstream.balance} != "
                f"allocation {upstream.allocation} - in flight "
                f"({upstream.cells_sent} sent - {freed} freed)"
            )
    if violations:
        return InvariantResult(
            "credit conservation", False, "; ".join(violations[:5])
        )
    mode = "exact" if exact else "bounds-only (no resync configured)"
    return InvariantResult(
        "credit conservation",
        True,
        f"{checked} balances {mode}, {skipped} unpairable skipped, "
        f"{total_excess} excess credits clamped",
    )


# ======================================================================
# no silent mis-assembly
# ======================================================================
def check_no_misassembly(
    net: Network, sent: Dict[int, List[Packet]]
) -> InvariantResult:
    """Delivered payloads are byte-exact; losses are visible, not silent.

    ``sent`` maps VC -> packets the scenario's traffic generator
    injected (payloads recorded at send time).
    """
    sent_by_uid = {p.uid: p for packets in sent.values() for p in packets}
    delivered_uids: Dict[int, Packet] = {}
    duplicates = 0
    corrupted: List[int] = []
    for host in net.hosts.values():
        for packet in host.delivered:
            if packet.uid in delivered_uids:
                duplicates += 1
                continue
            delivered_uids[packet.uid] = packet
            original = sent_by_uid.get(packet.uid)
            if original is not None and packet.payload != original.payload:
                corrupted.append(packet.uid)
    missing = [uid for uid in sent_by_uid if uid not in delivered_uids]
    # A missing packet is fine IF the network can show where it died:
    # reassembly errors, cells lost on dead links, cells corrupted by
    # error injection, or cells still queued/buffered at quiescence.
    observed_loss = (
        sum(h.reassembly_errors for h in net.hosts.values())
        + sum(h.queued_cells() for h in net.hosts.values())
        + sum(
            h.reassembler.pending_cells(vc)
            for h in net.hosts.values()
            for vc in sent
        )
        + net.total_cells_dropped()
        + sum(link.cells_corrupted for link in net.links.values())
        + sum(
            card.buffered_cells()
            for s in net.switches.values()
            for card in s.cards
        )
    )
    problems: List[str] = []
    if corrupted:
        problems.append(f"{len(corrupted)} corrupted payloads (uids {corrupted[:5]})")
    if duplicates:
        problems.append(f"{duplicates} duplicate deliveries")
    if missing and observed_loss == 0:
        problems.append(
            f"{len(missing)} packets vanished with no observed loss"
        )
    if problems:
        return InvariantResult("no silent mis-assembly", False, "; ".join(problems))
    return InvariantResult(
        "no silent mis-assembly",
        True,
        f"{len(delivered_uids)} delivered byte-exact, {len(missing)} lost "
        f"(all accounted: {observed_loss} cells of observed loss)",
    )


# ======================================================================
def check_all(
    net: Network,
    sent: Dict[int, List[Packet]],
    settled_at_us: Optional[float],
    conservation_exact: Optional[bool] = None,
    extra_invariants: Optional[List[InvariantResult]] = None,
) -> List[InvariantResult]:
    """Run every scenario invariant; order is the reporting order.

    ``extra_invariants`` appends pre-computed results (a loss-recovery
    solution's own checks) after the core suite.
    """
    results = [
        check_convergence(net, settled_at_us),
        check_skeptic_bounded(net),
        check_credit_conservation(net, exact=conservation_exact),
        check_no_misassembly(net, sent),
    ]
    if extra_invariants:
        results.extend(extra_invariants)
    return results
