"""Canned fault scenarios and the chaos-test generator.

Three canned scenarios map directly to the paper's claims:

- ``pull_the_plug`` -- section 1's favorite demo: crash an interior
  switch of a redundant grid mid-traffic, watch the network reconfigure
  and the dual-homed hosts see no silent corruption; plug it back in
  and watch the skeptic re-admit it.
- ``flapping_link`` -- section 2's intermittent fault: a trunk flaps
  repeatedly; the skeptic's escalating hold-downs must bound the rate
  of published verdict changes (and hence of reconfigurations).
- ``credit_loss`` -- section 5's robustness claim: drop every credit
  cell on the backbone for a while; periodic resynchronization must
  restore the windows *exactly* (conservation from cumulative
  counters).

The chaos generator builds random bi-connected topologies (a ring plus
random chords -- no single link cut disconnects the switch core) and
random sequential plans over them, all derived from one seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.faults.plan import (
    ClockDriftStep,
    CreditLossBurst,
    ErrorRateStep,
    FaultPlan,
    LinkCut,
    LinkFlap,
    SwitchCrash,
)
from repro.faults.runner import TrafficLoad
from repro.net.host import HostConfig
from repro.net.network import Network
from repro.net.topology import Topology
from repro.sim.random import RandomStreams
from repro.switch.switch import SwitchConfig


@dataclass(frozen=True)
class Scenario:
    """A named, reproducible scenario: how to build it, and the claim."""

    name: str
    claim: str
    build: Callable[[int], Tuple[Network, FaultPlan, Tuple[TrafficLoad, ...]]]


# ======================================================================
# shared fast configuration (scenarios must finish in CI time)
# ======================================================================
def scenario_switch_config(**overrides) -> SwitchConfig:
    defaults = dict(
        frame_slots=32,
        control_delay_us=10.0,
        ping_interval_us=500.0,
        ack_timeout_us=200.0,
        miss_threshold=2,
        skeptic_base_wait_us=2_000.0,
        skeptic_max_level=4,
        skeptic_decay_us=200_000.0,
        boot_reconfig_delay_us=1_500.0,
        reconfig_watchdog_us=50_000.0,
        resync_interval_us=5_000.0,
        enable_local_reroute=True,
    )
    defaults.update(overrides)
    return SwitchConfig(**defaults)


def scenario_host_config(**overrides) -> HostConfig:
    defaults = dict(
        ping_interval_us=500.0,
        ack_timeout_us=200.0,
        miss_threshold=2,
        skeptic_base_wait_us=2_000.0,
        skeptic_max_level=4,
        frame_slots=32,
    )
    defaults.update(overrides)
    return HostConfig(**defaults)


def _grid_with_hosts(seed: int, **switch_overrides) -> Network:
    """A 3x3 redundant grid with two dual-homed hosts at the corners."""
    topo = Topology.grid(3, 3)
    topo.add_host(0)
    topo.add_host(1)
    topo.connect("h0", "s0", port_a=0, bps=622_000_000)
    topo.connect("h0", "s3", port_a=1, bps=622_000_000)
    topo.connect("h1", "s8", port_a=0, bps=622_000_000)
    topo.connect("h1", "s5", port_a=1, bps=622_000_000)
    return Network(
        topo,
        seed=seed,
        switch_config=scenario_switch_config(**switch_overrides),
        host_config=scenario_host_config(),
    )


# ======================================================================
# canned scenarios
# ======================================================================
def build_pull_the_plug(seed: int = 7):
    net = _grid_with_hosts(seed)
    plan = FaultPlan.of(
        SwitchCrash(at_us=50_000.0, switch="s4", restart_at_us=350_000.0),
    )
    loads = (
        TrafficLoad(
            source="h0", destination="h1",
            packet_size=480, interval_us=4_000.0, count=100,
        ),
    )
    return net, plan, loads


def build_flapping_link(seed: int = 3):
    net = _grid_with_hosts(seed)
    # Flap an interior trunk: each down/up pair feeds the skeptic's
    # escalation; the final up must survive a 2ms * 2^level probation
    # before the link is re-admitted, so settle time must cover it.
    plan = FaultPlan.of(
        LinkFlap(
            at_us=40_000.0, a="s1", b="s4",
            flaps=5, down_us=4_000.0, up_us=2_000.0,
        ),
    )
    loads = (
        TrafficLoad(
            source="h0", destination="h1",
            packet_size=480, interval_us=5_000.0, count=60,
        ),
    )
    return net, plan, loads


def build_credit_loss(seed: int = 5):
    net = _grid_with_hosts(seed, resync_interval_us=4_000.0)
    # Lose plain credit cells on two trunks of the h0->h1 route
    # (s0-s1-s2-s5-s8) for tens of ms; resync traffic (also CREDIT
    # kind) survives and must restore the windows exactly.
    plan = FaultPlan.of(
        CreditLossBurst(
            at_us=30_000.0, a="s1", b="s2",
            duration_us=60_000.0, probability=1.0,
        ),
        CreditLossBurst(
            at_us=35_000.0, a="s2", b="s5",
            duration_us=50_000.0, probability=0.8,
        ),
    )
    loads = (
        TrafficLoad(
            source="h0", destination="h1",
            packet_size=480, interval_us=3_000.0, count=80,
        ),
    )
    return net, plan, loads


def build_corruption_burst(seed: int = 11):
    # Wider credit windows than the default round-trip sizing: every
    # corrupted data cell is counted in flight forever by its hop's
    # credit state (the echo-based resync can only recover lost CREDIT
    # cells, not lost data), so the burst permanently shrinks the
    # window by ~1 credit per corruption.  With the default allocation
    # of 5 the VC wedges outright mid-scenario; 32 keeps it degraded
    # but alive, which is the regime the solutions are compared in.
    net = _grid_with_hosts(seed, credit_allocation=32)
    # Two trunks of the h0->h1 data route (h0-s0-s3-s4-s5-h1 on this
    # grid) turn noisy for tens of ms: a few percent of delivered cells
    # silently corrupted.  This is THE discriminating scenario for the
    # loss-recovery solutions -- link_retx repairs each corruption in a
    # link RTT, e2e_arq pays an end-to-end timeout plus a go-back-N
    # window, and do_nothing just loses the packets.
    plan = FaultPlan.of(
        ErrorRateStep(
            at_us=30_000.0, a="s0", b="s3",
            rate=0.02, until_us=90_000.0,
        ),
        ErrorRateStep(
            at_us=40_000.0, a="s3", b="s4",
            rate=0.015, until_us=100_000.0,
        ),
    )
    loads = (
        TrafficLoad(
            source="h0", destination="h1",
            packet_size=480, interval_us=3_000.0, count=80,
        ),
    )
    return net, plan, loads


CANNED: Dict[str, Scenario] = {
    "pull_the_plug": Scenario(
        "pull_the_plug",
        "section 1: the network reconfigures after a switch crash and "
        "users see no service interruption",
        build_pull_the_plug,
    ),
    "flapping_link": Scenario(
        "flapping_link",
        "section 2: the skeptic bounds verdict changes under an "
        "intermittently failing link",
        build_flapping_link,
    ),
    "credit_loss": Scenario(
        "credit_loss",
        "section 5: credit resynchronization restores windows exactly "
        "after lost flow-control cells",
        build_credit_loss,
    ),
    "corruption_burst": Scenario(
        "corruption_burst",
        "section 5 ablation: an intermittently corrupting trunk, the "
        "discriminating workload for the loss-recovery solutions",
        build_corruption_burst,
    ),
}


# ======================================================================
# chaos: random topologies, random plans
# ======================================================================
def random_biconnected_topology(
    rng: random.Random,
    n_switches: int = 5,
    n_hosts: int = 2,
    chords: int = 1,
) -> Topology:
    """A ring of switches plus random chords, with dual-homed hosts.

    The ring keeps the switch core connected under any single link cut
    or switch crash (a ring minus one node is a line), which is what
    lets chaos plans cut arbitrary single elements and still demand
    full reconvergence.
    """
    if n_switches < 3:
        raise ValueError("a bi-connected core needs at least 3 switches")
    topo = Topology.ring(n_switches)
    existing = {
        frozenset((a[0].num, b[0].num)) for a, b in topo.switch_edges()
    }
    added = attempts = 0
    while added < chords and attempts < 50:
        attempts += 1
        a, b = rng.sample(range(n_switches), 2)
        if frozenset((a, b)) in existing:
            continue
        topo.connect(f"s{a}", f"s{b}")
        existing.add(frozenset((a, b)))
        added += 1
    for h in range(n_hosts):
        host = topo.add_host(h)
        primary, alternate = rng.sample(range(n_switches), 2)
        topo.connect(host, f"s{primary}", port_a=0, bps=622_000_000)
        topo.connect(host, f"s{alternate}", port_a=1, bps=622_000_000)
    return topo


def random_plan(
    rng: random.Random,
    topo: Topology,
    n_faults: int = 3,
    window_us: float = 60_000.0,
    start_us: float = 30_000.0,
) -> FaultPlan:
    """A sequential plan of ``n_faults`` random events over ``topo``.

    Faults occupy non-overlapping windows and every topology fault is
    restored inside its window, so the final physical state is fully
    working and full reconvergence is a fair demand.
    """
    switch_edges = topo.switch_edges()
    switches = topo.switches()
    events = []
    t = start_us
    for _ in range(n_faults):
        kind = rng.choice(
            ["link_cut", "link_flap", "switch_crash", "credit_loss",
             "error_rate", "clock_drift"]
        )
        if kind == "link_cut":
            (na, _), (nb, _) = rng.choice(switch_edges)
            events.append(
                LinkCut(
                    at_us=t, a=str(na), b=str(nb),
                    restore_at_us=t + window_us * 0.6,
                )
            )
        elif kind == "link_flap":
            (na, _), (nb, _) = rng.choice(switch_edges)
            events.append(
                LinkFlap(
                    at_us=t, a=str(na), b=str(nb),
                    flaps=rng.randint(2, 4),
                    down_us=3_000.0, up_us=2_000.0,
                )
            )
        elif kind == "switch_crash":
            victim = rng.choice(switches)
            events.append(
                SwitchCrash(
                    at_us=t, switch=str(victim),
                    restart_at_us=t + window_us * 0.6,
                )
            )
        elif kind == "credit_loss":
            (na, _), (nb, _) = rng.choice(switch_edges)
            events.append(
                CreditLossBurst(
                    at_us=t, a=str(na), b=str(nb),
                    duration_us=window_us * 0.5,
                    probability=rng.uniform(0.5, 1.0),
                )
            )
        elif kind == "error_rate":
            (na, _), (nb, _) = rng.choice(switch_edges)
            events.append(
                ErrorRateStep(
                    at_us=t, a=str(na), b=str(nb),
                    rate=rng.uniform(0.001, 0.02),
                    until_us=t + window_us * 0.5,
                )
            )
        else:
            victim = rng.choice(switches)
            events.append(
                ClockDriftStep(
                    at_us=t, switch=str(victim),
                    drift_ppm=rng.uniform(-200.0, 200.0),
                )
            )
        t += window_us
    return FaultPlan(tuple(events))


def build_random_scenario(
    seed: int,
    n_switches: Optional[int] = None,
    n_faults: int = 3,
):
    """A full random chaos scenario derived from one seed.

    Deprecation note: this used to seed a single bare ``random.Random``
    shared across topology and plan generation; it now draws named
    substreams from :class:`repro.sim.random.RandomStreams` so the chaos
    topology and the fault plan are independent per-component streams
    (adding a fault kind no longer perturbs the topology).  The ``seed``
    parameter keeps its meaning.
    """
    streams = RandomStreams(seed)
    rng = streams.stream("chaos.shape")
    n = n_switches if n_switches is not None else rng.randint(4, 6)
    topo = random_biconnected_topology(
        streams.stream("chaos.topology"), n_switches=n, n_hosts=2
    )
    net = Network(
        topo,
        seed=seed,
        switch_config=scenario_switch_config(),
        host_config=scenario_host_config(),
    )
    plan = random_plan(streams.stream("chaos.plan"), topo, n_faults=n_faults)
    loads = (
        TrafficLoad(
            source="h0", destination="h1",
            packet_size=480, interval_us=5_000.0,
            count=max(20, int(plan.end_us / 5_000.0)),
        ),
    )
    return net, plan, loads
