"""Per-node clocks with rate skew.

Section 4 of the paper distinguishes synchronized networks (a global clock,
2 frames of guaranteed-traffic buffering) from networks like AN2 with *no*
global synchronization, where buffer requirements additionally depend on
"the variation in switch clock rates".  :class:`DriftingClock` models a
switch-local oscillator whose rate differs from true (simulated) time by a
fixed number of parts-per-million, with an arbitrary phase offset.
"""

from __future__ import annotations

from repro.sim.kernel import Simulator


class DriftingClock:
    """A local clock running at ``1 + drift_ppm * 1e-6`` times real rate.

    ``local_now()`` converts the simulator's global time into this node's
    local time; ``global_delay(local_delay)`` converts a local-duration wait
    (e.g. "one frame time, as measured by my oscillator") into the global
    delay to hand to the simulator.
    """

    def __init__(
        self,
        sim: Simulator,
        drift_ppm: float = 0.0,
        offset: float = 0.0,
    ) -> None:
        self.sim = sim
        self.drift_ppm = drift_ppm
        self.offset = offset
        self._rate = 1.0 + drift_ppm * 1e-6
        if self._rate <= 0:
            raise ValueError(f"drift {drift_ppm} ppm gives non-positive rate")

    @property
    def rate(self) -> float:
        """Local seconds per global second."""
        return self._rate

    def local_now(self) -> float:
        """This node's local time, in microseconds."""
        return self.offset + self.sim.now * self._rate

    def global_delay(self, local_delay: float) -> float:
        """Global (simulator) delay corresponding to a local duration."""
        if local_delay < 0:
            raise ValueError(f"negative delay {local_delay}")
        return local_delay / self._rate

    def set_drift(self, drift_ppm: float) -> None:
        """Step the oscillator rate without a phase jump.

        Fault scenarios use this to model an oscillator going out of
        spec mid-run.  The offset is recomputed so that ``local_now()``
        is continuous across the step -- only the *rate* changes, the
        local clock never jumps backwards or forwards.
        """
        rate = 1.0 + drift_ppm * 1e-6
        if rate <= 0:
            raise ValueError(f"drift {drift_ppm} ppm gives non-positive rate")
        local = self.local_now()
        self.drift_ppm = drift_ppm
        self._rate = rate
        self.offset = local - self.sim.now * rate

    def local_delay(self, global_delay: float) -> float:
        """Local duration that elapses over a global (simulator) delay."""
        if global_delay < 0:
            raise ValueError(f"negative delay {global_delay}")
        return global_delay * self._rate

    def __repr__(self) -> str:  # pragma: no cover
        return f"<DriftingClock drift={self.drift_ppm}ppm offset={self.offset}>"
