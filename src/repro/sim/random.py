"""Reproducible named random streams.

Every stochastic component (PIM grant choices, workload generators, link
fault injectors, clock drift draws...) pulls its own ``random.Random``
substream from a :class:`RandomStreams`, derived deterministically from a
root seed and the component's name.  Two benefits:

- runs are reproducible end to end from one integer seed, and
- adding or removing one component does not perturb the random sequences
  seen by the others (no shared-stream coupling).
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict


def derived_seed(name: str, seed: int = 0) -> int:
    """The integer seed behind :func:`derived_stream`.

    Sweep engines hand this to worker processes instead of a ``Random``
    instance: the worker re-derives its substreams locally, so a task's
    randomness is a pure function of ``(root seed, task name)`` -- never
    of which worker ran it, in what order, or in which process.
    """
    digest = hashlib.sha256(f"{seed}/{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


def derived_stream(name: str, seed: int = 0) -> random.Random:
    """A standalone, deterministically-seeded substream for ``name``.

    The module-level counterpart of :meth:`RandomStreams.stream`, using
    the same derivation (seed hashed with a stable component name).  It
    exists for components constructed *outside* a
    :class:`~repro.net.network.Network` -- topology generators, arrival
    processes, workload drivers -- whose historical fallback was a bare
    ``random.Random(0)``.  That shared fixed seed made every such
    component draw *identical* random sequences (perfectly correlated
    topologies, arrivals, and reservoir samples), the same bug class the
    per-link RNG fix removed from :class:`~repro.net.link.Link`.  A
    name-derived stream keeps runs reproducible end to end while
    decorrelating the components.
    """
    return random.Random(derived_seed(name, seed))


class RandomStreams:
    """A factory of independent, deterministically-seeded RNG substreams."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """The substream for ``name`` (created on first use, then cached)."""
        existing = self._streams.get(name)
        if existing is not None:
            return existing
        digest = hashlib.sha256(f"{self.seed}/{name}".encode("utf-8")).digest()
        substream = random.Random(int.from_bytes(digest[:8], "big"))
        self._streams[name] = substream
        return substream

    def fork(self, name: str) -> "RandomStreams":
        """A child factory whose streams are independent of this one's."""
        digest = hashlib.sha256(f"{self.seed}/fork/{name}".encode("utf-8")).digest()
        return RandomStreams(int.from_bytes(digest[:8], "big"))

    def __repr__(self) -> str:  # pragma: no cover
        return f"RandomStreams(seed={self.seed})"
