"""The discrete-event simulation core.

A :class:`Simulator` owns a priority queue of timestamped events.  Running
the simulator pops events in time order and invokes their callbacks; each
callback may schedule further events.  Ties are broken by insertion order,
which makes runs deterministic for a fixed seed.

Time is a float number of microseconds.  Nothing in the kernel depends on
the unit, but the rest of the library adopts microseconds so that the
paper's constants can be written literally.
"""

from __future__ import annotations

import heapq
from typing import TYPE_CHECKING, Any, Callable, List, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.conform.digest import RunDigest
    from repro.obs.flight import FlightRecorder
    from repro.obs.profiler import SubsystemProfiler
    from repro.obs.trace import Tracer


class SimulationError(RuntimeError):
    """Raised for kernel misuse (e.g. scheduling in the past)."""


class Event:
    """A scheduled callback.

    Events are created through :meth:`Simulator.schedule` /
    :meth:`Simulator.schedule_at` and can be cancelled before they fire.
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled", "_sim")

    def __init__(
        self,
        time: float,
        seq: int,
        callback: Callable[..., Any],
        args: tuple,
    ) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        self._sim: Optional["Simulator"] = None

    def cancel(self) -> None:
        """Prevent the event from firing.  Safe to call more than once."""
        if self.cancelled:
            return
        self.cancelled = True
        sim, self._sim = self._sim, None
        if sim is not None:
            sim._note_cancelled()

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"<Event t={self.time:.3f} seq={self.seq} {state}>"


class Simulator:
    """Discrete-event simulator with a microsecond clock.

    Typical use::

        sim = Simulator()
        sim.schedule(10.0, print, "ten microseconds in")
        sim.run(until=100.0)
    """

    # Compaction policy: when more than half the heap is cancelled
    # events (and the heap is big enough for the O(n) rebuild to pay
    # off), filter them out and re-heapify.  Credit timers and skeptic
    # hold-downs cancel heavily, so without this the heap grows with
    # dead entries that every push/pop then sifts through.
    COMPACT_MIN_SIZE = 64

    def __init__(self) -> None:
        self._now = 0.0
        self._queue: List[Event] = []
        self._seq = 0
        self._running = False
        self._events_executed = 0
        self._live = 0  # queued, non-cancelled events (O(1) pending())
        self._cancelled_in_heap = 0
        self._compactions = 0
        self._tracer: Optional["Tracer"] = None
        self._digest: Optional["RunDigest"] = None
        self._profiler: Optional["SubsystemProfiler"] = None
        #: optional :class:`~repro.obs.flight.FlightRecorder`.  A plain
        #: attribute, deliberately *not* part of the instrumentation
        #: swap: the recorder is never consulted per event, only when an
        #: exception escapes :meth:`run` (and by protocol code at its own
        #: transition points), so attaching one leaves the hot loop as
        #: the class-level bytecode.
        self.recorder: Optional["FlightRecorder"] = None

    # ------------------------------------------------------------------
    # instrumentation (tracing + run digest + profiling)
    # ------------------------------------------------------------------
    # Attaching a tracer, digest, or profiler swaps per-instance
    # instrumented implementations of step/run into the instance dict;
    # detaching all of them removes them so lookups fall back to the
    # class methods.  The uninstrumented bytecode therefore contains no
    # tracer/digest/profiler checks at all -- the disabled hot path is
    # the original hot path, byte for byte.
    def _refresh_instrumentation(self) -> None:
        if (
            self._tracer is not None
            or self._digest is not None
            or self._profiler is not None
        ):
            self.__dict__["step"] = self._step_instrumented
            self.__dict__["run"] = self._run_instrumented
        else:
            self.__dict__.pop("step", None)
            self.__dict__.pop("run", None)

    @property
    def tracer(self) -> Optional["Tracer"]:
        """The attached :class:`~repro.obs.trace.Tracer`, or ``None``."""
        return self._tracer

    @tracer.setter
    def tracer(self, tracer: Optional["Tracer"]) -> None:
        self._tracer = tracer
        self._refresh_instrumentation()

    @property
    def digest(self) -> Optional["RunDigest"]:
        """The attached :class:`~repro.conform.digest.RunDigest`, or ``None``.

        While attached, every executed event feeds ``(time, seq, callback
        identity)`` into the digest's streaming hash, so two runs with the
        same digest hex dispatched the same events in the same order.
        """
        return self._digest

    @digest.setter
    def digest(self, digest: Optional["RunDigest"]) -> None:
        self._digest = digest
        self._refresh_instrumentation()

    @property
    def profiler(self) -> Optional["SubsystemProfiler"]:
        """The attached :class:`~repro.obs.profiler.SubsystemProfiler`.

        While attached, every dispatched event is classified into a
        subsystem and counted (optionally wall-timed); counts are
        deterministic for a fixed seed, like the run digest.
        """
        return self._profiler

    @profiler.setter
    def profiler(self, profiler: Optional["SubsystemProfiler"]) -> None:
        self._profiler = profiler
        self._refresh_instrumentation()

    # ------------------------------------------------------------------
    # time
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in microseconds."""
        return self._now

    @property
    def events_executed(self) -> int:
        """Number of events executed so far (a work metric)."""
        return self._events_executed

    @property
    def heap_size(self) -> int:
        """Entries in the heap, including not-yet-reaped cancelled ones."""
        return len(self._queue)

    @property
    def compactions(self) -> int:
        """How many times the heap was compacted (a diagnostics metric)."""
        return self._compactions

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def schedule(
        self, delay: float, callback: Callable[..., Any], *args: Any
    ) -> Event:
        """Schedule ``callback(*args)`` to run ``delay`` microseconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay} us in the past")
        return self.schedule_at(self._now + delay, callback, *args)

    def schedule_at(
        self, time: float, callback: Callable[..., Any], *args: Any
    ) -> Event:
        """Schedule ``callback(*args)`` at an absolute simulated time."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time} before now={self._now}"
            )
        event = Event(time, self._seq, callback, args)
        event._sim = self
        self._seq += 1
        heapq.heappush(self._queue, event)
        self._live += 1
        return event

    # ------------------------------------------------------------------
    # cancellation bookkeeping
    # ------------------------------------------------------------------
    def _note_cancelled(self) -> None:
        """Called by :meth:`Event.cancel` for an event still in the heap."""
        self._live -= 1
        self._cancelled_in_heap += 1
        if (
            len(self._queue) >= self.COMPACT_MIN_SIZE
            and self._cancelled_in_heap * 2 > len(self._queue)
        ):
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled events and re-heapify (lazy-cancel reaping)."""
        self._queue = [e for e in self._queue if not e.cancelled]
        heapq.heapify(self._queue)
        self._cancelled_in_heap = 0
        self._compactions += 1

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Execute the next pending event.

        Returns ``True`` if an event ran, ``False`` if the queue is empty.
        """
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                self._cancelled_in_heap -= 1
                continue
            event._sim = None
            self._live -= 1
            self._now = event.time
            self._events_executed += 1
            event.callback(*event.args)
            return True
        return False

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Run until the queue drains, ``until`` is reached, or ``max_events``.

        When ``until`` is given, the clock is advanced to exactly ``until``
        even if the last event fires earlier, so periodic measurements line
        up across runs.
        """
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        executed = 0
        try:
            while self._queue:
                head = self._queue[0]
                if head.cancelled:
                    heapq.heappop(self._queue)
                    self._cancelled_in_heap -= 1
                    continue
                if until is not None and head.time > until:
                    break
                if max_events is not None and executed >= max_events:
                    break
                heapq.heappop(self._queue)
                head._sim = None
                self._live -= 1
                self._now = head.time
                self._events_executed += 1
                executed += 1
                head.callback(*head.args)
            if until is not None and self._now < until:
                self._now = until
        except BaseException as exc:
            # Flight-recorder hook: one try/except around the whole run,
            # never per event.  The recorder folds the dying run's context
            # into its kernel ring (and auto-dumps if configured) before
            # the exception continues up.
            recorder = self.recorder
            if recorder is not None:
                recorder.on_kernel_exception(self, exc)
            raise
        finally:
            self._running = False

    # ------------------------------------------------------------------
    # instrumented execution (installed per-instance by the tracer,
    # digest, and profiler setters via _refresh_instrumentation)
    # ------------------------------------------------------------------
    def _step_instrumented(self) -> bool:
        """:meth:`step` plus tracer/digest/profiler hooks per event."""
        tracer = self._tracer
        digest = self._digest
        profiler = self._profiler
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                self._cancelled_in_heap -= 1
                continue
            event._sim = None
            self._live -= 1
            self._now = event.time
            self._events_executed += 1
            if tracer is not None:
                tracer.emit(
                    event.time, "kernel", "sim", "event",
                    seq=event.seq,
                    callback=getattr(
                        event.callback, "__qualname__", repr(event.callback)
                    ),
                )
            if digest is not None:
                digest.observe(event.time, event.seq, event.callback)
            if profiler is None:
                event.callback(*event.args)
            else:
                profiler.dispatch(event.callback, event.args)
            return True
        return False

    def _run_instrumented(
        self, until: Optional[float] = None, max_events: Optional[int] = None
    ) -> None:
        """:meth:`run` plus tracer/digest/profiler hooks per event."""
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        tracer = self._tracer
        digest = self._digest
        profiler = self._profiler
        executed = 0
        try:
            while self._queue:
                head = self._queue[0]
                if head.cancelled:
                    heapq.heappop(self._queue)
                    self._cancelled_in_heap -= 1
                    continue
                if until is not None and head.time > until:
                    break
                if max_events is not None and executed >= max_events:
                    break
                heapq.heappop(self._queue)
                head._sim = None
                self._live -= 1
                self._now = head.time
                self._events_executed += 1
                executed += 1
                if tracer is not None:
                    tracer.emit(
                        head.time, "kernel", "sim", "event",
                        seq=head.seq,
                        callback=getattr(
                            head.callback, "__qualname__", repr(head.callback)
                        ),
                    )
                if digest is not None:
                    digest.observe(head.time, head.seq, head.callback)
                if profiler is None:
                    head.callback(*head.args)
                else:
                    profiler.dispatch(head.callback, head.args)
            if until is not None and self._now < until:
                self._now = until
        except BaseException as exc:
            recorder = self.recorder
            if recorder is not None:
                recorder.on_kernel_exception(self, exc)
            raise
        finally:
            self._running = False

    def peek(self) -> Optional[float]:
        """Time of the next pending event, or ``None`` if idle."""
        while self._queue and self._queue[0].cancelled:
            heapq.heappop(self._queue)
            self._cancelled_in_heap -= 1
        return self._queue[0].time if self._queue else None

    def pending(self) -> int:
        """Number of queued, non-cancelled events (O(1))."""
        return self._live
