"""Discrete-event simulation kernel.

This subpackage is the substrate on which the AN2 network model runs.  It
provides:

- :class:`~repro.sim.kernel.Simulator` -- the event loop and simulated clock,
- :class:`~repro.sim.process.Process` -- generator-based cooperative
  processes (the "switch software" in the paper runs as these),
- :class:`~repro.sim.clock.DriftingClock` -- per-node clocks with rate skew,
  needed for the paper's asynchronous-network buffer/latency analyses,
- :class:`~repro.sim.random.RandomStreams` -- reproducible named RNG
  substreams,
- monitoring probes in :mod:`repro.sim.monitor`.

Simulated time is measured in **microseconds** throughout the library; the
paper's constants (2 us cut-through delay, ~0.5 us cell slots at
622 Mbit/s, sub-200 ms reconfiguration) are expressed directly in these
units.
"""

from repro.sim.clock import DriftingClock
from repro.sim.kernel import Event, Simulator
from repro.sim.monitor import Counter, Tally, TimeSeries
from repro.sim.process import Process, Signal, Timeout
from repro.sim.random import RandomStreams

__all__ = [
    "Counter",
    "DriftingClock",
    "Event",
    "Process",
    "RandomStreams",
    "Signal",
    "Simulator",
    "Tally",
    "TimeSeries",
    "Timeout",
]
