"""Measurement probes: counters, tallies, gauges, and time series.

The benchmark harness reports latency percentiles, throughput, buffer
occupancy peaks, message counts, and reconfiguration durations; these small
accumulators are used throughout the switch and network models to collect
them without coupling the models to any particular experiment.

A :class:`ProbeSet` groups the probes of one component instance; the
hierarchical :class:`~repro.obs.registry.MetricsRegistry` owns one probe
set per component node and snapshots the whole tree to plain dicts.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.sim.random import derived_stream


class Counter:
    """A monotonically increasing named count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.value = 0

    def increment(self, amount: int = 1) -> None:
        self.value += amount

    def reset(self) -> None:
        self.value = 0

    def __repr__(self) -> str:  # pragma: no cover
        return f"Counter({self.name!r}, {self.value})"


class Gauge:
    """A named read-through probe over live component state.

    Lets plain-int hot-path counters (``stats.cells_forwarded`` and
    friends) appear in registry snapshots without adding any per-cell
    bookkeeping: the callable is only invoked at snapshot time.
    """

    __slots__ = ("name", "fn")

    def __init__(self, name: str, fn: Callable[[], float]) -> None:
        self.name = name
        self.fn = fn

    @property
    def value(self) -> float:
        return self.fn()

    def __repr__(self) -> str:  # pragma: no cover
        return f"Gauge({self.name!r}, {self.value})"


class Tally:
    """Sample accumulator with mean / variance / percentiles.

    Two storage modes:

    - **exact** (default, ``max_samples=None``): stores every sample,
      reports exact percentiles.  ``record`` stays a bare append so hot
      paths (one call per delivered cell) pay nothing extra, and code may
      even append to ``_samples`` directly.
    - **bounded** (``max_samples=k``): keeps a k-sample uniform reservoir
      (Vitter's algorithm R, seeded and deterministic) with *exact*
      count/total/mean/variance/min/max maintained as running values.
      Semantics are exact until the reservoir fills -- the first ``k``
      samples are stored verbatim -- after which percentiles become
      estimates over a uniform subsample.  Multi-million-sample runs stop
      holding every float.
    """

    def __init__(
        self,
        name: str = "",
        max_samples: Optional[int] = None,
        seed: int = 0x5EED,
    ) -> None:
        if max_samples is not None and max_samples <= 0:
            raise ValueError(f"max_samples must be positive, got {max_samples}")
        self.name = name
        self.max_samples = max_samples
        self._samples: List[float] = []
        self._sorted: Optional[List[float]] = None
        if max_samples is not None:
            # Deprecation note: the reservoir RNG used to be a bare
            # random.Random(seed), identical across every bounded Tally
            # with the default seed.  It is now a substream derived from
            # (name, seed) via repro.sim.random, so same-named tallies
            # remain reproducible while distinct tallies decorrelate.
            # The ``seed`` parameter keeps its meaning.
            self._rng = derived_stream(f"tally/{name}", seed)
            self._count = 0
            self._total = 0.0
            self._sumsq = 0.0
            self._min = math.inf
            self._max = -math.inf

    def record(self, value: float) -> None:
        if self.max_samples is None:
            # Hot path (one call per delivered cell): a bare append.  The
            # sorted cache is invalidated by length comparison at read time.
            self._samples.append(value)
            return
        self._count += 1
        self._total += value
        self._sumsq += value * value
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value
        samples = self._samples
        if len(samples) < self.max_samples:
            samples.append(value)
        else:
            slot = self._rng.randrange(self._count)
            if slot < self.max_samples:
                samples[slot] = value
                # In-place replacement keeps the length constant, so the
                # length-based cache check cannot see it: drop the cache.
                self._sorted = None

    def extend(self, values: Sequence[float]) -> None:
        if self.max_samples is None:
            self._samples.extend(values)
        else:
            for value in values:
                self.record(value)

    def reset(self) -> None:
        """Forget every sample (both modes)."""
        self._samples.clear()
        self._sorted = None
        if self.max_samples is not None:
            self._count = 0
            self._total = 0.0
            self._sumsq = 0.0
            self._min = math.inf
            self._max = -math.inf

    @property
    def bounded(self) -> bool:
        return self.max_samples is not None

    @property
    def count(self) -> int:
        if self.max_samples is not None:
            return self._count
        return len(self._samples)

    @property
    def total(self) -> float:
        if self.max_samples is not None:
            return self._total
        return math.fsum(self._samples)

    @property
    def mean(self) -> float:
        if not self.count:
            raise ValueError(f"tally {self.name!r} has no samples")
        return self.total / self.count

    @property
    def variance(self) -> float:
        """Unbiased sample variance (0.0 with fewer than two samples)."""
        n = self.count
        if n < 2:
            return 0.0
        if self.max_samples is not None:
            mean = self._total / n
            # Running-sums form; clamp the tiny negative values that
            # floating-point cancellation can produce.
            return max(0.0, (self._sumsq - n * mean * mean) / (n - 1))
        mean = self.mean
        return math.fsum((x - mean) ** 2 for x in self._samples) / (n - 1)

    @property
    def stdev(self) -> float:
        return math.sqrt(self.variance)

    @property
    def minimum(self) -> float:
        if not self.count:
            raise ValueError(f"tally {self.name!r} has no samples")
        if self.max_samples is not None:
            return self._min
        return min(self._samples)

    @property
    def maximum(self) -> float:
        if not self.count:
            raise ValueError(f"tally {self.name!r} has no samples")
        if self.max_samples is not None:
            return self._max
        return max(self._samples)

    def percentile(self, p: float) -> float:
        """The ``p``-th percentile (0 <= p <= 100), nearest-rank method.

        In bounded mode this is computed over the reservoir -- exact
        until the reservoir fills, an estimate afterwards (the running
        min/max stay exact; use those for the extremes).
        """
        if not self._samples:
            raise ValueError(f"tally {self.name!r} has no samples")
        if not 0 <= p <= 100:
            raise ValueError(f"percentile {p} out of range")
        if self._sorted is None or len(self._sorted) != len(self._samples):
            # Samples grow append-only (exact mode), so a length match
            # means the cache is still valid; bounded-mode replacements
            # clear the cache explicitly.
            self._sorted = sorted(self._samples)
        if p == 0:
            return self._sorted[0]
        rank = math.ceil(p / 100 * len(self._sorted))
        return self._sorted[rank - 1]

    def samples(self) -> List[float]:
        """A copy of the stored samples (the reservoir in bounded mode)."""
        return list(self._samples)

    def snapshot(self) -> Dict[str, float]:
        """Summary statistics as a plain dict (empty-safe)."""
        if not self.count:
            return {"count": 0}
        return {
            "count": self.count,
            "mean": self.mean,
            "min": self.minimum,
            "max": self.maximum,
            "stdev": self.stdev,
            "p50": self.percentile(50),
            "p90": self.percentile(90),
            "p99": self.percentile(99),
        }

    def __repr__(self) -> str:  # pragma: no cover
        if not self.count:
            return f"Tally({self.name!r}, empty)"
        return f"Tally({self.name!r}, n={self.count}, mean={self.mean:.4g})"


class TimeSeries:
    """(time, value) pairs, e.g. buffer occupancy over time."""

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._points: List[Tuple[float, float]] = []

    def record(self, time: float, value: float) -> None:
        if self._points and time < self._points[-1][0]:
            raise ValueError(
                f"time series {self.name!r}: non-monotonic time {time}"
            )
        self._points.append((time, value))

    def reset(self) -> None:
        self._points.clear()

    @property
    def count(self) -> int:
        return len(self._points)

    def points(self) -> List[Tuple[float, float]]:
        return list(self._points)

    def values(self) -> List[float]:
        return [v for _, v in self._points]

    def maximum(self) -> float:
        if not self._points:
            raise ValueError(f"time series {self.name!r} is empty")
        return max(v for _, v in self._points)

    def time_average(self) -> float:
        """Time-weighted average, holding each value until the next point."""
        if len(self._points) < 2:
            raise ValueError(f"time series {self.name!r} needs >= 2 points")
        area = 0.0
        for (t0, v0), (t1, _) in zip(self._points, self._points[1:]):
            area += v0 * (t1 - t0)
        span = self._points[-1][0] - self._points[0][0]
        if span == 0:
            return self._points[0][1]
        return area / span

    def snapshot(self) -> Dict[str, float]:
        if not self._points:
            return {"count": 0}
        summary: Dict[str, float] = {
            "count": self.count,
            "first_t": self._points[0][0],
            "last_t": self._points[-1][0],
            "max": self.maximum(),
        }
        if self.count >= 2:
            summary["time_average"] = self.time_average()
        return summary

    def __repr__(self) -> str:  # pragma: no cover
        return f"TimeSeries({self.name!r}, n={self.count})"


class ProbeSet:
    """A named registry of probes, one per component instance."""

    def __init__(self) -> None:
        self.counters: Dict[str, Counter] = {}
        self.tallies: Dict[str, Tally] = {}
        self.series: Dict[str, TimeSeries] = {}
        self.gauges: Dict[str, Gauge] = {}

    def counter(self, name: str) -> Counter:
        probe = self.counters.get(name)
        if probe is None:
            probe = self.counters[name] = Counter(name)
        return probe

    def tally(self, name: str, max_samples: Optional[int] = None) -> Tally:
        probe = self.tallies.get(name)
        if probe is None:
            probe = self.tallies[name] = Tally(name, max_samples=max_samples)
        return probe

    def time_series(self, name: str) -> TimeSeries:
        probe = self.series.get(name)
        if probe is None:
            probe = self.series[name] = TimeSeries(name)
        return probe

    def gauge(self, name: str, fn: Callable[[], float]) -> Gauge:
        """Register (or re-point) a read-through gauge."""
        probe = Gauge(name, fn)
        self.gauges[name] = probe
        return probe

    def snapshot(self) -> Dict[str, dict]:
        """Plain-dict state of every probe in this set."""
        return {
            "counters": {n: c.value for n, c in sorted(self.counters.items())},
            "tallies": {n: t.snapshot() for n, t in sorted(self.tallies.items())},
            "series": {n: s.snapshot() for n, s in sorted(self.series.items())},
            "gauges": {n: g.value for n, g in sorted(self.gauges.items())},
        }

    def reset(self) -> None:
        """Zero counters, tallies, and series.  Gauges read live state
        owned by their component, so they are intentionally untouched."""
        for counter in self.counters.values():
            counter.reset()
        for tally in self.tallies.values():
            tally.reset()
        for series in self.series.values():
            series.reset()
