"""Measurement probes: counters, tallies, and time series.

The benchmark harness reports latency percentiles, throughput, buffer
occupancy peaks, message counts, and reconfiguration durations; these small
accumulators are used throughout the switch and network models to collect
them without coupling the models to any particular experiment.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple


class Counter:
    """A monotonically increasing named count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.value = 0

    def increment(self, amount: int = 1) -> None:
        self.value += amount

    def reset(self) -> None:
        self.value = 0

    def __repr__(self) -> str:  # pragma: no cover
        return f"Counter({self.name!r}, {self.value})"


class Tally:
    """Sample accumulator with mean / variance / percentiles.

    Stores all samples; the simulations in this library produce at most a
    few million samples per tally, which is fine in memory and lets us
    report exact percentiles.
    """

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._samples: List[float] = []
        self._sorted: Optional[List[float]] = None

    def record(self, value: float) -> None:
        # Hot path (one call per delivered cell): a bare append.  The
        # sorted cache is invalidated by length comparison at read time.
        self._samples.append(value)

    def extend(self, values: Sequence[float]) -> None:
        self._samples.extend(values)

    @property
    def count(self) -> int:
        return len(self._samples)

    @property
    def total(self) -> float:
        return math.fsum(self._samples)

    @property
    def mean(self) -> float:
        if not self._samples:
            raise ValueError(f"tally {self.name!r} has no samples")
        return self.total / len(self._samples)

    @property
    def variance(self) -> float:
        """Unbiased sample variance (0.0 with fewer than two samples)."""
        n = len(self._samples)
        if n < 2:
            return 0.0
        mean = self.mean
        return math.fsum((x - mean) ** 2 for x in self._samples) / (n - 1)

    @property
    def stdev(self) -> float:
        return math.sqrt(self.variance)

    @property
    def minimum(self) -> float:
        if not self._samples:
            raise ValueError(f"tally {self.name!r} has no samples")
        return min(self._samples)

    @property
    def maximum(self) -> float:
        if not self._samples:
            raise ValueError(f"tally {self.name!r} has no samples")
        return max(self._samples)

    def percentile(self, p: float) -> float:
        """The ``p``-th percentile (0 <= p <= 100), nearest-rank method."""
        if not self._samples:
            raise ValueError(f"tally {self.name!r} has no samples")
        if not 0 <= p <= 100:
            raise ValueError(f"percentile {p} out of range")
        if self._sorted is None or len(self._sorted) != len(self._samples):
            # Samples are append-only, so a length match means the cache
            # is still valid.
            self._sorted = sorted(self._samples)
        if p == 0:
            return self._sorted[0]
        rank = math.ceil(p / 100 * len(self._sorted))
        return self._sorted[rank - 1]

    def samples(self) -> List[float]:
        """A copy of the raw samples."""
        return list(self._samples)

    def __repr__(self) -> str:  # pragma: no cover
        if not self._samples:
            return f"Tally({self.name!r}, empty)"
        return f"Tally({self.name!r}, n={self.count}, mean={self.mean:.4g})"


class TimeSeries:
    """(time, value) pairs, e.g. buffer occupancy over time."""

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._points: List[Tuple[float, float]] = []

    def record(self, time: float, value: float) -> None:
        if self._points and time < self._points[-1][0]:
            raise ValueError(
                f"time series {self.name!r}: non-monotonic time {time}"
            )
        self._points.append((time, value))

    @property
    def count(self) -> int:
        return len(self._points)

    def points(self) -> List[Tuple[float, float]]:
        return list(self._points)

    def values(self) -> List[float]:
        return [v for _, v in self._points]

    def maximum(self) -> float:
        if not self._points:
            raise ValueError(f"time series {self.name!r} is empty")
        return max(v for _, v in self._points)

    def time_average(self) -> float:
        """Time-weighted average, holding each value until the next point."""
        if len(self._points) < 2:
            raise ValueError(f"time series {self.name!r} needs >= 2 points")
        area = 0.0
        for (t0, v0), (t1, _) in zip(self._points, self._points[1:]):
            area += v0 * (t1 - t0)
        span = self._points[-1][0] - self._points[0][0]
        if span == 0:
            return self._points[0][1]
        return area / span

    def __repr__(self) -> str:  # pragma: no cover
        return f"TimeSeries({self.name!r}, n={self.count})"


class ProbeSet:
    """A named registry of probes, one per component instance."""

    def __init__(self) -> None:
        self.counters: Dict[str, Counter] = {}
        self.tallies: Dict[str, Tally] = {}
        self.series: Dict[str, TimeSeries] = {}

    def counter(self, name: str) -> Counter:
        probe = self.counters.get(name)
        if probe is None:
            probe = self.counters[name] = Counter(name)
        return probe

    def tally(self, name: str) -> Tally:
        probe = self.tallies.get(name)
        if probe is None:
            probe = self.tallies[name] = Tally(name)
        return probe

    def time_series(self, name: str) -> TimeSeries:
        probe = self.series.get(name)
        if probe is None:
            probe = self.series[name] = TimeSeries(name)
        return probe
