"""Generator-based cooperative processes.

The paper describes "software running on the line-card processors" that
handles faults, reconfiguration, and circuit setup.  We model each such
piece of software as a :class:`Process`: a Python generator driven by the
simulator.  A process yields *wait requests*:

- ``Timeout(delay)`` -- resume after ``delay`` microseconds,
- a :class:`Signal` -- resume when the signal fires (receiving its value).

Processes can be interrupted (:meth:`Process.interrupt`), which raises
:class:`Interrupted` inside the generator -- this is how a line card aborts
its participation in a superseded reconfiguration epoch.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, List, Optional, Tuple

from repro.sim.kernel import Event, Simulator

ProcessGenerator = Generator[Any, Any, Any]


class Interrupted(Exception):
    """Raised inside a process generator when it is interrupted."""

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)
        self.cause = cause


class Timeout:
    """Wait request: resume the process after ``delay`` microseconds."""

    __slots__ = ("delay",)

    def __init__(self, delay: float) -> None:
        if delay < 0:
            raise ValueError(f"negative timeout {delay}")
        self.delay = delay

    def __repr__(self) -> str:  # pragma: no cover
        return f"Timeout({self.delay})"


class Signal:
    """A broadcast condition that processes can wait on.

    ``fire(value)`` wakes every currently-waiting process, delivering
    ``value`` as the result of its ``yield``.  Later waiters block until the
    next ``fire``.  Signals can also be observed through plain callbacks via
    :meth:`subscribe`.
    """

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._waiters: List[Callable[[Any], None]] = []
        self._subscribers: List[Callable[[Any], None]] = []
        self.fire_count = 0
        self.last_value: Any = None

    def subscribe(self, callback: Callable[[Any], None]) -> None:
        """Invoke ``callback(value)`` on every future fire."""
        self._subscribers.append(callback)

    def unsubscribe(self, callback: Callable[[Any], None]) -> None:
        self._subscribers.remove(callback)

    def fire(self, value: Any = None) -> None:
        """Wake all waiting processes and notify subscribers."""
        self.fire_count += 1
        self.last_value = value
        waiters, self._waiters = self._waiters, []
        for waiter in waiters:
            waiter(value)
        for subscriber in list(self._subscribers):
            subscriber(value)

    def _add_waiter(self, callback: Callable[[Any], None]) -> None:
        self._waiters.append(callback)

    def _remove_waiter(self, callback: Callable[[Any], None]) -> bool:
        try:
            self._waiters.remove(callback)
            return True
        except ValueError:
            return False

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Signal {self.name!r} waiters={len(self._waiters)}>"


class Process:
    """Drives a generator as a simulated process.

    The generator may yield :class:`Timeout` or :class:`Signal` instances.
    ``yield`` evaluates to the signal's fired value (or ``None`` after a
    timeout).  When the generator returns, :attr:`done` becomes ``True`` and
    :attr:`result` holds its return value; :attr:`finished` (a
    :class:`Signal`) fires with that value, so processes can wait on each
    other.
    """

    def __init__(
        self,
        sim: Simulator,
        generator: ProcessGenerator,
        name: str = "process",
    ) -> None:
        self.sim = sim
        self.name = name
        self.done = False
        self.result: Any = None
        self.error: Optional[BaseException] = None
        self.finished = Signal(f"{name}.finished")
        self._generator = generator
        self._pending_event: Optional[Event] = None
        self._pending_signal: Optional[Tuple[Signal, Callable[[Any], None]]] = None
        # Start on the next kernel tick so construction order does not matter.
        sim.schedule(0.0, self._resume, None)

    # ------------------------------------------------------------------
    def interrupt(self, cause: Any = None) -> None:
        """Raise :class:`Interrupted` inside the process at its wait point."""
        if self.done:
            return
        self._clear_waits()
        self.sim.schedule(0.0, self._throw, Interrupted(cause))

    def _clear_waits(self) -> None:
        if self._pending_event is not None:
            self._pending_event.cancel()
            self._pending_event = None
        if self._pending_signal is not None:
            signal, waiter = self._pending_signal
            signal._remove_waiter(waiter)
            self._pending_signal = None

    # ------------------------------------------------------------------
    def _resume(self, value: Any) -> None:
        if self.done:
            return
        self._pending_event = None
        self._pending_signal = None
        try:
            request = self._generator.send(value)
        except StopIteration as stop:
            self._finish(stop.value)
            return
        self._wait_on(request)

    def _throw(self, exc: BaseException) -> None:
        if self.done:
            return
        try:
            request = self._generator.throw(exc)
        except StopIteration as stop:
            self._finish(stop.value)
            return
        except Interrupted:
            # The process let the interruption terminate it.
            self._finish(None)
            return
        self._wait_on(request)

    def _wait_on(self, request: Any) -> None:
        if isinstance(request, Timeout):
            self._pending_event = self.sim.schedule(
                request.delay, self._resume, None
            )
        elif isinstance(request, Signal):
            def waiter(value: Any) -> None:
                # Resume via the kernel so all wakeups at a fire are ordered.
                self._pending_signal = None
                self.sim.schedule(0.0, self._resume, value)

            self._pending_signal = (request, waiter)
            request._add_waiter(waiter)
        elif isinstance(request, Process):
            if request.done:
                self.sim.schedule(0.0, self._resume, request.result)
            else:
                self._wait_on(request.finished)
        else:
            raise TypeError(
                f"process {self.name!r} yielded unsupported {request!r}"
            )

    def _finish(self, result: Any) -> None:
        self.done = True
        self.result = result
        self.finished.fire(result)

    def __repr__(self) -> str:  # pragma: no cover
        state = "done" if self.done else "running"
        return f"<Process {self.name!r} {state}>"


def spawn(sim: Simulator, generator: ProcessGenerator, name: str = "process") -> Process:
    """Convenience wrapper: ``spawn(sim, gen())`` starts a process."""
    return Process(sim, generator, name=name)
