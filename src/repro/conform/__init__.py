"""Conformance tooling: run digests, differential oracles, determinism.

The repo's claims (skeptic bounds, reconfiguration convergence, PIM's
3-iteration behaviour) all rest on *seeded, replayable* simulation.  This
package holds the machinery that certifies replayability instead of
assuming it:

- :mod:`repro.conform.digest` -- a streaming hash of kernel event
  dispatch order plus end-of-run component state fingerprints, stable
  across repeated runs and ``PYTHONHASHSEED`` values;
- :mod:`repro.conform.oracle` -- differential checks that drive the
  reference matchers and their bitmask fast-path counterparts from
  identical seeds, cell by cell, and cross-check AN1 against AN2
  routing on shared topologies.

The AST nondeterminism lint lives in ``tools/lint_determinism.py`` (it
inspects source, not runtime state); ``tools/run_conformance.py`` is the
one-shot gate that runs all three.
"""

from repro.conform.digest import (
    RunDigest,
    canonical_bytes,
    digest_scenario,
    fingerprint_network,
    fingerprint_switch,
)
from repro.conform.oracle import (
    Divergence,
    compare_matchers,
    compare_routing,
    matcher_sweep,
    routing_sweep,
)

__all__ = [
    "RunDigest",
    "canonical_bytes",
    "digest_scenario",
    "fingerprint_network",
    "fingerprint_switch",
    "Divergence",
    "compare_matchers",
    "compare_routing",
    "matcher_sweep",
    "routing_sweep",
]
