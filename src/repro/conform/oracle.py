"""Differential oracles: reference vs fast-path, AN1 vs AN2.

Two families of cross-checks, both reporting the *first* divergence they
find as a :class:`Divergence` (never just a boolean -- a conformance
failure must say exactly where the implementations disagreed):

- **Matchers** -- :func:`compare_matchers` drives a reference scheduler
  (:class:`~repro.core.matching.pim.ParallelIterativeMatcher`,
  :class:`~repro.core.matching.islip.IslipMatcher`,
  :class:`~repro.core.matching.fifo.FifoScheduler`) and its bitmask
  counterpart (strict-RNG mode) cell by cell through two identically-fed
  fabrics from identical seeds, comparing every slot's full matching.
  This checks the matchers *and* the fabric's incremental mask
  bookkeeping against the set-based reference path in one sweep.
- **Routing** -- :func:`compare_routing` builds the same up*/down*
  orientation twice over a shared topology and cross-checks AN1's
  hop-by-hop forwarding (``next_hop`` with the gone-down bit, the
  :class:`~repro.switch.an1.An1Switch` discipline) against AN2's
  end-to-end ``shortest_legal_path`` for every switch pair: the walk
  must terminate, stay legal, and be exactly as short as the end-to-end
  path; and the end-to-end answer must be identical across independently
  constructed orientations (no hash-order sensitivity).

:func:`matcher_sweep` / :func:`routing_sweep` run these over a seeded
grid of sizes and load patterns and also return plain-data records
(including a hash of every slot's matching) suitable for committing as a
regression corpus.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.matching.bitmask import (
    BitmaskFifoScheduler,
    BitmaskIslip,
    BitmaskPim,
)
from repro.core.matching.fifo import FifoScheduler
from repro.core.matching.islip import IslipMatcher
from repro.core.matching.pim import MatchResult, ParallelIterativeMatcher
from repro._types import NodeId, parse_node_id
from repro.core.routing.updown import UpDownOrientation
from repro.net.cell import Cell, CellKind
from repro.net.link import Link
from repro.net.node import Node
from repro.net.topology import Topology
from repro.sim.kernel import Simulator
from repro.sim.random import derived_stream
from repro.switch.fabric import FifoFabric, VoqFabric
from repro.traffic.arrivals import (
    ArrivalProcess,
    BernoulliUniform,
    BurstyOnOff,
    Hotspot,
    Permutation,
)


@dataclass(frozen=True)
class Divergence:
    """The first point where two implementations disagreed."""

    kind: str        # "matcher" or "routing"
    pair: str        # e.g. "pim", "fifo", "an1-vs-an2"
    seed: int
    size: int        # fabric ports / topology switches
    case: str        # load pattern name / "src->dst" switch pair
    round: int       # slot index / hop index
    port: int        # first divergent input port (-1 when not port-shaped)
    reference: Any   # what the reference produced there
    candidate: Any   # what the implementation under test produced

    def __str__(self) -> str:
        return (
            f"{self.kind}:{self.pair} diverged (seed={self.seed}, "
            f"size={self.size}, case={self.case}) at round {self.round} "
            f"port {self.port}: reference={self.reference!r} "
            f"candidate={self.candidate!r}"
        )


# ======================================================================
# matcher differential
# ======================================================================
MATCHER_KINDS = ("pim", "islip", "fifo")

#: pattern name -> factory(n_ports, rng) for the sweep's load patterns.
PATTERNS: Dict[str, Callable[[int, random.Random], ArrivalProcess]] = {
    "bernoulli-0.6": lambda n, rng: BernoulliUniform(n, 0.6, rng=rng),
    "bernoulli-0.95": lambda n, rng: BernoulliUniform(n, 0.95, rng=rng),
    "hotspot": lambda n, rng: Hotspot(
        n, 0.8, hot_output=0, hot_fraction=0.5, rng=rng
    ),
    "bursty": lambda n, rng: BurstyOnOff(n, 0.7, mean_burst=8.0, rng=rng),
    "permutation": lambda n, rng: Permutation(n, 0.9, rng=rng),
}


def _seeded_rng(label: str, seed: int) -> random.Random:
    return derived_stream(f"conform.oracle/{label}", seed)


def _build_pair(kind: str, n_ports: int, seed: int):
    """(reference fabric, candidate fabric) with identically-seeded RNGs."""
    if kind == "pim":
        reference = VoqFabric(
            n_ports,
            ParallelIterativeMatcher(
                n_ports, iterations=3, rng=_seeded_rng("pim", seed)
            ),
        )
        candidate = VoqFabric(
            n_ports,
            BitmaskPim(
                n_ports,
                iterations=3,
                rng=_seeded_rng("pim", seed),
                strict_rng=True,
            ),
        )
    elif kind == "islip":
        reference = VoqFabric(n_ports, IslipMatcher(n_ports, iterations=3))
        candidate = VoqFabric(n_ports, BitmaskIslip(n_ports, iterations=3))
    elif kind == "fifo":
        reference = FifoFabric(
            n_ports, FifoScheduler(n_ports, rng=_seeded_rng("fifo", seed))
        )
        candidate = FifoFabric(
            n_ports,
            BitmaskFifoScheduler(
                n_ports, rng=_seeded_rng("fifo", seed), strict_rng=True
            ),
        )
    else:
        raise ValueError(f"unknown matcher kind {kind!r}")
    return reference, candidate


def _first_divergent_port(
    ref: MatchResult, cand: MatchResult
) -> Tuple[int, Optional[int], Optional[int]]:
    """(port, reference grant, candidate grant) at the lowest divergent input."""
    for port in sorted(set(ref.matching) | set(cand.matching)):
        ref_grant = ref.matching.get(port)
        cand_grant = cand.matching.get(port)
        if ref_grant != cand_grant:
            return port, ref_grant, cand_grant
    return -1, None, None


def compare_matchers(
    kind: str,
    n_ports: int,
    seed: int,
    pattern: str,
    n_slots: int = 200,
) -> Tuple[Optional[Divergence], str]:
    """Drive reference and bitmask fabrics cell-by-cell from one seed.

    Returns ``(divergence, matchings_hash)`` where ``divergence`` is
    ``None`` on full agreement and ``matchings_hash`` is a SHA-256 over
    every slot's reference matching -- the value the regression corpus
    pins.
    """
    reference, candidate = _build_pair(kind, n_ports, seed)
    traffic = PATTERNS[pattern](
        n_ports, _seeded_rng(f"traffic/{pattern}", seed)
    )
    matchings = hashlib.sha256()
    for slot in range(n_slots):
        arrivals = traffic.arrivals(slot)
        for input_port, output_port in arrivals:
            reference.offer(input_port, output_port, slot)
            candidate.offer(input_port, output_port, slot)
        ref_result = reference.step(slot)
        cand_result = candidate.step(slot)
        matchings.update(
            repr(sorted(ref_result.matching.items())).encode("utf-8")
        )
        if ref_result.matching != cand_result.matching:
            port, ref_grant, cand_grant = _first_divergent_port(
                ref_result, cand_result
            )
            return (
                Divergence(
                    kind="matcher",
                    pair=kind,
                    seed=seed,
                    size=n_ports,
                    case=pattern,
                    round=slot,
                    port=port,
                    reference=ref_grant,
                    candidate=cand_grant,
                ),
                matchings.hexdigest(),
            )
    return None, matchings.hexdigest()


def matcher_sweep(
    seeds: Sequence[int],
    sizes: Sequence[int] = (4, 8, 16),
    kinds: Sequence[str] = MATCHER_KINDS,
    patterns: Sequence[str] = tuple(PATTERNS),
    n_slots: int = 200,
) -> Tuple[List[Divergence], List[Dict[str, Any]]]:
    """The full differential grid.  Returns (divergences, corpus records)."""
    divergences: List[Divergence] = []
    records: List[Dict[str, Any]] = []
    for kind in kinds:
        for n_ports in sizes:
            for pattern in patterns:
                for seed in seeds:
                    divergence, matchings_hash = compare_matchers(
                        kind, n_ports, seed, pattern, n_slots=n_slots
                    )
                    if divergence is not None:
                        divergences.append(divergence)
                    records.append(
                        {
                            "kind": kind,
                            "n_ports": n_ports,
                            "pattern": pattern,
                            "seed": seed,
                            "n_slots": n_slots,
                            "matchings_sha256": matchings_hash,
                            "agreed": divergence is None,
                        }
                    )
    return divergences, records


# ======================================================================
# routing differential (AN1 hop-by-hop vs AN2 end-to-end)
# ======================================================================
def _an1_walk(
    orientation: UpDownOrientation, source, destination, max_hops: int
):
    """Hop-by-hop forwarding with the gone-down bit (AN1 discipline).

    Returns (nodes, edges) on success or the hop index where forwarding
    returned no legal continuation.
    """
    nodes = [source]
    edges = []
    here = source
    gone_down = False
    for _ in range(max_hops):
        if here == destination:
            return nodes, edges
        hop = orientation.next_hop(here, destination, gone_down)
        if hop is None:
            return len(edges)
        neighbor, edge = hop
        if not orientation.is_up_traversal(edge, here):
            gone_down = True
        nodes.append(neighbor)
        edges.append(edge)
        here = neighbor
    return len(edges)


def compare_routing(
    seed: int, n_switches: int = 8, extra_edges: int = 4
) -> Tuple[Optional[Divergence], str]:
    """Cross-check AN1 and AN2 routing over one shared random topology.

    For every ordered switch pair: AN1's hop-by-hop walk must terminate,
    stay up*/down*-legal, and use exactly as many hops as AN2's
    end-to-end shortest legal path; and a second, independently
    constructed orientation must produce the identical end-to-end path
    (construction-order / hash-order insensitivity).  Returns
    ``(divergence, paths_hash)`` with a SHA-256 over every end-to-end
    path for the regression corpus.
    """
    topo = Topology.random_connected(
        n_switches,
        extra_edges=extra_edges,
        rng=_seeded_rng("routing/topology", seed),
    )
    view = topo.view()
    switches = view.switches()
    root = switches[0]
    orientation = UpDownOrientation(view, root)
    shadow = UpDownOrientation(view, root)  # independently constructed
    paths_hash = hashlib.sha256()
    max_hops = 4 * n_switches
    for src in switches:
        for dst in switches:
            if src == dst:
                continue
            case = f"{src}->{dst}"
            an2 = orientation.shortest_legal_path(src, dst)
            an2_shadow = shadow.shortest_legal_path(src, dst)
            if an2 is None or an2_shadow is None or an2 != an2_shadow:
                return (
                    Divergence(
                        kind="routing",
                        pair="an2-determinism",
                        seed=seed,
                        size=n_switches,
                        case=case,
                        round=0,
                        port=-1,
                        reference=None if an2 is None else [str(n) for n in an2[0]],
                        candidate=(
                            None if an2_shadow is None
                            else [str(n) for n in an2_shadow[0]]
                        ),
                    ),
                    paths_hash.hexdigest(),
                )
            paths_hash.update(
                ("|".join(str(n) for n in an2[0])).encode("utf-8")
            )
            paths_hash.update(b"\x00")
            an1 = _an1_walk(orientation, src, dst, max_hops)
            if isinstance(an1, int):
                return (
                    Divergence(
                        kind="routing",
                        pair="an1-vs-an2",
                        seed=seed,
                        size=n_switches,
                        case=case,
                        round=an1,
                        port=-1,
                        reference=[str(n) for n in an2[0]],
                        candidate="no legal continuation",
                    ),
                    paths_hash.hexdigest(),
                )
            an1_nodes, an1_edges = an1
            if not orientation.path_is_legal(an1_nodes, an1_edges):
                return (
                    Divergence(
                        kind="routing",
                        pair="an1-vs-an2",
                        seed=seed,
                        size=n_switches,
                        case=case,
                        round=len(an1_edges),
                        port=-1,
                        reference="legal path",
                        candidate=[str(n) for n in an1_nodes],
                    ),
                    paths_hash.hexdigest(),
                )
            if len(an1_edges) != len(an2[1]):
                return (
                    Divergence(
                        kind="routing",
                        pair="an1-vs-an2",
                        seed=seed,
                        size=n_switches,
                        case=case,
                        round=len(an1_edges),
                        port=-1,
                        reference=len(an2[1]),
                        candidate=len(an1_edges),
                    ),
                    paths_hash.hexdigest(),
                )
    return None, paths_hash.hexdigest()


def routing_sweep(
    seeds: Sequence[int],
    sizes: Sequence[int] = (5, 8, 12),
) -> Tuple[List[Divergence], List[Dict[str, Any]]]:
    """Routing cross-checks over a grid of random topologies."""
    divergences: List[Divergence] = []
    records: List[Dict[str, Any]] = []
    for n_switches in sizes:
        for seed in seeds:
            divergence, paths_hash = compare_routing(
                seed, n_switches=n_switches, extra_edges=max(2, n_switches // 2)
            )
            if divergence is not None:
                divergences.append(divergence)
            records.append(
                {
                    "kind": "routing",
                    "n_switches": n_switches,
                    "seed": seed,
                    "paths_sha256": paths_hash,
                    "agreed": divergence is None,
                }
            )
    return divergences, records


# ======================================================================
# link cell-train differential
# ======================================================================
class _SinkNode(Node):
    """Records delivered payloads in arrival order; the link oracle's
    endpoint.  Payloads are unique per cell, so the recorded sequence
    identifies exactly which cells got through and in what order."""

    def __init__(self, sim, node_id: "NodeId") -> None:
        super().__init__(sim, node_id, n_ports=1)
        self.received: List[Any] = []

    def on_cell(self, port, cell) -> None:
        self.received.append(cell.payload)


#: solution-shaped fault profiles for the link differential.  "plain"
#: is the original script; the others reproduce the *deterministic* op
#: shapes of the loss-recovery solutions so batching is exercised while
#: recovery machinery flips link state mid-train.  (The closed-loop
#: solutions themselves react at delivery times, which batching is
#: allowed to shift -- so the oracle scripts their actions instead of
#: letting them observe.)
LINK_PROFILES = ("plain", "disable_and_repair", "link_retx")


def _link_script(
    seed: int, n_bursts: int, profile: str = "plain"
) -> List[Tuple[float, str, Any]]:
    """A deterministic (time, op, arg) fault-and-traffic script.

    Bursts are multi-cell and same-instant -- the shape that actually
    forms cell trains -- and the fault ops are the ones whose semantics
    batching must not change: a mid-train cut, a restore, and
    ``drop_filter`` windows that open and close while cells are on the
    wire (the credit-loss-burst shape from the fault scenarios).

    Profiles:

    - ``plain`` -- the original mix (cuts and credit filters).
    - ``disable_and_repair`` -- adds administrative fail/restore pairs
      and full-corruption windows (``error_rate`` stepped to 1.0 and
      back): 1.0 is the only rate the differential may use, because
      every RNG draw then corrupts regardless of draw order, so batched
      and unbatched schedules agree even though they interleave the
      per-direction draws differently.
    - ``link_retx`` -- wide burst gaps and once-only per-payload
      corruption targets (``corrupt`` entries, collected by the driver
      into a payload-keyed filter): each targeted cell is corrupted on
      exactly its first delivery attempt wherever that falls in either
      schedule, so the guard's NACK/resend/resequence cycle completes
      identically.  No cuts: a resend over a dead link is a *timing*
      race between schedules, not a batching property.
    """
    label = "link-script" if profile == "plain" else f"link-script/{profile}"
    rng = _seeded_rng(label, seed)
    script: List[Tuple[float, str, Any]] = []
    t = 1.0
    payload = 0
    for _ in range(n_bursts):
        if profile == "link_retx":
            # Wide gaps: every NACK/resend cycle (~one link round trip)
            # finishes before the next burst can crowd the wire, so the
            # serialization horizon never diverges between schedules.
            t += rng.uniform(45.0, 80.0)
        else:
            t += rng.uniform(3.0, 30.0)
        direction = 1 if rng.random() < 0.3 else 0
        size = rng.randint(1, 12)
        cells = []
        for _ in range(size):
            kind = CellKind.CREDIT if rng.random() < 0.25 else CellKind.DATA
            cells.append((kind, payload))
            if profile == "link_retx" and rng.random() < 0.3:
                script.append((0.0, "corrupt", payload))
            payload += 1
        script.append((t, "burst", (direction, cells)))
        if profile == "link_retx":
            continue
        roll = rng.random()
        if roll < 0.15:
            # Cut while the burst is still serializing/propagating, then
            # restore: the canonical mid-train fault.
            script.append((t + rng.uniform(0.1, 8.0), "fail", None))
            script.append((t + rng.uniform(9.0, 20.0), "restore", None))
        elif roll < 0.30:
            # Credit-loss window opening mid-flight.
            script.append((t + rng.uniform(0.1, 8.0), "filter_on", None))
            script.append((t + rng.uniform(9.0, 20.0), "filter_off", None))
        elif profile == "disable_and_repair" and roll < 0.45:
            # The administrative repair cycle: deliberate fail, held
            # down, restore -- opening and closing around in-flight
            # cells exactly like DisableAndRepair's repair window.
            script.append((t + rng.uniform(0.1, 8.0), "fail", None))
            script.append((t + rng.uniform(12.0, 25.0), "restore", None))
        elif profile == "disable_and_repair" and roll < 0.60:
            # Full-corruption window (the noisy-link phase that trips
            # the repair threshold).
            script.append((t + rng.uniform(0.1, 8.0), "error_full_on", None))
            script.append((t + rng.uniform(9.0, 20.0), "error_off", None))
    script.sort(key=lambda entry: (entry[0], entry[1]))
    return script


def _drive_link(
    seed: int, batch: bool, n_bursts: int, profile: str = "plain"
) -> Tuple[List[Any], List[Any], Tuple[int, ...]]:
    """Run the scripted scenario on one link; returns (received at b,
    received at a, (delivered, dropped, data_dropped, corrupted [, guard
    counters for the link_retx profile]))."""
    sim = Simulator()
    node_a = _SinkNode(sim, parse_node_id("h0"))
    node_b = _SinkNode(sim, parse_node_id("h1"))
    link = Link(
        sim,
        node_a.port(0),
        node_b.port(0),
        length_km=2.0,
        rng=_seeded_rng("link-err", seed),
        batch_trains=batch,
        max_train_cells=8,
    )
    script = _link_script(seed, n_bursts, profile)
    guard = None
    if profile == "link_retx":
        from repro.solutions.link_retx import LinkRetxGuard

        guard = LinkRetxGuard(link)
        # Once-only per-payload corruption: schedule-invariant because
        # the verdict is a pure function of the (unique) payload and
        # whether its first attempt already happened.
        targets = {arg for _, op, arg in script if op == "corrupt"}
        corrupted_once: set = set()

        def corrupt_filter(cell: Cell) -> bool:
            if cell.payload in targets and cell.payload not in corrupted_once:
                corrupted_once.add(cell.payload)
                return True
            return False

        link.drop_filter = corrupt_filter

    def burst(direction: int, cells) -> None:
        for kind, payload in cells:
            link.transmit(direction, Cell(vc=0, kind=kind, payload=payload))

    ops: Dict[str, Callable[..., None]] = {
        "burst": burst,
        "fail": lambda _arg: link.fail(),
        "restore": lambda _arg: link.restore(),
        "filter_on": lambda _arg: setattr(
            link, "drop_filter", lambda cell: cell.kind is CellKind.CREDIT
        ),
        "filter_off": lambda _arg: setattr(link, "drop_filter", None),
        "error_full_on": lambda _arg: link.set_error_rate(1.0),
        "error_off": lambda _arg: link.set_error_rate(0.0),
    }
    for time, op, arg in script:
        if op == "corrupt":
            continue  # collected above, not a scheduled event
        if op == "burst":
            sim.schedule_at(time, burst, *arg)
        else:
            sim.schedule_at(time, ops[op], arg)
    sim.run()
    counters: Tuple[int, ...] = (
        link.cells_delivered,
        link.cells_dropped,
        link.data_cells_dropped,
        link.cells_corrupted,
    )
    if guard is not None:
        counters = counters + (
            guard.nacks,
            guard.resends,
            guard.recovered,
            guard.abandoned,
            guard.duplicates,
        )
    return node_b.received, node_a.received, counters


def compare_link_delivery(
    seed: int, n_bursts: int = 40, profile: str = "plain"
) -> Optional[Divergence]:
    """Cell-train batching differential: batched vs unbatched link.

    Runs an identical burst/cut/restore/drop-filter script through a
    plain link and a ``batch_trains`` link and requires identical
    delivered-payload sequences (per direction, in FIFO order) and
    identical delivered/dropped/corrupted counters.  Batching is allowed
    to change *when* a cell surfaces (by a bounded train span) and how
    many kernel events that takes -- never *which* cells arrive or are
    lost.  Arbitrary ``error_rate`` stays out of every profile: its RNG
    draw order across concurrently-batched opposite directions is not
    pinned by the batching contract (``disable_and_repair`` steps the
    rate to exactly 1.0, where the verdict is draw-order independent).

    The ``link_retx`` profile additionally attaches a live
    :class:`~repro.solutions.link_retx.LinkRetxGuard` and requires its
    recovery counters (nacks, resends, recovered, abandoned,
    duplicates) to agree as well: the retransmission state machine must
    settle every targeted corruption identically under both schedules.
    """
    if profile not in LINK_PROFILES:
        raise ValueError(
            f"unknown link profile {profile!r}; choose from {LINK_PROFILES}"
        )
    reference = _drive_link(seed, batch=False, n_bursts=n_bursts, profile=profile)
    candidate = _drive_link(seed, batch=True, n_bursts=n_bursts, profile=profile)
    cases = ("delivered@b", "delivered@a", "counters")
    pair = (
        "train-batching" if profile == "plain"
        else f"train-batching:{profile}"
    )
    for case, ref, cand in zip(cases, reference, candidate):
        if ref != cand:
            port = -1
            if case != "counters":
                port = _first_divergent_index(list(ref), list(cand))
            return Divergence(
                kind="link",
                pair=pair,
                seed=seed,
                size=n_bursts,
                case=case,
                round=-1,
                port=port,
                reference=ref,
                candidate=cand,
            )
    return None


def _first_divergent_index(reference: List[Any], candidate: List[Any]) -> int:
    for index, (ref, cand) in enumerate(zip(reference, candidate)):
        if ref != cand:
            return index
    return min(len(reference), len(candidate))


def link_sweep(
    seeds: Sequence[int],
    n_bursts: int = 40,
    profiles: Sequence[str] = LINK_PROFILES,
) -> Tuple[List[Divergence], List[Dict[str, Any]]]:
    """Train-batching differential over a grid of fault scripts, one
    pass per solution-shaped profile."""
    divergences: List[Divergence] = []
    records: List[Dict[str, Any]] = []
    for profile in profiles:
        for seed in seeds:
            divergence = compare_link_delivery(
                seed, n_bursts=n_bursts, profile=profile
            )
            if divergence is not None:
                divergences.append(divergence)
            records.append(
                {
                    "kind": "link",
                    "profile": profile,
                    "seed": seed,
                    "n_bursts": n_bursts,
                    "agreed": divergence is None,
                }
            )
    return divergences, records


# ======================================================================
# fastpath differential (stacked engine vs per-switch fabrics)
# ======================================================================
#: matcher configurations the engine vectorizes, including the strict-RNG
#: variants whose draws must come off the Python ``random.Random`` stream
#: call-for-call.
FASTPATH_KINDS = ("pim", "pim_strict", "islip", "fifo", "fifo_strict")


def _build_fastpath_fabric(kind: str, n_ports: int, seed: int):
    """One bitmask fabric of ``kind``; call twice for a scalar/engine twin."""
    strict = kind.endswith("_strict")
    if kind.startswith("pim"):
        return VoqFabric(
            n_ports,
            BitmaskPim(
                n_ports,
                iterations=3,
                rng=_seeded_rng(f"fastpath/{kind}", seed),
                strict_rng=strict,
            ),
        )
    if kind == "islip":
        return VoqFabric(n_ports, BitmaskIslip(n_ports, iterations=3))
    if kind.startswith("fifo"):
        return FifoFabric(
            n_ports,
            BitmaskFifoScheduler(
                n_ports,
                rng=_seeded_rng(f"fastpath/{kind}", seed),
                strict_rng=strict,
            ),
        )
    raise ValueError(f"unknown fastpath kind {kind!r}")


def _fastpath_state(fabric) -> Dict[str, Any]:
    """Full observable state of a fabric as plain data.

    Everything the engine's write-back contract covers: queue contents
    (VOQ deques hold arrival slots; FIFO queues hold ``(slot, output)``
    tuples), incremental masks, iSLIP pointers, the scheduler RNG's
    Mersenne state, and every metric including raw sample order.
    """
    metrics = fabric.metrics
    state: Dict[str, Any] = {
        "metrics": [
            metrics.slots,
            metrics.cells_offered,
            metrics.cells_delivered,
            metrics.slots_with_backlog,
            list(metrics.latency._samples),
            list(metrics.iterations_to_maximal._samples),
            sorted(metrics.maximal_within.items()),
            sorted(
                [list(pair), count]
                for pair, count in metrics.delivered_per_pair.items()
            ),
        ],
    }
    if isinstance(fabric, VoqFabric):
        state["queues"] = [
            sorted([o, list(q)] for o, q in queues.items() if q)
            for queues in fabric.queues
        ]
        state["masks"] = [
            list(fabric.request_masks),
            list(fabric.col_masks),
            fabric.union_mask,
        ]
    else:
        state["queues"] = [
            [list(entry) for entry in q] for q in fabric.queues
        ]
    scheduler = fabric.scheduler
    rng = getattr(scheduler, "rng", None)
    if rng is not None:
        version, internal, gauss = rng.getstate()
        state["rng"] = [version, list(internal), gauss]
    if hasattr(scheduler, "grant_pointers"):
        state["pointers"] = [
            list(scheduler.grant_pointers),
            list(scheduler.accept_pointers),
        ]
    return state


def _fastpath_metrics_view(fabric) -> List[Any]:
    """The subset comparable while queue state still lives in the engine."""
    state = _fastpath_state(fabric)
    return [state["metrics"], state.get("rng")]


def compare_fastpath(
    kind: str,
    n_ports: int,
    seed: int,
    pattern: str,
    n_slots: int = 120,
    backend: str = "auto",
) -> Tuple[Optional[Divergence], str]:
    """Drive scalar fabrics and their engine-resident twins from one seed.

    Two sibling fabrics of ``kind`` share one
    :class:`~repro.fastpath.engine.FabricArrayEngine` (so the stacked
    arrays interleave rows, the hostile case for indexing bugs) while an
    identically-seeded scalar pair steps independently.  Fabric 0 is
    pinned back to the scalar path a third of the way in and re-adopted
    at two thirds, exercising the mid-run write-back/re-register cycle.
    Metrics and RNG streams are compared at every engine sync; the full
    state (queues, masks, pointers, samples) is compared after the final
    write-back.  Returns ``(divergence, state_hash)`` where the hash is a
    SHA-256 over the scalar twins' end states -- the corpus pin.
    """
    from repro.conform.digest import canonical_bytes
    from repro.fastpath.engine import FabricArrayEngine

    n_fabrics = 2
    scalar = [
        _build_fastpath_fabric(kind, n_ports, seed * n_fabrics + j)
        for j in range(n_fabrics)
    ]
    mirrored = [
        _build_fastpath_fabric(kind, n_ports, seed * n_fabrics + j)
        for j in range(n_fabrics)
    ]
    engine = FabricArrayEngine(backend=backend)
    for fabric in mirrored:
        engine.register(fabric)
    traffic = [
        PATTERNS[pattern](
            n_ports, _seeded_rng(f"fastpath-traffic/{pattern}/{j}", seed)
        )
        for j in range(n_fabrics)
    ]
    pin_at, unpin_at = n_slots // 3, (2 * n_slots) // 3

    def diverged(slot: int, j: int, reference: Any, candidate: Any):
        return Divergence(
            kind="fastpath",
            pair=kind,
            seed=seed,
            size=n_ports,
            case=f"{pattern}/{backend}",
            round=slot,
            port=j,
            reference=repr(reference)[:200],
            candidate=repr(candidate)[:200],
        )

    for slot in range(n_slots):
        if slot == pin_at:
            engine.pin_scalar(mirrored[0])
        elif slot == unpin_at:
            engine.unpin(mirrored[0])
        for j in range(n_fabrics):
            for input_port, output_port in traffic[j].arrivals(slot):
                scalar[j].offer(input_port, output_port, slot)
                engine.offer(mirrored[j], input_port, output_port, slot)
        for fabric in scalar:
            fabric.step(slot)
        engine.step_all(slot)
        if slot % 16 == 15:
            engine.sync()
            for j in range(n_fabrics):
                ref = _fastpath_metrics_view(scalar[j])
                cand = _fastpath_metrics_view(mirrored[j])
                if ref != cand:
                    return diverged(slot, j, ref, cand), ""
    engine.sync()
    for fabric in mirrored:
        engine.unregister(fabric)
    state_hash = hashlib.sha256()
    for j in range(n_fabrics):
        ref_state = _fastpath_state(scalar[j])
        cand_state = _fastpath_state(mirrored[j])
        state_hash.update(canonical_bytes(ref_state))
        if ref_state != cand_state:
            keys = [k for k in ref_state if ref_state[k] != cand_state.get(k)]
            return (
                diverged(
                    n_slots,
                    j,
                    {k: ref_state[k] for k in keys},
                    {k: cand_state.get(k) for k in keys},
                ),
                state_hash.hexdigest(),
            )
    return None, state_hash.hexdigest()


def fastpath_sweep(
    seeds: Sequence[int],
    sizes: Sequence[int] = (4, 16),
    kinds: Sequence[str] = FASTPATH_KINDS,
    patterns: Sequence[str] = tuple(PATTERNS),
    n_slots: int = 120,
    backends: Optional[Sequence[str]] = None,
) -> Tuple[List[Divergence], List[Dict[str, Any]]]:
    """The engine differential grid over both backends.

    The pure-Python stacked-loop backend is always swept (it is the
    no-numpy fallback and must satisfy the same oracle); the numpy
    backend is swept when numpy is importable and not forced off.
    """
    if backends is None:
        from repro.fastpath.backend import load_numpy

        backends = ("python",) if load_numpy() is None else (
            "numpy", "python"
        )
    divergences: List[Divergence] = []
    records: List[Dict[str, Any]] = []
    for backend in backends:
        for kind in kinds:
            for n_ports in sizes:
                for pattern in patterns:
                    for seed in seeds:
                        divergence, state_sha = compare_fastpath(
                            kind,
                            n_ports,
                            seed,
                            pattern,
                            n_slots=n_slots,
                            backend=backend,
                        )
                        if divergence is not None:
                            divergences.append(divergence)
                        records.append(
                            {
                                "kind": "fastpath",
                                "matcher": kind,
                                "backend": backend,
                                "n_ports": n_ports,
                                "pattern": pattern,
                                "seed": seed,
                                "n_slots": n_slots,
                                "state_sha256": state_sha,
                                "agreed": divergence is None,
                            }
                        )
    return divergences, records


def _scrub_tick_phase(fingerprint: Dict[str, Any]) -> Dict[str, Any]:
    """Drop the fields the slot driver is allowed to change.

    Wave coalescing re-phases per-switch slot timers onto one fabric-wide
    tick and replaces N timer events with one, so ``slot_index`` and
    ``events_executed`` differ by design; every traffic-visible outcome
    (forwarding counts, queue occupancy, credits, epochs, link and host
    state) must be byte-identical.
    """
    scrubbed = dict(fingerprint)
    scrubbed.pop("events_executed", None)
    scrubbed["switches"] = [
        dict(switch, slot_index=0) for switch in scrubbed["switches"]
    ]
    return scrubbed


def compare_slot_driver(
    seed: int = 0, duration_us: float = 40_000.0
) -> Tuple[Optional[Divergence], Dict[str, Any]]:
    """Run the replay scenario with and without the fabric slot driver.

    Builds the same 2x2 grid + dual-homed-hosts scenario as the digest
    gate, once with per-switch slot timers and once with
    ``fabric_slot_driver=True``, then compares the end-of-run
    :func:`~repro.conform.digest.fingerprint_network` with the tick phase
    scrubbed (see :func:`_scrub_tick_phase`).  The driver must also
    *reduce* the kernel event count -- that is the whole point of wave
    coalescing -- so equal-or-more events is reported as a divergence
    too.  Returns ``(divergence, record)``.
    """
    import hashlib as _hashlib

    from repro.conform.digest import canonical_bytes, fingerprint_network
    from repro.net.host import HostConfig
    from repro.net.network import Network
    from repro.switch.switch import SwitchConfig
    from repro.traffic.workload import PoissonPacketWorkload

    def run_scenario(use_driver: bool):
        topo = Topology.grid(2, 2)
        topo.add_host(0)
        topo.add_host(1)
        topo.connect("h0", "s0", port_a=0, bps=622_000_000)
        topo.connect("h0", "s2", port_a=1, bps=622_000_000)
        topo.connect("h1", "s3", port_a=0, bps=622_000_000)
        topo.connect("h1", "s1", port_a=1, bps=622_000_000)
        net = Network(
            topo,
            seed=seed,
            switch_config=SwitchConfig(
                frame_slots=32,
                control_delay_us=10.0,
                ping_interval_us=500.0,
                ack_timeout_us=200.0,
                miss_threshold=2,
                boot_reconfig_delay_us=1_500.0,
                resync_interval_us=5_000.0,
            ),
            host_config=HostConfig(
                ping_interval_us=500.0,
                ack_timeout_us=200.0,
                miss_threshold=2,
                frame_slots=32,
            ),
            fabric_slot_driver=use_driver,
        )
        net.start()
        net.run_until(net.converged, timeout_us=duration_us)
        circuit = net.setup_circuit("h0", "h1")
        workload = PoissonPacketWorkload(
            net.sim,
            net.host("h0"),
            circuit.vc,
            circuit.destination,
            mean_interval_us=400.0,
            packet_bytes=480,
            rng=net.streams.stream("conform.digest.workload"),
            duration_us=duration_us * 0.5,
        )
        workload.start()
        net.run(duration_us)
        return fingerprint_network(net), net.sim.events_executed

    baseline, events_off = run_scenario(use_driver=False)
    driven, events_on = run_scenario(use_driver=True)
    ref_scrubbed = _scrub_tick_phase(baseline)
    cand_scrubbed = _scrub_tick_phase(driven)
    ref_sha = _hashlib.sha256(canonical_bytes(ref_scrubbed)).hexdigest()
    cand_sha = _hashlib.sha256(canonical_bytes(cand_scrubbed)).hexdigest()
    record = {
        "kind": "slot-driver",
        "seed": seed,
        "duration_us": duration_us,
        "events_off": events_off,
        "events_on": events_on,
        "state_sha256": ref_sha,
        "agreed": ref_sha == cand_sha and events_on < events_off,
    }
    divergence: Optional[Divergence] = None
    if ref_sha != cand_sha:
        divergence = Divergence(
            kind="fastpath",
            pair="slot-driver",
            seed=seed,
            size=len(baseline["switches"]),
            case="replay-scenario",
            round=-1,
            port=-1,
            reference=ref_sha,
            candidate=cand_sha,
        )
    elif events_on >= events_off:
        divergence = Divergence(
            kind="fastpath",
            pair="slot-driver",
            seed=seed,
            size=len(baseline["switches"]),
            case="event-count",
            round=-1,
            port=-1,
            reference=f"<{events_off}",
            candidate=events_on,
        )
    return divergence, record


def slot_driver_sweep(
    seeds: Sequence[int], duration_us: float = 40_000.0
) -> Tuple[List[Divergence], List[Dict[str, Any]]]:
    """:func:`compare_slot_driver` over a seed list."""
    divergences: List[Divergence] = []
    records: List[Dict[str, Any]] = []
    for seed in seeds:
        divergence, record = compare_slot_driver(
            seed, duration_us=duration_us
        )
        if divergence is not None:
            divergences.append(divergence)
        records.append(record)
    return divergences, records
