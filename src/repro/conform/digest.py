"""Run digests: replayability as a checkable artifact.

A :class:`RunDigest` is a streaming SHA-256 over the kernel's event
dispatch order -- attached via ``Simulator.digest``, it observes every
executed event's ``(time, seq, callback identity)`` -- plus any number of
end-of-run component state *fingerprints* absorbed with
:meth:`RunDigest.absorb`.  Two runs that report the same hex digest
dispatched the same events in the same order and ended in the same
component state (switch routing tables, VOQ occupancy, credit balances,
epoch tags).

Everything hashed here must be *stable across interpreter invocations*:
no ``id()``-derived values, no ``PYTHONHASHSEED``-dependent ``set``/
``dict`` iteration order.  :func:`canonical_bytes` therefore refuses any
object it does not know how to order canonically, rather than falling
back to ``repr`` (whose default form embeds memory addresses).

The fingerprint helpers reach into private attributes of the switch data
structures (``RoutingTable._entries``, ``VcQueues._queues``, ...).  That
is deliberate: a fingerprint must see the real state, not a summarizing
accessor that could mask divergence.
"""

from __future__ import annotations

import hashlib
import struct
from typing import Any, Callable, Dict, List, Optional

from repro.net.network import Network
from repro.net.topology import Topology
from repro.sim.kernel import Simulator


# ======================================================================
# canonical serialization
# ======================================================================
def canonical_bytes(obj: Any) -> bytes:
    """A deterministic byte encoding of a plain-data structure.

    Supports ``None``, ``bool``, ``int``, ``float``, ``str``, ``bytes``,
    ``list``/``tuple`` (order preserved), ``set``/``frozenset`` (elements
    sorted by their own canonical encoding), and ``dict`` (items sorted
    by the key's canonical encoding).  Anything else raises ``TypeError``
    -- fingerprint builders must reduce component state to plain data
    first, which is what keeps memory addresses and hash-order artifacts
    out of the digest.
    """
    return _canon(obj).encode("utf-8")


def _canon(obj: Any) -> str:
    if obj is None:
        return "N"
    if isinstance(obj, bool):
        return "T" if obj else "F"
    if isinstance(obj, int):
        return f"i{obj}"
    if isinstance(obj, float):
        return f"f{obj!r}"
    if isinstance(obj, str):
        return f"s{len(obj)}:{obj}"
    if isinstance(obj, bytes):
        return f"b{len(obj)}:{obj.hex()}"
    if isinstance(obj, (list, tuple)):
        return "[" + ",".join(_canon(item) for item in obj) + "]"
    if isinstance(obj, (set, frozenset)):
        return "{" + ",".join(sorted(_canon(item) for item in obj)) + "}"
    if isinstance(obj, dict):
        items = sorted((_canon(k), _canon(v)) for k, v in obj.items())
        return "(" + ",".join(f"{k}={v}" for k, v in items) + ")"
    raise TypeError(
        f"canonical_bytes cannot encode {type(obj).__name__}; reduce it "
        f"to plain data (str/int/float/list/dict/...) first"
    )


# ======================================================================
# the digest itself
# ======================================================================
class RunDigest:
    """Streaming hash of dispatch order + absorbed state fingerprints."""

    def __init__(self) -> None:
        self._hash = hashlib.sha256()
        self.events_observed = 0
        #: labels absorbed so far, in order (diagnostics; two digests can
        #: only be meaningfully compared if these match).
        self.sections: List[str] = []

    # -- kernel hook ---------------------------------------------------
    @staticmethod
    def callback_name(callback: Callable[..., Any]) -> str:
        """A run-stable identity for an event callback.

        Bound methods of components that carry a ``node_id`` include it
        (``s3:AN2Switch._slot_tick``), so the digest distinguishes *whose*
        timer fired, not just which method.  Never identity-based.
        """
        qualname = getattr(callback, "__qualname__", None)
        if qualname is None:
            qualname = type(callback).__name__
        owner = getattr(callback, "__self__", None)
        if owner is not None:
            node = getattr(owner, "node_id", None)
            if node is not None:
                return f"{node}:{qualname}"
        return qualname

    def observe(
        self, time: float, seq: int, callback: Callable[..., Any]
    ) -> None:
        """Fold one executed event into the digest (called by the kernel)."""
        self._hash.update(struct.pack("<dq", time, seq))
        self._hash.update(self.callback_name(callback).encode("utf-8"))
        self._hash.update(b"\x00")
        self.events_observed += 1

    # -- state fingerprints --------------------------------------------
    def absorb(self, label: str, payload: Any) -> None:
        """Fold a labelled state fingerprint (plain data) into the digest."""
        self._hash.update(b"\x01")
        self._hash.update(label.encode("utf-8"))
        self._hash.update(b"\x02")
        self._hash.update(canonical_bytes(payload))
        self.sections.append(label)

    def hexdigest(self) -> str:
        """Current digest value (does not finalize; may keep observing)."""
        return self._hash.hexdigest()

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<RunDigest events={self.events_observed} "
            f"sections={len(self.sections)} {self.hexdigest()[:12]}>"
        )


# ======================================================================
# component state fingerprints
# ======================================================================
def _edge_str(edge) -> str:
    (na, pa), (nb, pb) = edge
    return f"{na}.{pa}-{nb}.{pb}"


def fingerprint_switch(switch) -> Dict[str, Any]:
    """Plain-data fingerprint of one AN2 switch's end-of-run state.

    Covers the determinism contract's switch-side state: routing tables,
    VOQ/guaranteed occupancy and rotation order, per-VC credit balances
    and cumulative counters, resync state, epoch tags, and the forwarding
    statistics.
    """
    agent = switch.reconfig
    view = agent.view
    cards = []
    for card in switch.cards:
        table = card.routing_table
        routing = [
            [
                int(vc),
                entry.out_port,
                sorted(entry.out_ports) if entry.out_ports is not None else None,
                entry.cells_forwarded,
            ]
            for vc, entry in sorted(table._entries.items())
        ]
        voq_groups = [
            [out_port, sorted([int(vc), len(q)] for vc, q in group.items())]
            for out_port, group in sorted(card.vc_queues._queues.items())
        ]
        rotations = [
            [out_port, [int(vc) for vc in rotation]]
            for out_port, rotation in sorted(card.vc_queues._rotation.items())
        ]
        cards.append(
            {
                "index": card.index,
                "routing": routing,
                "paged": sorted(int(vc) for vc in table.paged),
                "pending": sorted(
                    [int(vc), len(cells)]
                    for vc, cells in table._pending.items()
                ),
                "pending_drops": table.pending_drops,
                "voq_occupancy": card.vc_queues.occupancy,
                "voq_groups": voq_groups,
                "voq_rotation": rotations,
                "guaranteed": sorted(
                    [out_port, len(q)]
                    for out_port, q in card.guaranteed_queues._queues.items()
                ),
                "upstream": [
                    [int(vc), u.balance, u.cells_sent, u.credits_received,
                     u.excess_credits, u.stalls]
                    for vc, u in sorted(card.upstream.items())
                ],
                "downstream": [
                    [int(vc), d.occupied, d.cells_received, d.buffers_freed]
                    for vc, d in sorted(card.downstream.items())
                ],
                "resync_vcs": sorted(int(vc) for vc in card.resync),
                "cells_forwarded": card.cells_forwarded,
                "cells_dropped": card.cells_dropped,
            }
        )
    stats = switch.stats
    return {
        "node": str(switch.node_id),
        "slot_index": switch._slot_index,
        "vc_in_port": sorted(
            [int(vc), port] for vc, port in switch._vc_in_port.items()
        ),
        "epoch": {
            "stored_tag": str(agent.stored_tag),
            "view_tag": None if agent.view_tag is None else str(agent.view_tag),
            "tree_depth": agent.tree_depth,
            "active": agent.active,
            "view_edges": (
                None if view is None
                else sorted(_edge_str(e) for e in view.edges)
            ),
        },
        "stats": {
            "cells_forwarded": stats.cells_forwarded,
            "guaranteed_forwarded": stats.guaranteed_forwarded,
            "cells_dropped": stats.cells_dropped,
            "pending_buffered": stats.pending_buffered,
            "credits_sent": stats.credits_sent,
            "page_outs": stats.page_outs,
            "page_ins": stats.page_ins,
            "reroutes": stats.reroutes,
            "broken_circuits": stats.broken_circuits,
            "per_output": sorted(
                [port, n] for port, n in stats.per_output_forwarded.items()
            ),
        },
        "cards": cards,
    }


def fingerprint_network(net: Network) -> Dict[str, Any]:
    """Plain-data fingerprint of a whole network's end-of-run state."""
    return {
        "now": net.sim.now,
        "events_executed": net.sim.events_executed,
        "switches": [
            fingerprint_switch(s) for _, s in sorted(net.switches.items())
        ],
        "links": sorted(
            [
                _edge_str(edge),
                link.state.value,
                link.cells_delivered,
                link.cells_dropped,
                link.cells_corrupted,
            ]
            for edge, link in net.links.items()
        ),
        "hosts": [
            {
                "node": str(node),
                "open_vcs": sorted(int(vc) for vc in host.senders),
                "queued_cells": sorted(
                    [int(vc), len(sender.queue)]
                    for vc, sender in host.senders.items()
                ),
            }
            for node, host in sorted(net.hosts.items())
        ],
    }


# ======================================================================
# the canonical digest scenario
# ======================================================================
def digest_scenario(
    seed: int = 0,
    duration_us: float = 80_000.0,
    flight_dump: Optional[str] = None,
) -> str:
    """Build, run, and digest the reference replay scenario.

    A 2x2 redundant grid with two dual-homed hosts boots, converges, and
    carries Poisson traffic over one circuit for ``duration_us``.  The
    returned hex digest folds together the full event dispatch order and
    the end-of-run :func:`fingerprint_network`; it must be identical for
    the same ``seed`` across repeated runs, interpreter invocations, and
    ``PYTHONHASHSEED`` values.

    ``flight_dump``, if given, is a path to write the network's
    flight-recorder rings to after the run -- the conformance gate uses
    it to leave an autopsy artifact when digests diverge.
    """
    from repro.net.host import HostConfig
    from repro.switch.switch import SwitchConfig
    from repro.traffic.workload import PoissonPacketWorkload

    topo = Topology.grid(2, 2)
    topo.add_host(0)
    topo.add_host(1)
    topo.connect("h0", "s0", port_a=0, bps=622_000_000)
    topo.connect("h0", "s2", port_a=1, bps=622_000_000)
    topo.connect("h1", "s3", port_a=0, bps=622_000_000)
    topo.connect("h1", "s1", port_a=1, bps=622_000_000)
    net = Network(
        topo,
        seed=seed,
        switch_config=SwitchConfig(
            frame_slots=32,
            control_delay_us=10.0,
            ping_interval_us=500.0,
            ack_timeout_us=200.0,
            miss_threshold=2,
            boot_reconfig_delay_us=1_500.0,
            resync_interval_us=5_000.0,
        ),
        host_config=HostConfig(
            ping_interval_us=500.0,
            ack_timeout_us=200.0,
            miss_threshold=2,
            frame_slots=32,
        ),
    )
    digest = RunDigest()
    net.sim.digest = digest
    net.start()
    net.run_until(net.converged, timeout_us=duration_us)
    circuit = net.setup_circuit("h0", "h1")
    workload = PoissonPacketWorkload(
        net.sim,
        net.host("h0"),
        circuit.vc,
        circuit.destination,
        mean_interval_us=400.0,
        packet_bytes=480,
        rng=net.streams.stream("conform.digest.workload"),
        duration_us=duration_us * 0.5,
    )
    workload.start()
    net.run(duration_us)
    net.sim.digest = None
    digest.absorb("network-state", fingerprint_network(net))
    if flight_dump is not None:
        net.recorder.dump(
            flight_dump,
            reason=f"conformance replay (seed={seed}) "
            f"digest={digest.hexdigest()[:16]}",
        )
    return digest.hexdigest()
