"""repro: AN2 -- a local area network as a distributed system.

A full reproduction of Susan S. Owicki's PODC'93 paper "A Perspective on
AN2: Local Area Network as Distributed System" (Digital Equipment
Corporation, Systems Research Center): the AN1/AN2 switch-based LAN
rebuilt as a simulated distributed system, mechanism by mechanism.

Quick start::

    from repro import Network, Topology

    topo = Topology.src_lan(n_switches=8, n_hosts=6)
    net = Network(topo, seed=1)
    net.start()
    net.run_until_converged()          # distributed topology acquisition

    circuit = net.setup_circuit("h0", "h1")   # hop-by-hop signaling
    from repro.net.packet import Packet
    net.host("h0").send_packet(circuit.vc, Packet(
        source=circuit.source, destination=circuit.destination,
        payload=b"hello AN2"))
    net.run(50_000)
    print(net.host("h1").delivered)

Subpackages:

- :mod:`repro.sim` -- discrete-event kernel, drifting clocks, RNG streams
- :mod:`repro.net` -- cells, packets, SAR, links, ports, topologies,
  hosts, and the :class:`~repro.net.network.Network` assembly
- :mod:`repro.switch` -- line cards, crossbar, buffers, the event-driven
  switch, and the fast slot-synchronous fabric simulators
- :mod:`repro.core` -- the paper's algorithms: reconfiguration, skeptic,
  up*/down* routing, signaling, PIM, Slepian-Duguid, bandwidth central,
  credit flow control
- :mod:`repro.traffic` -- workload generators
- :mod:`repro.analysis` -- statistics and benchmark table rendering
"""

from repro._types import NodeId, host_id, parse_node_id, switch_id
from repro.net.network import Network, NetworkError
from repro.net.packet import Packet
from repro.net.topology import Topology, TopologyView
from repro.switch.switch import AN2Switch, SwitchConfig

__version__ = "1.0.0"

__all__ = [
    "AN2Switch",
    "Network",
    "NetworkError",
    "NodeId",
    "Packet",
    "SwitchConfig",
    "Topology",
    "TopologyView",
    "host_id",
    "parse_node_id",
    "switch_id",
    "__version__",
]
