"""Physical and protocol constants from the paper.

All times are microseconds, matching the library-wide convention.
"""

from __future__ import annotations

#: ATM cell: 48 bytes of data plus a 5-byte header (section 1).
CELL_PAYLOAD_BYTES = 48
CELL_HEADER_BYTES = 5
CELL_BYTES = CELL_PAYLOAD_BYTES + CELL_HEADER_BYTES
CELL_BITS = CELL_BYTES * 8

#: AN2 link rates (section 1): 622 Mbit/s trunk links, 155 Mbit/s host links.
FAST_LINK_BPS = 622_000_000
SLOW_LINK_BPS = 155_000_000
#: AN1 link rate (section 1), for the AN1-flavoured experiments.
AN1_LINK_BPS = 100_000_000

#: Cell transmission time on a fast link -- the paper's "half microsecond
#: required to transmit a cell" (section 3).
FAST_CELL_TIME_US = CELL_BITS / FAST_LINK_BPS * 1e6  # ~0.68 us
SLOW_CELL_TIME_US = CELL_BITS / SLOW_LINK_BPS * 1e6  # ~2.7 us

#: Cut-through delay across a switch with no contention (sections 1-2):
#: "the first bit of a packet leaves the switch 2 microseconds after it
#: arrives".
CUT_THROUGH_DELAY_US = 2.0

#: Switch radix (section 1): 16x16 crossbar, 12 ports in AN1.
AN2_SWITCH_PORTS = 16
AN1_SWITCH_PORTS = 12

#: Guaranteed-traffic frames (section 4): 1024 cell slots per frame.
FRAME_SLOTS = 1024
#: Nested-frame re-ordering unit proposed in section 4.
NESTED_FRAME_SLOTS = 128

#: Frame time on a fast link, in microseconds (~0.7 ms; the paper quotes
#: "less than half a millisecond" for 1 Gbit/s links).
FRAME_TIME_US = FRAME_SLOTS * FAST_CELL_TIME_US

#: PIM iterations run by the AN2 hardware (section 3).
AN2_PIM_ITERATIONS = 3

#: The paper's expected PIM bound: average iterations to a maximal match
#: <= log2(N) + 4/3, i.e. 5.32 for the 16x16 switch.
def pim_iteration_bound(ports: int) -> float:
    """``log2(N) + 4/3`` -- average iterations for a maximal match."""
    import math

    return math.log2(ports) + 4.0 / 3.0


#: Reconfiguration budget demonstrated on AN1 (section 1): the SRC LAN
#: reconfigures in under 200 ms.
RECONFIGURATION_BUDGET_US = 200_000.0

#: Propagation speed used to turn cable lengths into latencies:
#: ~5 ns/m in fibre (2e8 m/s).
PROPAGATION_US_PER_KM = 5.0

#: Maximum link length considered in section 5's buffer-cost estimate.
MAX_LINK_KM = 10.0
