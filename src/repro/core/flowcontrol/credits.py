"""Per-virtual-circuit credit state (the protocol of Figure 4).

"The upstream switch maintains a credit balance for buffers in the
downstream switch; this is the number of buffers known to be empty.
Whenever the upstream switch sends a cell, it decrements the balance for
the corresponding virtual circuit.  Whenever a cell buffer is freed in the
downstream switch... a credit is transmitted back to the upstream switch,
and the credit balance for the circuit is incremented.  Cells are only
transmitted for circuits with non-zero credit balances."

Both ends also keep *cumulative* counters (cells sent / buffers freed).
These make the scheme "robust in the face of lost flow-control messages":
a lost credit only shrinks the usable window, and the resynchronization
protocol (:mod:`repro.core.flowcontrol.resync`) restores it from the
counters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional


class CreditError(Exception):
    """Protocol violation: sending without credit, freeing a free buffer..."""


@dataclass
class UpstreamCredits:
    """The sender's side: a credit balance for one VC over one link.

    ``trace`` is an optional ``(event_name, payload_dict)`` hook that the
    owning driver wires up -- only when its simulator has a tracer -- to
    surface credit grants and stall/unstall transitions as ``flowcontrol``
    trace events.  Untraced instances never touch it on the send path.
    """

    allocation: int
    balance: int = field(default=-1)
    cells_sent: int = 0
    credits_received: int = 0
    stalls: int = 0  # times a send was attempted/needed with zero balance
    #: credits received (or resync corrections) beyond the allocation --
    #: duplicated credit cells, or stale credits arriving after a resync
    #: already restored the window.  Clamped, counted, never delivered.
    excess_credits: int = 0
    #: protocol-conformance mode: raise :class:`CreditError` on excess
    #: credit instead of clamping.  Fault scenarios *produce* duplicate
    #: and stale credits, so operational code leaves this off; strict
    #: tests of the protocol itself opt in.
    strict: bool = False
    trace: Optional[Callable[[str, dict], Any]] = field(
        default=None, repr=False, compare=False
    )
    _stalled: bool = field(default=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.allocation <= 0:
            raise CreditError(f"allocation must be positive, got {self.allocation}")
        if self.balance < 0:
            self.balance = self.allocation

    @property
    def can_send(self) -> bool:
        return self.balance > 0

    def consume(self) -> None:
        """Account for one cell transmitted downstream."""
        if self.balance <= 0:
            raise CreditError("sent a cell with zero credit balance")
        self.balance -= 1
        self.cells_sent += 1

    def credit(self, amount: int = 1) -> bool:
        """A credit cell arrived from downstream.

        A balance that would exceed the allocation (a duplicated credit
        cell, or a stale one arriving after resynchronization already
        restored the window) is clamped and counted in
        :attr:`excess_credits`; with :attr:`strict` set it raises
        instead.  Returns ``True`` when this credit *ends* a stall
        episode (the edge callers flight-record).
        """
        if amount <= 0:
            raise CreditError(f"non-positive credit {amount}")
        self.balance += amount
        self.credits_received += amount
        if self.balance > self.allocation:
            if self.strict:
                raise CreditError(
                    f"balance {self.balance} exceeds allocation "
                    f"{self.allocation}"
                )
            self.excess_credits += self.balance - self.allocation
            self.balance = self.allocation
        unstalled = self._stalled
        self._stalled = False
        if self.trace is not None:
            self.trace("credit.grant", {"amount": amount, "balance": self.balance})
            if unstalled:
                self.trace("credit.unstall", {"stalls": self.stalls})
        return unstalled

    def note_stall(self) -> bool:
        """Count one blocked send attempt.

        Returns ``True`` when this *begins* a stall episode (the first
        blocked attempt since credit last arrived) -- callers use that
        edge to flight-record stalls without flooding on every retry.
        """
        self.stalls += 1
        if self._stalled:
            return False
        # One event per stall *episode*; note_stall fires once per
        # blocked pump attempt and would flood the trace otherwise.
        self._stalled = True
        if self.trace is not None:
            self.trace("credit.stall", {"stalls": self.stalls})
        return True

    def resynchronize(self, downstream_freed_total: int) -> int:
        """Reset the balance from the downstream's cumulative counter.

        ``allocation - (cells_sent - downstream_freed_total)`` is exactly
        the number of empty downstream buffers; returns the number of
        credits recovered (0 if none were lost).
        """
        in_flight_or_buffered = self.cells_sent - downstream_freed_total
        if in_flight_or_buffered < 0:
            raise CreditError("downstream freed more cells than were sent")
        correct = self.allocation - in_flight_or_buffered
        recovered = correct - self.balance
        if recovered < 0:
            # The balance is *too high* -- duplicated or stale credits
            # inflated it.  The counter-derived value is exact, so in the
            # default mode adopt it (counting the excess); strict mode
            # keeps the protocol-conformance raise.
            if self.strict:
                raise CreditError(
                    f"resync would *reduce* balance "
                    f"({self.balance} -> {correct})"
                )
            self.excess_credits += -recovered
            self.balance = correct
            return 0
        self.balance = correct
        return recovered


@dataclass
class DownstreamCredits:
    """The receiver's side: buffer occupancy for one VC over one link."""

    allocation: int
    occupied: int = 0
    cells_received: int = 0
    buffers_freed: int = 0
    overflows: int = 0

    def __post_init__(self) -> None:
        if self.allocation <= 0:
            raise CreditError(f"allocation must be positive, got {self.allocation}")

    def receive(self) -> None:
        """A cell arrived and takes a buffer.

        With a correct upstream this can never overflow; the check is the
        losslessness invariant the property tests lean on.
        """
        if self.occupied >= self.allocation:
            self.overflows += 1
            raise CreditError(
                f"buffer overflow: {self.occupied}/{self.allocation} occupied"
            )
        self.occupied += 1
        self.cells_received += 1

    def free(self) -> None:
        """The cell left through the crossbar; its buffer is empty again.

        The caller is responsible for transmitting the credit upstream.
        """
        if self.occupied <= 0:
            raise CreditError("freed a buffer that was not occupied")
        self.occupied -= 1
        self.buffers_freed += 1


def conservation_holds(
    upstream: UpstreamCredits,
    downstream: DownstreamCredits,
    cells_in_flight: int,
    credits_in_flight: int,
) -> bool:
    """The conservation invariant of a lossless link:

    ``balance + cells_in_flight + occupied + credits_in_flight ==
    allocation``.

    Property tests drive random send/forward schedules and assert this at
    every step; credit loss breaks it by exactly the number lost, which is
    what resynchronization recovers.
    """
    return (
        upstream.balance
        + cells_in_flight
        + downstream.occupied
        + credits_in_flight
        == upstream.allocation
    )
