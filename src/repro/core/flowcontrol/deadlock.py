"""Wait-for graphs and deadlock analysis.

Section 5: "Using flow-control to prevent buffer overflow introduces the
possibility of deadlock.  A cell effectively holds a buffer at the
upstream switch while attempting to acquire one at the downstream switch.
With AN1's FIFO buffers, if the first packet in the queue is blocked, the
entire link is blocked as well.  If a cycle of blocked links could arise,
where each link has a packet waiting for a buffer in the next link, then
deadlock could occur."

We model the resource graph at the granularity the buffer organisation
dictates:

- **FIFO buffers (AN1)**: the resource is the whole directed link; a
  route that enters on directed link A and leaves on directed link B adds
  the waits-for edge A -> B.  A cycle means a deadlock is reachable.
  Up*/down* routing exists precisely to keep this graph acyclic.
- **Per-VC buffers (AN2)**: the resource is the (virtual circuit, link)
  buffer pool; waits-for edges only connect consecutive links *of the
  same circuit*, so every chain is a simple path and "since the links of
  a single virtual circuit can not form a cycle, deadlock cannot occur".
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Sequence, Set, Tuple

from repro._types import NodeId

#: A directed link: (from node, to node).
DirectedLink = Tuple[NodeId, NodeId]


class WaitForGraph:
    """A directed graph over arbitrary hashable resources."""

    def __init__(self) -> None:
        self._edges: Dict[Hashable, Set[Hashable]] = {}

    def add_edge(self, holder: Hashable, wanted: Hashable) -> None:
        self._edges.setdefault(holder, set()).add(wanted)
        self._edges.setdefault(wanted, set())

    def add_node(self, node: Hashable) -> None:
        self._edges.setdefault(node, set())

    @property
    def n_nodes(self) -> int:
        return len(self._edges)

    @property
    def n_edges(self) -> int:
        return sum(len(targets) for targets in self._edges.values())

    def has_cycle(self) -> bool:
        return self.find_cycle() is not None

    def find_cycle(self) -> "List[Hashable] | None":
        """A cycle as a node list (first == last), or ``None``.

        Iterative three-colour DFS so deep graphs cannot blow the Python
        recursion limit.
        """
        WHITE, GREY, BLACK = 0, 1, 2
        # det: allow(colour is lookup-only; dict key order never observed)
        colour: Dict[Hashable, int] = {node: WHITE for node in self._edges}
        parent: Dict[Hashable, Hashable] = {}
        # Which cycle is reported follows the caller's add_edge insertion
        # order, not hash order; DFS children are sorted below.
        # det: allow(dict insertion order is replay-deterministic)
        for start in self._edges:
            if colour[start] != WHITE:
                continue
            stack: List[Tuple[Hashable, Iterable]] = [
                (start, iter(sorted(self._edges[start], key=repr)))
            ]
            colour[start] = GREY
            while stack:
                node, children = stack[-1]
                advanced = False
                for child in children:
                    if colour[child] == WHITE:
                        colour[child] = GREY
                        parent[child] = node
                        stack.append(
                            (child, iter(sorted(self._edges[child], key=repr)))
                        )
                        advanced = True
                        break
                    if colour[child] == GREY:
                        # Found a back edge: reconstruct the cycle.
                        cycle = [child, node]
                        walker = node
                        while walker != child:
                            walker = parent[walker]
                            cycle.append(walker)
                        cycle.reverse()
                        return cycle
                if not advanced:
                    colour[node] = BLACK
                    stack.pop()
        return None


def fifo_wait_for_graph(
    routes: Sequence[Sequence[NodeId]],
) -> WaitForGraph:
    """AN1-style: whole directed links are the contended resources.

    ``routes`` are node paths (host/switch ids); consecutive directed
    links of each route add waits-for edges.
    """
    graph = WaitForGraph()
    for route in routes:
        links = [
            (route[i], route[i + 1]) for i in range(len(route) - 1)
        ]
        for held, wanted in zip(links, links[1:]):
            graph.add_edge(held, wanted)
        for link in links:
            graph.add_node(link)
    return graph


def per_vc_wait_for_graph(
    routes: Sequence[Sequence[NodeId]],
) -> WaitForGraph:
    """AN2-style: each circuit's buffers are private, so resources are
    (circuit index, directed link) pairs.  The resulting graph is a union
    of simple chains and can never contain a cycle."""
    graph = WaitForGraph()
    for circuit_index, route in enumerate(routes):
        links = [
            (circuit_index, (route[i], route[i + 1]))
            for i in range(len(route) - 1)
        ]
        for held, wanted in zip(links, links[1:]):
            graph.add_edge(held, wanted)
        for link in links:
            graph.add_node(link)
    return graph
