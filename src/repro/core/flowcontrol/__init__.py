"""Credit-based flow control and deadlock avoidance (section 5).

Best-effort traffic in AN2 never overflows a buffer: "Buffers for each
best-effort virtual circuit traversing the link are allocated at the
downstream switch.  The upstream switch maintains a credit balance...
Cells are only transmitted for circuits with non-zero credit balances."

- :mod:`repro.core.flowcontrol.credits` -- the per-VC upstream/downstream
  credit state machines (Figure 4),
- :mod:`repro.core.flowcontrol.resync` -- the counter-exchange protocol
  that recovers credits lost to control-message corruption,
- :mod:`repro.core.flowcontrol.sizing` -- round-trip credit sizing ("enough
  buffers... to hold as many cells as can be transmitted in one round-trip
  time on the link"),
- :mod:`repro.core.flowcontrol.deadlock` -- wait-for-graph construction and
  cycle detection, used to demonstrate why AN1 needed up*/down* routing
  and why AN2's per-VC buffers are deadlock-free.
"""

from repro.core.flowcontrol.credits import CreditError, DownstreamCredits, UpstreamCredits
from repro.core.flowcontrol.deadlock import WaitForGraph
from repro.core.flowcontrol.sizing import (
    credits_for_link,
    retx_buffer_for_link,
    round_trip_cells,
)

__all__ = [
    "CreditError",
    "DownstreamCredits",
    "UpstreamCredits",
    "WaitForGraph",
    "credits_for_link",
    "retx_buffer_for_link",
    "round_trip_cells",
]
