"""Credit resynchronization.

"The credit-based scheme is robust in the face of lost flow-control
messages.  With credits, a lost message can only cause reduced
performance.  Performance can be regained by having the upstream switch
periodically trigger a resynchronization of credits.  Devising the
re-synchronization protocol is in itself an interesting problem in
distributed computing..." (section 5).

The protocol implemented here is the classic cumulative-counter exchange
(the same idea as N23/QFC resync):

1. the upstream sends ``ResyncRequest(vc, cells_sent)`` -- its cumulative
   transmit counter -- *in order* with data cells on the link;
2. the downstream, on receiving the request, replies
   ``ResyncReply(vc, cells_sent_echo, buffers_freed)`` with its cumulative
   freed counter, *in order* with credit returns;
3. the upstream sets ``balance = allocation - (cells_sent_echo -
   buffers_freed)`` -- but only if its transmit counter still equals the
   echoed one, i.e. it has sent nothing since the request.  Otherwise it
   just retries later.

Step 3's guard makes the protocol safe even though request, reply, data
and credit cells are all in flight concurrently: because the request and
the reply travel in FIFO order with the data and credit streams, every
cell sent before the request has been counted in ``buffers_freed`` or is
still buffered downstream -- so the computed balance can only *recover*
lost credits, never manufacture new ones.  (A lost request or reply just
means the next periodic attempt tries again.)
"""

from __future__ import annotations

from dataclasses import dataclass

from repro._types import VcId
from repro.core.flowcontrol.credits import UpstreamCredits


@dataclass(frozen=True)
class ResyncRequest:
    vc: VcId
    cells_sent: int


@dataclass(frozen=True)
class ResyncReply:
    vc: VcId
    cells_sent_echo: int
    buffers_freed: int


class ResyncState:
    """Upstream-side driver for one VC's resynchronization."""

    def __init__(self, vc: VcId, upstream: UpstreamCredits) -> None:
        self.vc = vc
        self.upstream = upstream
        self.requests_sent = 0
        self.replies_applied = 0
        self.credits_recovered = 0
        #: replies whose counters cannot belong to this upstream
        #: incarnation (e.g. the circuit was rerouted and the downstream
        #: counter is cumulative over an older path) -- discarded.
        self.incoherent_replies = 0

    def make_request(self) -> ResyncRequest:
        """Snapshot the transmit counter into a request message."""
        self.requests_sent += 1
        return ResyncRequest(self.vc, self.upstream.cells_sent)

    def apply_reply(self, reply: ResyncReply) -> int:
        """Apply a reply; returns credits recovered (0 if stale/no-op).

        Stale means the upstream transmitted more cells after snapshotting
        the request; the computed balance would be wrong (too generous),
        so the reply is discarded and the next periodic request retries.
        """
        if reply.vc != self.vc:
            raise ValueError(f"reply for vc {reply.vc} given to vc {self.vc}")
        if reply.cells_sent_echo != self.upstream.cells_sent:
            return 0
        in_flight = reply.cells_sent_echo - reply.buffers_freed
        if in_flight < 0 or in_flight > self.upstream.allocation:
            # Within one incarnation of the circuit 0 <= in_flight <=
            # allocation always holds (FIFO links; sends gated on the
            # window).  A reply outside that range pairs counters from
            # *different* incarnations -- e.g. the route moved and this
            # upstream state is fresh while the downstream counter is
            # still cumulative over the old path.  Unusable; discard and
            # let the next periodic request resynchronize from scratch.
            self.incoherent_replies += 1
            return 0
        recovered = self.upstream.resynchronize(reply.buffers_freed)
        if recovered:
            self.credits_recovered += recovered
        self.replies_applied += 1
        return recovered
