"""Credit/buffer sizing from link round trips.

Section 5: "Suppose that a virtual circuit encounters no contention for
the links on its route.  The circuit should be able to transmit at the
full link rate, which would be impossible if the upstream switch on a
link ever ran out of credits.  To guarantee that it never does, it must
start with enough credits to cover a round-trip on the link...  Thus
enough buffers are needed for each virtual circuit to hold as many cells
as can be transmitted in one round-trip time on the link."

The E9 benchmark sweeps the per-VC credit allocation through and past
this bound and shows throughput saturating exactly at the round-trip
size, and :func:`memory_for_link` reproduces the back-of-envelope memory
estimate ("With 1000 virtual circuits per link and a maximum link length
of 10 km, the required memory costs much less than the opto-electronics
in the line card").
"""

from __future__ import annotations

import math

from repro.constants import (
    CELL_BYTES,
    CELL_BITS,
    FAST_LINK_BPS,
    PROPAGATION_US_PER_KM,
)


def round_trip_us(
    length_km: float,
    bps: float = FAST_LINK_BPS,
    per_hop_processing_us: float = 0.0,
) -> float:
    """Round-trip time of a link: two propagation delays, one cell
    serialization each way, plus any fixed processing."""
    if length_km < 0:
        raise ValueError(f"negative link length {length_km}")
    one_way = length_km * PROPAGATION_US_PER_KM
    cell_time = CELL_BITS / bps * 1e6
    return 2 * (one_way + cell_time + per_hop_processing_us)


def round_trip_cells(
    length_km: float,
    bps: float = FAST_LINK_BPS,
    per_hop_processing_us: float = 0.0,
) -> int:
    """Cells transmittable in one round trip -- the credit floor for
    full-rate transmission on an uncontended circuit."""
    cell_time = CELL_BITS / bps * 1e6
    rtt = round_trip_us(length_km, bps, per_hop_processing_us)
    return max(1, math.ceil(rtt / cell_time))


def credits_for_link(
    length_km: float,
    bps: float = FAST_LINK_BPS,
    per_hop_processing_us: float = 0.0,
    slack_cells: int = 1,
) -> int:
    """The static per-VC allocation AN2's first release would install:
    the round-trip size plus a little slack for timing quantization."""
    if slack_cells < 0:
        raise ValueError(f"negative slack {slack_cells}")
    return round_trip_cells(length_km, bps, per_hop_processing_us) + slack_cells


def retx_buffer_for_link(
    length_km: float,
    bps: float = FAST_LINK_BPS,
    per_hop_processing_us: float = 0.0,
    slack_cells: int = 8,
) -> int:
    """Per-direction link-local retransmission buffer, in cells.

    The link_retx solution keeps a sender-side copy of every cell until
    the receiving port has either delivered it or NACKed it, so a copy
    must survive one link round trip (the cell's propagation plus the
    NACK's) at full rate -- the same round-trip arithmetic that sizes
    credits -- plus slack for the resend turnaround itself.  Overflow
    falls back to loss: the oldest unacknowledged copy is evicted and a
    later NACK for it is answered by declaring the cell lost.
    """
    if slack_cells < 0:
        raise ValueError(f"negative slack {slack_cells}")
    return round_trip_cells(length_km, bps, per_hop_processing_us) + slack_cells


def memory_for_link(
    n_circuits: int = 1000,
    length_km: float = 10.0,
    bps: float = FAST_LINK_BPS,
) -> int:
    """Bytes of buffer memory one link needs at the paper's scale.

    1000 VCs x round-trip(10 km) cells x 53 bytes -- the figure the paper
    compares against the cost of line-card opto-electronics.
    """
    if n_circuits <= 0:
        raise ValueError(f"n_circuits must be positive, got {n_circuits}")
    return n_circuits * round_trip_cells(length_km, bps) * CELL_BYTES
