"""The skeptic: escalating hold-downs for flapping links.

Section 2: "Care must be taken that an intermittent fault does not cause a
link to make frequent transitions between the two states, for each
transition would trigger a reconfiguration, and too-frequent
reconfigurations can keep the network from providing service.  To prevent
this, a skeptic module in the software monitor retains a history of a
link's failures and recoveries.  If failures recur, the skeptic requires
an increasingly long period of correct operation before the link is
considered to be recovered."

The state machine (following Rodeheffer & Schroeder's Autonet design):

- ``WORKING``: the link is usable.  A failure report moves it to ``DEAD``
  and raises the skepticism level.
- ``DEAD``: the link is unusable.  A recovery report starts a probation
  timer of ``base_wait * 2**level`` (capped at ``max_level``); the link
  enters ``PROBATION``.
- ``PROBATION``: any failure sends it back to ``DEAD`` (and escalates);
  surviving the full probation period promotes it to ``WORKING``.

Skepticism decays: every ``decay_interval`` of uninterrupted ``WORKING``
operation reduces the level by one, so a link with ancient history is
eventually trusted quickly again.

The class is a pure state machine driven by explicit timestamps, so it can
be unit-tested exhaustively and property-tested against the "verdict
transitions are rare" invariant; the network layer wires it to real
monitor reports and simulator timers.
"""

from __future__ import annotations

import enum
from typing import Callable, List, Optional, Tuple


class LinkVerdict(enum.Enum):
    """The skeptic's published opinion -- what reconfiguration sees."""

    WORKING = "working"
    DEAD = "dead"


class _State(enum.Enum):
    WORKING = "working"
    DEAD = "dead"
    PROBATION = "probation"


class Skeptic:
    """Hold-down controller for one link's state.

    Args:
        base_wait_us: probation length at skepticism level 0.
        max_level: cap on the exponential escalation.
        decay_interval_us: working time required to shed one level.
        on_verdict: callback invoked with (verdict, timestamp) whenever the
            published verdict changes -- in AN2 this is what triggers a
            reconfiguration.
    """

    def __init__(
        self,
        base_wait_us: float = 10_000.0,
        max_level: int = 8,
        decay_interval_us: float = 1_000_000.0,
        on_verdict: Optional[Callable[[LinkVerdict, float], None]] = None,
        initially_working: bool = True,
    ) -> None:
        if base_wait_us <= 0:
            raise ValueError(f"base_wait_us must be positive, got {base_wait_us}")
        if max_level < 0:
            raise ValueError(f"max_level must be >= 0, got {max_level}")
        self.base_wait_us = base_wait_us
        self.max_level = max_level
        self.decay_interval_us = decay_interval_us
        self.on_verdict = on_verdict
        self.level = 0
        self._state = (
            _State.WORKING if initially_working else _State.DEAD
        )
        self._verdict = (
            LinkVerdict.WORKING if initially_working else LinkVerdict.DEAD
        )
        self._probation_ends: Optional[float] = None
        self._working_since: Optional[float] = 0.0 if initially_working else None
        self._last_decay: float = 0.0
        self.verdict_changes: List[Tuple[float, LinkVerdict]] = []
        self.failures_seen = 0
        # Tracing is opt-in: the machine stays pure (explicit timestamps,
        # no simulator) until an owner binds one for emission.
        self._trace_sim = None
        self._trace_component = ""

    def bind_trace(self, sim, component: str) -> None:
        """Emit ``reconfig`` trace events through ``sim.tracer`` (if any)."""
        self._trace_sim = sim
        self._trace_component = component

    def _trace(self, now: float, name: str, **payload) -> None:
        sim = self._trace_sim
        if sim is not None and sim.tracer is not None:
            sim.tracer.emit(
                now, "reconfig", self._trace_component, name,
                level=self.level, **payload,
            )

    # ------------------------------------------------------------------
    @property
    def verdict(self) -> LinkVerdict:
        return self._verdict

    def probation_remaining(self, now: float) -> Optional[float]:
        """Microseconds of probation left, or ``None`` if not on probation."""
        if self._state is not _State.PROBATION or self._probation_ends is None:
            return None
        return max(0.0, self._probation_ends - now)

    def current_wait(self) -> float:
        """The probation the *next* recovery must survive."""
        return self.base_wait_us * (2 ** min(self.level, self.max_level))

    # ------------------------------------------------------------------
    # inputs from the link monitor
    # ------------------------------------------------------------------
    def report_failure(self, now: float) -> None:
        """The monitor observed the link misbehaving."""
        self._maybe_decay(now)
        self.failures_seen += 1
        self._trace(now, "skeptic.failure", state=self._state.value)
        if self._state is _State.WORKING:
            self.level = min(self.level + 1, self.max_level)
            self._enter_dead(now)
        elif self._state is _State.PROBATION:
            # Failing during probation proves continued flakiness.
            self.level = min(self.level + 1, self.max_level)
            self._state = _State.DEAD
            self._probation_ends = None
        # Already DEAD: nothing changes.

    def report_recovery(self, now: float) -> None:
        """The monitor observed the link behaving correctly again."""
        if self._state is _State.DEAD:
            self._state = _State.PROBATION
            self._probation_ends = now + self.current_wait()
            self._trace(
                now, "skeptic.probation", until=self._probation_ends,
            )

    def tick(self, now: float) -> None:
        """Advance timers: probation completion and skepticism decay.

        The owner calls this periodically (or at interesting times); the
        machine is robust to arbitrary call spacing.
        """
        if (
            self._state is _State.PROBATION
            and self._probation_ends is not None
            and now >= self._probation_ends
        ):
            self._state = _State.WORKING
            self._probation_ends = None
            self._working_since = now
            self._last_decay = now
            self._publish(LinkVerdict.WORKING, now)
        self._maybe_decay(now)

    # ------------------------------------------------------------------
    def _enter_dead(self, now: float) -> None:
        self._state = _State.DEAD
        self._probation_ends = None
        self._working_since = None
        self._publish(LinkVerdict.DEAD, now)

    def _maybe_decay(self, now: float) -> None:
        if self._state is not _State.WORKING or self.decay_interval_us <= 0:
            return
        while (
            self.level > 0
            and now - self._last_decay >= self.decay_interval_us
        ):
            self.level -= 1
            self._last_decay += self.decay_interval_us

    def _publish(self, verdict: LinkVerdict, now: float) -> None:
        if verdict is self._verdict:
            return
        self._verdict = verdict
        self.verdict_changes.append((now, verdict))
        self._trace(now, "skeptic.verdict", verdict=verdict.value)
        if self.on_verdict is not None:
            self.on_verdict(verdict, now)

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<Skeptic {self._state.value} level={self.level} "
            f"verdict={self._verdict.value}>"
        )
