"""Topology acquisition and fault monitoring (section 2).

- :mod:`repro.core.reconfig.epoch` -- (epoch number, switch id) tags and
  their total order, which serialize overlapping reconfigurations,
- :mod:`repro.core.reconfig.messages` -- the invitation / ack / report /
  distribute messages of the three-phase algorithm,
- :mod:`repro.core.reconfig.algorithm` -- the reconfiguration agent run by
  every switch: propagation (spanning-tree building), collection
  (topology up the tree), distribution (topology down the tree),
- :mod:`repro.core.reconfig.monitor` -- per-port neighbor pinging that
  turns raw links into clean "working"/"dead" abstractions,
- :mod:`repro.core.reconfig.skeptic` -- the escalating hold-down state
  machine that keeps flapping links from melting the network.
"""

from repro.core.reconfig.epoch import EpochTag
from repro.core.reconfig.messages import (
    Invitation,
    InvitationAck,
    TopologyDistribute,
    TopologyReport,
)
from repro.core.reconfig.skeptic import LinkVerdict, Skeptic

__all__ = [
    "EpochTag",
    "Invitation",
    "InvitationAck",
    "LinkVerdict",
    "Skeptic",
    "TopologyDistribute",
    "TopologyReport",
]
