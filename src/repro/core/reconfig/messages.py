"""Messages of the three-phase reconfiguration algorithm.

All four ride in :class:`~repro.net.cell.CellKind.RECONFIG` control cells
between adjacent switches.  Every message carries the epoch tag of the
reconfiguration it belongs to; receivers discard messages from superseded
tags.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet

from repro.core.reconfig.epoch import EpochTag
from repro.net.topology import Edge


@dataclass(frozen=True)
class Invitation:
    """Propagation phase: "it invites each of its neighbors to join the
    tree".

    ``depth`` is the inviter's depth in the propagation-order tree; it
    rides along so each switch learns its own depth, letting the E4
    benchmark compare the propagation-order tree against a true
    breadth-first tree (the paper: "the tree obtained is usually very
    close to a breadth-first tree").
    """

    tag: EpochTag
    depth: int = 0


@dataclass(frozen=True)
class InvitationAck:
    """"Each invitation is acknowledged with an indication of whether it
    was accepted or declined."""

    tag: EpochTag
    accepted: bool


@dataclass(frozen=True)
class TopologyReport:
    """Collection phase: the subtree's union of locally-known edges,
    passed from child to parent."""

    tag: EpochTag
    edges: FrozenSet[Edge]


@dataclass(frozen=True)
class TopologyDistribute:
    """Distribution phase: the complete topology, passed from parent to
    children."""

    tag: EpochTag
    edges: FrozenSet[Edge]
