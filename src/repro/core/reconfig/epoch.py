"""Epoch tags: the total order that serializes overlapping reconfigurations.

Section 2: "each reconfiguration message is tagged with an epoch number
and the id of the initiating switch.  Each switch maintains a copy of the
largest tag it has seen, where the ordering is based first on epoch number
and then on switch id.  When a switch initiates a configuration, it uses
an epoch number one greater than the one in its stored tag.  When a switch
receives an invitation to join a configuration tree, it ignores it unless
the message tag is larger than its currently stored value.  In that case,
it aborts its activity in the earlier configuration and joins the new
one."
"""

from __future__ import annotations

from dataclasses import dataclass

from repro._types import NodeId


@dataclass(frozen=True, order=True)
class EpochTag:
    """(epoch, initiator id), ordered lexicographically.

    ``order=True`` on the dataclass gives exactly the paper's ordering:
    epoch number first, initiating switch id second.  NodeId is itself
    totally ordered.
    """

    epoch: int
    initiator: NodeId

    def successor(self, initiator: NodeId) -> "EpochTag":
        """The tag a switch uses to start a new reconfiguration: "an epoch
        number one greater than the one in its stored tag"."""
        return EpochTag(self.epoch + 1, initiator)

    def __str__(self) -> str:
        return f"e{self.epoch}@{self.initiator}"


#: The tag every switch boots with; any real reconfiguration exceeds it.
GENESIS = EpochTag(0, NodeId("switch", -1))
