"""The three-phase distributed reconfiguration algorithm.

Section 2, condensed:

1. **Propagation**: the initiator (the switch that detected a state
   change) becomes the root and invites its neighbors; a switch accepts
   the first invitation it receives (becoming the inviter's child),
   declines later ones, and invites all its other neighbors.  Every
   invitation is acknowledged with accept/decline.
2. **Collection**: topology information flows up the tree; when the last
   child of a node has reported, the node forwards its subtree's union to
   its parent.  At the end the root knows the complete topology.
3. **Distribution**: the complete topology flows down the tree; at the
   end every switch knows it.

Overlapping reconfigurations are serialized by
:class:`~repro.core.reconfig.epoch.EpochTag`: a switch joins only
invitations whose tag exceeds its stored tag, aborting any earlier
participation, so "a switch that sees multiple configurations
participates in the one with the largest tag and eventually ignores all
others".

Liveness: if a link dies mid-reconfiguration, the lost message would
stall the epoch; the port monitors eventually publish the death, which
triggers a *new* epoch that supersedes the stalled one.  A watchdog
timeout provides the same guarantee against pathological loss.

The agent is transport-agnostic: it talks to its switch through the small
:class:`ReconfigTransport` duck-type, so unit tests can drive it with an
in-memory message bus and the network tests with real simulated cells.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Set

from repro._types import NodeId
from repro.core.reconfig.epoch import GENESIS, EpochTag
from repro.core.reconfig.messages import (
    Invitation,
    InvitationAck,
    TopologyDistribute,
    TopologyReport,
)
from repro.net.topology import Edge, TopologyDelta, TopologyView
from repro.sim.kernel import Event, Simulator
from repro.sim.process import Signal


class ReconfigTransport:
    """What the agent needs from its host switch (duck-typed).

    - ``reconfig_ports()``: indices of ports currently cabled to *working*
      switch links (the neighbors to invite),
    - ``local_edges()``: the edges this switch can vouch for -- every
      working port's (self, port) <-> (neighbor, port) pair, hosts
      included,
    - ``send_reconfig(port_index, message)``: transmit a protocol message
      (the switch model adds line-card software latency).
    """

    def reconfig_ports(self) -> List[int]:  # pragma: no cover - interface
        raise NotImplementedError

    def local_edges(self) -> Set[Edge]:  # pragma: no cover - interface
        raise NotImplementedError

    def send_reconfig(self, port_index: int, message) -> None:  # pragma: no cover
        raise NotImplementedError


@dataclass
class ReconfigStats:
    """Per-agent counters for the E4/E5 benchmarks."""

    initiated: int = 0
    participations: int = 0
    aborted: int = 0
    invitations_sent: int = 0
    messages_sent: int = 0
    completions: int = 0


class ReconfigurationAgent:
    """One switch's reconfiguration state machine."""

    def __init__(
        self,
        sim: Simulator,
        node_id: NodeId,
        transport: ReconfigTransport,
        watchdog_us: float = 100_000.0,
    ) -> None:
        self.sim = sim
        self.node_id = node_id
        self.transport = transport
        self.watchdog_us = watchdog_us
        self.stored_tag: EpochTag = GENESIS
        # Participation state for ``stored_tag`` (valid while ``active``).
        self.active = False
        self.parent_port: Optional[int] = None
        self._pending_acks: Set[int] = set()
        self._children: Set[int] = set()
        self._awaiting_reports: Set[int] = set()
        self._collected: Set[Edge] = set()
        self._reported_up = False
        self._watchdog: Optional[Event] = None
        # Results.
        self.view: Optional[TopologyView] = None
        self.view_tag: Optional[EpochTag] = None
        #: What changed relative to the previous completed epoch's view
        #: (``None`` until a *second* epoch completes).  The epoch install
        #: path uses this to recompute routes incrementally instead of
        #: rebuilding the orientation from scratch.
        self.view_delta: Optional[TopologyDelta] = None
        self.ready = Signal(f"{node_id}.topology_ready")
        #: fires with the new tag whenever this agent *joins* a
        #: configuration (triggering or accepting an invitation).  AN1
        #: uses this to drop all packets in transit: "all packets in
        #: transit are dropped when a reconfiguration begins".
        self.joined = Signal(f"{node_id}.reconfig_joined")
        self.stats = ReconfigStats()
        self.started_at: Optional[float] = None
        self.completed_at: Optional[float] = None
        #: depth of this node in the propagation-order tree (root = 0);
        #: measured by carrying depth in invitations.
        self.tree_depth: Optional[int] = None
        self._epoch_span = None  # open tracer span for the current epoch

    # ------------------------------------------------------------------
    # external triggers
    # ------------------------------------------------------------------
    def trigger(self) -> EpochTag:
        """Start a new reconfiguration (link state change, boot...)."""
        tag = self.stored_tag.successor(self.node_id)
        self.stats.initiated += 1
        if self.sim.tracer is not None:
            self.sim.tracer.emit(
                self.sim.now, "reconfig", str(self.node_id),
                "epoch.trigger", tag=str(tag),
            )
        self._join(tag, parent_port=None, depth=0)
        return tag

    # ------------------------------------------------------------------
    # message handling
    # ------------------------------------------------------------------
    def handle(self, port_index: int, message) -> None:
        """Process a reconfiguration message that arrived on ``port_index``."""
        if isinstance(message, Invitation):
            self._handle_invitation(port_index, message)
        elif isinstance(message, InvitationAck):
            self._handle_ack(port_index, message)
        elif isinstance(message, TopologyReport):
            self._handle_report(port_index, message)
        elif isinstance(message, TopologyDistribute):
            self._handle_distribute(port_index, message)
        else:
            raise TypeError(f"unknown reconfiguration message {message!r}")

    def _handle_invitation(self, port_index: int, message: Invitation) -> None:
        if message.tag > self.stored_tag:
            # Join: accept the first invitation of a newer configuration.
            # The ack MUST precede the join: joining can immediately
            # complete this node's subtree and emit its TopologyReport on
            # the same (FIFO) link, and the parent only accepts reports
            # from ports it has recorded as children.
            self._send(port_index, InvitationAck(message.tag, accepted=True))
            self._join(message.tag, parent_port=port_index, depth=message.depth + 1)
        else:
            # Already in this configuration (or a newer one): decline.
            self._send(port_index, InvitationAck(message.tag, accepted=False))

    def _handle_ack(self, port_index: int, message: InvitationAck) -> None:
        if not self.active or message.tag != self.stored_tag:
            return
        if port_index not in self._pending_acks:
            return
        self._pending_acks.discard(port_index)
        if message.accepted:
            self._children.add(port_index)
            self._awaiting_reports.add(port_index)
        self._maybe_complete_subtree()

    def _handle_report(self, port_index: int, message: TopologyReport) -> None:
        if not self.active or message.tag != self.stored_tag:
            return
        if port_index not in self._awaiting_reports:
            return
        self._awaiting_reports.discard(port_index)
        self._collected |= message.edges
        self._maybe_complete_subtree()

    def _handle_distribute(
        self, port_index: int, message: TopologyDistribute
    ) -> None:
        if message.tag != self.stored_tag:
            return
        if self.parent_port is not None and port_index != self.parent_port:
            return
        self._finish(TopologyView(frozenset(message.edges)))

    # ------------------------------------------------------------------
    # state machine internals
    # ------------------------------------------------------------------
    def _join(self, tag: EpochTag, parent_port: Optional[int], depth: int) -> None:
        if self.active:
            self.stats.aborted += 1
        self._cancel_watchdog()
        self.stored_tag = tag
        self.active = True
        self.parent_port = parent_port
        self._children = set()
        self._awaiting_reports = set()
        self._collected = set(self.transport.local_edges())
        self._reported_up = False
        self.tree_depth = depth
        self.started_at = self.sim.now
        self.completed_at = None
        self.stats.participations += 1
        invite_ports = [
            p for p in self.transport.reconfig_ports() if p != parent_port
        ]
        self._pending_acks = set(invite_ports)
        for port_index in invite_ports:
            self._send(port_index, Invitation(tag, depth=depth))
            self.stats.invitations_sent += 1
        if self.watchdog_us > 0:
            self._watchdog = self.sim.schedule(
                self.watchdog_us, self._watchdog_fired, tag
            )
        if self.sim.tracer is not None:
            # Abandoned epochs (superseded by a larger tag) simply never
            # get their .end record -- the report tool treats an epoch
            # with a begin and no end as aborted.
            self._epoch_span = self.sim.tracer.span(
                self.sim.now, "reconfig", str(self.node_id), "epoch",
                tag=str(tag),
                root=parent_port is None,
                depth=depth,
            )
        recorder = self.sim.recorder
        if recorder is not None:
            recorder.record(
                self.sim.now, f"switch.{self.node_id}", "epoch.join",
                tag=str(tag), root=parent_port is None, depth=depth,
            )
        self.joined.fire(tag)
        self._maybe_complete_subtree()

    def _maybe_complete_subtree(self) -> None:
        if not self.active or self._reported_up:
            return
        if self._pending_acks or self._awaiting_reports:
            return
        # The whole subtree below (and including) this node has reported.
        if self.parent_port is None:
            # Root: phase 2 done -- it knows the complete topology.
            view = TopologyView(frozenset(self._collected))
            for child in sorted(self._children):
                self._send(child, TopologyDistribute(self.stored_tag, view.edges))
            self._finish(view)
        else:
            self._reported_up = True
            self._send(
                self.parent_port,
                TopologyReport(self.stored_tag, frozenset(self._collected)),
            )

    def _finish(self, view: TopologyView) -> None:
        # Distribution phase: pass the topology to the children (the root
        # already did so in _maybe_complete_subtree).
        if self.parent_port is not None:
            for child in sorted(self._children):
                self._send(child, TopologyDistribute(self.stored_tag, view.edges))
        self.active = False
        self._cancel_watchdog()
        self.view_delta = (
            TopologyDelta.between(self.view, view)
            if self.view is not None
            else None
        )
        self.view = view
        self.view_tag = self.stored_tag
        self.completed_at = self.sim.now
        self.stats.completions += 1
        if self._epoch_span is not None:
            self._epoch_span.end(
                self.sim.now,
                tag=str(self.view_tag),
                edges=len(view.edges),
            )
            self._epoch_span = None
        recorder = self.sim.recorder
        if recorder is not None:
            delta = self.view_delta
            recorder.record(
                self.sim.now, f"switch.{self.node_id}", "epoch.done",
                tag=str(self.view_tag), edges=len(view.edges),
                duration=self.sim.now - (self.started_at or 0.0),
                edges_added=len(delta.added) if delta else 0,
                edges_removed=len(delta.removed) if delta else 0,
            )
        self.ready.fire((self.view_tag, view))

    def _watchdog_fired(self, tag: EpochTag) -> None:
        self._watchdog = None
        if self.active and self.stored_tag == tag:
            # The epoch stalled (a participant died or messages were lost
            # on a link whose death is not yet published).  Supersede it.
            if self.sim.tracer is not None:
                self.sim.tracer.emit(
                    self.sim.now, "reconfig", str(self.node_id),
                    "epoch.watchdog", tag=str(tag),
                )
            recorder = self.sim.recorder
            if recorder is not None:
                recorder.record(
                    self.sim.now, f"switch.{self.node_id}",
                    "epoch.watchdog", tag=str(tag),
                )
            self.trigger()

    def _cancel_watchdog(self) -> None:
        if self._watchdog is not None:
            self._watchdog.cancel()
            self._watchdog = None

    def _send(self, port_index: int, message) -> None:
        self.stats.messages_sent += 1
        self.transport.send_reconfig(port_index, message)

    # ------------------------------------------------------------------
    @property
    def is_root(self) -> bool:
        return self.parent_port is None and (
            self.active or self.view_tag is not None
        )

    def __repr__(self) -> str:  # pragma: no cover
        state = "active" if self.active else "idle"
        return (
            f"<ReconfigurationAgent {self.node_id} {state} "
            f"tag={self.stored_tag}>"
        )
