"""Per-port link monitoring: pings, acks, and failure detection.

Section 2: "switch software monitors the links by regularly pinging each
neighbor and checking that a correct acknowledgment is received.  If this
test fails too frequently, a working link is changed to the dead state.
Likewise, a dead link's state makes the transition to working if its
error rate is acceptably low for a long enough time."

A :class:`PortMonitor` sends a ping out its port every ``ping_interval``;
the neighbor answers immediately with an ack carrying its identity (this
doubles as the neighbor-discovery query of the reconfiguration algorithm:
"each node knows the identity of its neighbors; this information can be
obtained by sending a query out each port").  ``miss_threshold``
consecutive unanswered pings are reported to the port's
:class:`~repro.core.reconfig.skeptic.Skeptic` as a failure; any answered
ping is reported as (candidate) recovery.  The *skeptic* decides when the
published link verdict actually changes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Optional, Tuple

from repro._types import NodeId
from repro.core.reconfig.skeptic import Skeptic
from repro.net.cell import Cell, CellKind
from repro.net.port import Port
from repro.sim.kernel import Simulator

if TYPE_CHECKING:  # pragma: no cover
    pass


@dataclass(frozen=True)
class PingPayload:
    """Carried by PING cells; echoed (plus responder identity) in acks."""

    sender: NodeId
    sender_port: int
    seq: int


@dataclass(frozen=True)
class PingAckPayload:
    sender: NodeId
    sender_port: int
    seq: int
    responder: NodeId
    responder_port: int


def make_ack(request: PingPayload, responder: NodeId, responder_port: int) -> PingAckPayload:
    return PingAckPayload(
        sender=request.sender,
        sender_port=request.sender_port,
        seq=request.seq,
        responder=responder,
        responder_port=responder_port,
    )


class PortMonitor:
    """Liveness monitoring for one cabled port."""

    def __init__(
        self,
        sim: Simulator,
        owner_id: NodeId,
        port: Port,
        skeptic: Skeptic,
        ping_interval_us: float = 1_000.0,
        ack_timeout_us: float = 500.0,
        miss_threshold: int = 3,
        start_offset_us: float = 0.0,
    ) -> None:
        if ack_timeout_us >= ping_interval_us:
            raise ValueError(
                "ack timeout must be shorter than the ping interval"
            )
        if miss_threshold < 1:
            raise ValueError(f"miss_threshold must be >= 1, got {miss_threshold}")
        self.sim = sim
        self.owner_id = owner_id
        self.port = port
        self.skeptic = skeptic
        self.ping_interval_us = ping_interval_us
        self.ack_timeout_us = ack_timeout_us
        self.miss_threshold = miss_threshold
        self._start_offset_us = start_offset_us
        self.neighbor: Optional[Tuple[NodeId, int]] = None
        self._seq = 0
        self._outstanding: Dict[int, float] = {}
        self._misses = 0
        self.pings_sent = 0
        self.acks_received = 0
        self._started = False
        # Trace events (ours and the skeptic's) carry the port-qualified
        # component name, e.g. "s3.p2".
        self._trace_component = f"{owner_id}.p{port.index}"
        skeptic.bind_trace(sim, self._trace_component)

    # ------------------------------------------------------------------
    def start(self) -> None:
        if self._started:
            return
        self._started = True
        self.sim.schedule(self._start_offset_us, self._send_ping)

    def _send_ping(self) -> None:
        self._seq += 1
        seq = self._seq
        payload = PingPayload(self.owner_id, self.port.index, seq)
        self._outstanding[seq] = self.sim.now
        self.pings_sent += 1
        self.port.send(Cell(vc=0, kind=CellKind.PING, payload=payload))
        self.sim.schedule(self.ack_timeout_us, self._check_timeout, seq)
        self.sim.schedule(self.ping_interval_us, self._send_ping)
        # Let the skeptic's probation and decay timers advance.
        self.skeptic.tick(self.sim.now)

    def _check_timeout(self, seq: int) -> None:
        if seq not in self._outstanding:
            return
        del self._outstanding[seq]
        self._misses += 1
        if self.sim.tracer is not None:
            self.sim.tracer.emit(
                self.sim.now, "reconfig", self._trace_component,
                "monitor.timeout", seq=seq, misses=self._misses,
                threshold=self.miss_threshold,
            )
        if self._misses >= self.miss_threshold:
            self.skeptic.report_failure(self.sim.now)

    def on_ack(self, payload: PingAckPayload) -> None:
        """Called by the owning node when a PING_ACK for this port arrives."""
        sent_at = self._outstanding.pop(payload.seq, None)
        if sent_at is None:
            return  # late or duplicate ack
        self.acks_received += 1
        self._misses = 0
        self.neighbor = (payload.responder, payload.responder_port)
        self.skeptic.report_recovery(self.sim.now)
        self.skeptic.tick(self.sim.now)

    # ------------------------------------------------------------------
    @property
    def verdict(self):
        return self.skeptic.verdict

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<PortMonitor {self.port.label} neighbor={self.neighbor} "
            f"verdict={self.skeptic.verdict.value}>"
        )
