"""Legality and maximality checks for matchings.

These are the invariants the paper states for PIM: "The algorithm ensures
that the matching obtained is legal...  each output is paired with at most
one input...  each input is paired with at most one output", and iterating
until quiescence yields a *maximal* matching.  The property-based tests
and the iteration-count benchmark (E2) use these helpers as oracles.
"""

from __future__ import annotations

from typing import Dict, Sequence, Set

from repro.core.matching.maximum import hopcroft_karp

Matching = Dict[int, int]


def match_size(matching: Matching) -> int:
    return len(matching)


def is_legal_matching(
    requests: Sequence[Set[int]], matching: Matching
) -> bool:
    """Each input at most once, each output at most once, edges requested.

    Pairs not present in ``requests`` are allowed only if callers include
    them in the request sets (guaranteed-slot reservations are passed in
    as pre-matched pairs and excluded before calling this).
    """
    outputs_seen: Set[int] = set()
    # det: allow(order-independent validation predicate; returns a bool)
    for input_port, output_port in matching.items():
        if not 0 <= input_port < len(requests):
            return False
        if output_port in outputs_seen:
            return False
        outputs_seen.add(output_port)
        if output_port not in requests[input_port]:
            return False
    return True


def is_maximal_matching(
    requests: Sequence[Set[int]], matching: Matching
) -> bool:
    """No unmatched input still wants an unmatched output."""
    matched_outputs = set(matching.values())
    for input_port, wanted in enumerate(requests):
        if input_port in matching:
            continue
        for output_port in wanted:
            if output_port not in matched_outputs:
                return False
    return True


def maximum_size(requests: Sequence[Set[int]]) -> int:
    """Size of the true maximum matching (Hopcroft-Karp oracle)."""
    return len(hopcroft_karp(len(requests), requests))


def greedy_completion(
    requests: Sequence[Set[int]], matching: Matching
) -> Matching:
    """Extend ``matching`` greedily to a maximal one (deterministic)."""
    extended = dict(matching)
    matched_outputs = set(extended.values())
    for input_port, wanted in enumerate(requests):
        if input_port in extended:
            continue
        for output_port in sorted(wanted):
            if output_port not in matched_outputs:
                extended[input_port] = output_port
                matched_outputs.add(output_port)
                break
    return extended
