"""Maximum bipartite matching -- the paper's rejected alternative.

"Why not implement a maximum matching algorithm instead?  The simplest
answer is that we don't know of a fast enough algorithm...  Besides,
maximum matching can lead to starvation."  (Section 3.)

We implement Hopcroft-Karp so the benchmarks can (a) compare PIM's maximal
match sizes against the true maximum, and (b) reproduce the starvation
example: with input 1 always requesting outputs 2 and 3 and input 4 always
requesting output 3, the unique maximum matching always pairs 1->2 and
4->3, so the circuit from input 1 to output 3 never gets service.

The implementation is deterministic (ties broken by port order), which is
exactly the property that produces starvation.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Sequence, Set

Matching = Dict[int, int]

_INFINITY = float("inf")


def hopcroft_karp(n_ports: int, requests: Sequence[Set[int]]) -> Matching:
    """Maximum matching of inputs to requested outputs, O(E * sqrt(V)).

    Returns a dict mapping matched input ports to output ports.
    """
    match_input: List[Optional[int]] = [None] * n_ports  # input -> output
    match_output: List[Optional[int]] = [None] * n_ports  # output -> input
    adjacency: List[List[int]] = [sorted(wanted) for wanted in requests]

    def bfs() -> bool:
        distances: List[float] = [_INFINITY] * n_ports
        queue: deque = deque()
        for u in range(n_ports):
            if match_input[u] is None and adjacency[u]:
                distances[u] = 0
                queue.append(u)
        found_augmenting = False
        while queue:
            u = queue.popleft()
            for v in adjacency[u]:
                w = match_output[v]
                if w is None:
                    found_augmenting = True
                elif distances[w] == _INFINITY:
                    distances[w] = distances[u] + 1
                    queue.append(w)
        bfs.distances = distances  # type: ignore[attr-defined]
        return found_augmenting

    def dfs(u: int) -> bool:
        distances = bfs.distances  # type: ignore[attr-defined]
        for v in adjacency[u]:
            w = match_output[v]
            if w is None or (
                distances[w] == distances[u] + 1 and dfs(w)
            ):
                match_input[u] = v
                match_output[v] = u
                return True
        distances[u] = _INFINITY
        return False

    while bfs():
        for u in range(n_ports):
            if match_input[u] is None and adjacency[u]:
                dfs(u)

    return {
        u: v for u, v in enumerate(match_input) if v is not None
    }


class MaximumMatcher:
    """Scheduler facade over :func:`hopcroft_karp`.

    Presents the same ``match`` interface as
    :class:`~repro.core.matching.pim.ParallelIterativeMatcher` so the
    fabric simulator can swap schedulers.
    """

    name = "maximum"

    def __init__(self, n_ports: int) -> None:
        self.n_ports = n_ports

    def match(
        self,
        requests: Sequence[Set[int]],
        pre_matched: Optional[Matching] = None,
    ):
        from repro.core.matching.pim import MatchResult

        pre: Matching = dict(pre_matched) if pre_matched else {}
        taken_outputs = set(pre.values())
        trimmed: List[Set[int]] = []
        for input_port, wanted in enumerate(requests):
            if input_port in pre:
                trimmed.append(set())
            else:
                trimmed.append({o for o in wanted if o not in taken_outputs})
        matching = hopcroft_karp(self.n_ports, trimmed)
        matching.update(pre)
        return MatchResult(
            matching=matching,
            iterations_run=1,
            iterations_to_maximal=1,
            new_matches_per_iteration=[len(matching) - len(pre)],
        )
