"""FIFO head-of-line scheduling -- the 58%-throughput baseline.

"The simplest approach is a FIFO queue of cells at each input; only the
first cell in the queue is eligible for transmission across the switch...
Karol et al. have shown that head-of-line blocking limits switch
throughput to 58% of each link, when the destinations of incoming cells
are uniformly distributed among all outputs."  (Section 3.)

The scheduler sees only each input's head-of-line destination.  When
several heads want the same output, one is chosen at random (modelling
fair output contention); the losers block their whole queues.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence

from repro.core.matching.pim import MatchResult, Matching


class FifoScheduler:
    """Resolve head-of-line contention with random winners."""

    name = "fifo"

    def __init__(self, n_ports: int, rng: Optional[random.Random] = None) -> None:
        self.n_ports = n_ports
        self.rng = rng if rng is not None else random.Random(0)

    def match_heads(
        self,
        heads: Sequence[Optional[int]],
        pre_matched: Optional[Matching] = None,
    ) -> MatchResult:
        """Match given each input's head-of-line output (or ``None``)."""
        if len(heads) != self.n_ports:
            raise ValueError(
                f"expected {self.n_ports} head entries, got {len(heads)}"
            )
        matching: Matching = dict(pre_matched) if pre_matched else {}
        taken_outputs = set(matching.values())
        contenders: Dict[int, List[int]] = {}
        for input_port, output_port in enumerate(heads):
            if output_port is None or input_port in matching:
                continue
            if output_port in taken_outputs:
                continue
            contenders.setdefault(output_port, []).append(input_port)
        added = 0
        for output_port in sorted(contenders):
            inputs = contenders[output_port]
            winner = inputs[self.rng.randrange(len(inputs))]
            matching[winner] = output_port
            added += 1
        return MatchResult(
            matching=matching,
            iterations_run=1,
            iterations_to_maximal=1,
            new_matches_per_iteration=[added],
        )
