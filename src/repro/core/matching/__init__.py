"""Crossbar scheduling: parallel iterative matching and baselines.

Every cell slot, the switch must pair inputs with outputs -- "This
bi-partite matching problem must be solved every time slot, in the half
microsecond required to transmit a cell" (section 3).  This package holds
the schedulers:

- :class:`~repro.core.matching.pim.ParallelIterativeMatcher` -- AN2's
  randomized request/grant/accept algorithm,
- :class:`~repro.core.matching.islip.IslipMatcher` -- a round-robin
  variant, used as an ablation,
- :class:`~repro.core.matching.maximum.MaximumMatcher` -- maximum
  bipartite matching (Hopcroft-Karp), the paper's starvation-prone
  strawman,
- :class:`~repro.core.matching.fifo.FifoScheduler` -- head-of-line FIFO
  contention, the 58%-throughput baseline,
- :mod:`repro.core.matching.bitmask` -- bitmask fast-path
  re-implementations of PIM, iSLIP, and the FIFO scheduler
  (:class:`~repro.core.matching.bitmask.BitmaskPim`,
  :class:`~repro.core.matching.bitmask.BitmaskIslip`,
  :class:`~repro.core.matching.bitmask.BitmaskFifoScheduler`), valid for
  N <= 64 and bit-identical to the references for a shared seed,

plus legality/maximality analysis helpers in
:mod:`repro.core.matching.analysis`.
"""

from repro.core.matching.analysis import (
    is_legal_matching,
    is_maximal_matching,
    match_size,
)
from repro.core.matching.bitmask import (
    BitmaskFifoScheduler,
    BitmaskIslip,
    BitmaskPim,
    iter_bits,
    mask_of,
)
from repro.core.matching.fifo import FifoScheduler
from repro.core.matching.islip import IslipMatcher
from repro.core.matching.maximum import MaximumMatcher, hopcroft_karp
from repro.core.matching.pim import MatchResult, ParallelIterativeMatcher

__all__ = [
    "BitmaskFifoScheduler",
    "BitmaskIslip",
    "BitmaskPim",
    "FifoScheduler",
    "IslipMatcher",
    "MatchResult",
    "MaximumMatcher",
    "ParallelIterativeMatcher",
    "hopcroft_karp",
    "is_legal_matching",
    "is_maximal_matching",
    "iter_bits",
    "mask_of",
    "match_size",
]
