"""Bitmask fast-path crossbar schedulers.

The reference matchers (:mod:`repro.core.matching.pim`,
:mod:`repro.core.matching.islip`, :mod:`repro.core.matching.fifo`) model
the paper's distributed request/grant/accept wires with dictionaries of
Python sets and lists.  That is the clearest rendering of section 3, but
it is also the hot loop of every fabric experiment: at N = 16 a load
sweep runs the matcher 10^5+ times, and each call churns through
``setdefault``/``sorted``/set-membership machinery.

This module re-implements the same algorithms on *port bitmasks*: each
input's request set is a single Python int with bit ``o`` set iff the
input has a buffered cell for output ``o`` (valid for N <= 64; AN2 is
N = 16).  The request, grant and accept rounds become ``&``/``|``/
``bit_count()`` operations over those ints, set-bit enumeration is a
single lookup in a precomputed 16-bit table, and the request matrix is
transposed into per-output contender columns once per call (or supplied
ready-made by :class:`~repro.switch.fabric.VoqFabric`, which maintains
the columns incrementally) instead of being rebuilt every iteration.

Semantics are identical to the reference implementations -- ports are
visited in ascending order, grants and accepts are uniform random
choices among contenders -- but the *random draw protocol* is selectable:

- ``strict_rng=True`` consumes ``rng.randrange(k)`` in exactly the
  sequence the reference implementation does, making :class:`BitmaskPim`
  *bit-identical* to
  :class:`~repro.core.matching.pim.ParallelIterativeMatcher` for a
  shared seed.  The equivalence property tests rely on this mode.
- ``strict_rng=False`` (the default fast path) draws the same uniform
  choice via a single C-level ``rng.random()`` call and skips the
  degenerate draw when only one contender exists.  Runs remain fully
  deterministic for a fixed seed, and per-flow service distributions are
  indistinguishable from the reference (pinned by the E11-pattern test).

:class:`BitmaskIslip` involves no randomness at all, so it is exactly
equivalent to :class:`~repro.core.matching.islip.IslipMatcher` in every
mode.  All classes also accept plain request sets through the reference
``match(requests, pre_matched)`` / ``match_heads(heads)`` entry points,
so they are drop-in replacements anywhere a reference matcher is used.
"""

from __future__ import annotations

import random
from typing import Iterable, Iterator, List, Optional, Sequence, Set, Tuple, Union

from repro.core.matching.pim import MatchResult, Matching

MAX_PORTS = 64  # one bit per output in a machine-word-sized int

RequestsLike = Sequence[Union[int, Set[int], Iterable[int]]]

# _BITS16[m] is the tuple of set-bit positions of the 16-bit value m in
# ascending order.  Built once by dynamic programming over the lowest set
# bit; ~8 MB, bought back within a single load sweep.
_BITS16: List[Tuple[int, ...]] = [()] * 65536
for _m in range(1, 65536):
    _low = _m & -_m
    _BITS16[_m] = (_low.bit_length() - 1,) + _BITS16[_m ^ _low]
del _m, _low

# Parallel lookup tables for the draw loops: _LEN16[m] == len(_BITS16[m])
# (an index beats a len() call) and _POW2[i] == 1 << i (an index beats a
# shift).  Both measurably matter at 10^6+ operations per load sweep.
_LEN16: Tuple[int, ...] = tuple(len(_bits) for _bits in _BITS16)
_POW2: Tuple[int, ...] = tuple(1 << _i for _i in range(MAX_PORTS))

# Public aliases for external consumers (the fastpath engine builds its
# vectorized lookup arrays against these and cross-checks them in tests,
# so the scalar and stacked paths cannot drift apart silently).
BITS16 = _BITS16
LEN16 = _LEN16
POW2 = _POW2


def mask_of(ports: Iterable[int]) -> int:
    """Pack an iterable of port numbers into a bitmask."""
    mask = 0
    for port in ports:
        mask |= 1 << port
    return mask


# Offset variants of _BITS16 (positions shifted by 16/32/48), built
# lazily the first time a matcher wider than 16 ports is constructed;
# wide-mask enumeration then reduces to concatenating prebuilt tuples.
_BITS_OFFSET: dict = {}


def _offset_table(base: int) -> List[Tuple[int, ...]]:
    table = _BITS_OFFSET.get(base)
    if table is None:
        table = [
            tuple(bit + base for bit in bits) for bits in _BITS16
        ]
        _BITS_OFFSET[base] = table
    return table


def bits_of(mask: int) -> Tuple[int, ...]:
    """Set-bit positions of ``mask`` in ascending order (N <= 64)."""
    if mask < 65536:
        return _BITS16[mask]
    out = _BITS16[mask & 0xFFFF]
    mask >>= 16
    base = 16
    while mask:
        chunk = mask & 0xFFFF
        if chunk:
            out = out + _offset_table(base)[chunk]
        mask >>= 16
        base += 16
    return out


def iter_bits(mask: int) -> Iterator[int]:
    """Yield the set bit positions of ``mask`` in ascending order."""
    return iter(bits_of(mask))


def _as_masks(requests: RequestsLike, n_ports: int) -> List[int]:
    """Normalize request sets or masks to a list of validated masks."""
    if len(requests) != n_ports:
        raise ValueError(
            f"expected {n_ports} request sets, got {len(requests)}"
        )
    full = (1 << n_ports) - 1
    masks: List[int] = []
    for input_port, wanted in enumerate(requests):
        if isinstance(wanted, int):
            mask = wanted
            if mask < 0 or mask & ~full:
                raise ValueError(
                    f"input {input_port} mask {mask:#x} exceeds {n_ports} ports"
                )
        else:
            mask = 0
            for output_port in wanted:
                if not 0 <= output_port < n_ports:
                    raise ValueError(
                        f"input {input_port} requests bad output {output_port}"
                    )
                mask |= 1 << output_port
        masks.append(mask)
    return masks


def _pre_matched_masks(matching: Matching) -> Tuple[int, int]:
    """Input and output masks of an existing partial matching."""
    matched_inputs = 0
    matched_outputs = 0
    # det: allow(commutative OR-accumulation; item order cannot matter)
    for input_port, output_port in matching.items():
        bit = 1 << output_port
        if matched_outputs & bit:
            raise ValueError("pre_matched pairs share an output")
        matched_outputs |= bit
        matched_inputs |= 1 << input_port
    return matched_inputs, matched_outputs


def _transpose(masks: Sequence[int], n_ports: int) -> List[int]:
    """Per-output contender columns: bit ``i`` of ``cols[o]`` iff input
    ``i`` requests output ``o``."""
    cols = [0] * n_ports
    for input_port in range(n_ports):
        row = masks[input_port]
        if not row:
            continue
        input_bit = 1 << input_port
        for output_port in _BITS16[row] if row < 65536 else bits_of(row):
            cols[output_port] |= input_bit
    return cols


def _check_ports(n_ports: int) -> None:
    if n_ports <= 0:
        raise ValueError(f"n_ports must be positive, got {n_ports}")
    if n_ports > MAX_PORTS:
        raise ValueError(
            f"bitmask matcher supports at most {MAX_PORTS} ports, "
            f"got {n_ports}"
        )
    # Pay the offset-table build at construction, not inside the first
    # (possibly timed) match call.
    base = 16
    while base < n_ports:
        _offset_table(base)
        base += 16


class BitmaskPim:
    """Parallel iterative matching over port bitmasks.

    Drop-in for :class:`~repro.core.matching.pim.ParallelIterativeMatcher`:
    same constructor plus ``strict_rng``, same ``match`` contract, and --
    with ``strict_rng=True`` -- bit-identical output for the same seeded
    ``rng`` (the RNG draw sequence is preserved exactly).
    """

    name = "pim_bitmask"

    def __init__(
        self,
        n_ports: int,
        iterations: int = 3,
        rng: Optional[random.Random] = None,
        strict_rng: bool = False,
    ) -> None:
        _check_ports(n_ports)
        if iterations <= 0:
            raise ValueError(f"iterations must be positive, got {iterations}")
        self.n_ports = n_ports
        self.iterations = iterations
        self.rng = rng if rng is not None else random.Random(0)
        self.strict_rng = strict_rng

    # ------------------------------------------------------------------
    def match(
        self,
        requests: RequestsLike,
        pre_matched: Optional[Matching] = None,
    ) -> MatchResult:
        """Compute one slot's matching from request sets *or* masks."""
        return self.match_masks(
            _as_masks(requests, self.n_ports), pre_matched=pre_matched
        )

    def match_masks(
        self,
        masks: Sequence[int],
        pre_matched: Optional[Matching] = None,
        col_masks: Optional[Sequence[int]] = None,
        union: Optional[int] = None,
    ) -> MatchResult:
        """Fast path: ``masks[i]`` has bit ``o`` set iff input ``i`` has a
        cell for output ``o``.

        ``col_masks`` optionally supplies the transposed matrix (bit
        ``i`` of ``col_masks[o]`` iff input ``i`` has a cell for ``o``);
        extra bits for pre-matched inputs/outputs are ignored, which lets
        :class:`~repro.switch.fabric.VoqFabric` pass its incrementally
        maintained columns unfiltered.  ``union`` optionally supplies the
        OR of all ``masks`` (only valid when no input is pre-matched).
        Masks are read, never mutated.
        """
        n = self.n_ports
        if n <= 16 and not self.strict_rng:
            # All masks fit the 16-bit table: run the branch-free
            # specialization (AN2 itself is N = 16, so this is the case
            # every paper experiment hits).
            return self._match_masks16(masks, pre_matched, col_masks, union)
        full = (1 << n) - 1
        if pre_matched:
            matching: Matching = dict(pre_matched)
            matched_inputs, matched_outputs = _pre_matched_masks(matching)
            free_inputs = full & ~matched_inputs
            free_outputs = full & ~matched_outputs
        else:
            matching = {}
            matched_outputs = 0
            free_inputs = full
            free_outputs = full
        cols = col_masks if col_masks is not None else _transpose(masks, n)
        rng = self.rng
        rng_random = rng.random
        strict = self.strict_rng
        B = _BITS16  # local bindings for the hot loops
        P = _POW2

        iterations_to_maximal: Optional[int] = None
        new_per_iteration: List[int] = []

        # Requests still in play: outputs wanted by some unmatched input.
        if union is None:
            union = 0
            for input_port in (
                B[free_inputs]
                if free_inputs < 65536
                else bits_of(free_inputs)
            ):
                union |= masks[input_port]
        union &= free_outputs

        for iteration in range(1, self.iterations + 1):
            # Step 1+2: every contended free output grants one request.
            # The contender tuple from the table doubles as the draw
            # population: uniform pick = index by a scaled random float.
            grants = [0] * n
            granted = 0
            for output_port in B[union] if union < 65536 else bits_of(union):
                column = cols[output_port] & free_inputs
                blist = B[column] if column < 65536 else bits_of(column)
                if strict:
                    chosen = blist[rng.randrange(len(blist))]
                elif len(blist) == 1:
                    chosen = blist[0]
                else:
                    chosen = blist[int(rng_random() * len(blist))]
                grants[chosen] |= P[output_port]
                granted |= P[chosen]

            # Step 3: every granted input accepts one grant (every input
            # with at least one grant ends up matched, so the iteration
            # adds exactly ``popcount(granted)`` pairs and the free-input
            # mask can be updated wholesale afterwards).
            for input_port in (
                B[granted] if granted < 65536 else bits_of(granted)
            ):
                row = grants[input_port]
                blist = B[row] if row < 65536 else bits_of(row)
                if strict:
                    accepted = blist[rng.randrange(len(blist))]
                elif len(blist) == 1:
                    accepted = blist[0]
                else:
                    accepted = blist[int(rng_random() * len(blist))]
                matching[input_port] = accepted
                matched_outputs |= P[accepted]
            free_inputs &= ~granted
            new_per_iteration.append(granted.bit_count())

            free_outputs = full & ~matched_outputs
            if free_outputs:
                union = 0
                for input_port in (
                    B[free_inputs]
                    if free_inputs < 65536
                    else bits_of(free_inputs)
                ):
                    union |= masks[input_port]
                union &= free_outputs
            else:
                union = 0  # perfect match: nothing left to request
            if union == 0:
                # No unmatched input still wants an unmatched output.
                iterations_to_maximal = iteration
                break

        return MatchResult(
            matching=matching,
            iterations_run=len(new_per_iteration),
            iterations_to_maximal=iterations_to_maximal,
            new_matches_per_iteration=new_per_iteration,
        )

    def _match_masks16(
        self,
        masks: Sequence[int],
        pre_matched: Optional[Matching],
        col_masks: Optional[Sequence[int]],
        union: Optional[int] = None,
    ) -> MatchResult:
        """N <= 16 fast-RNG specialization of :meth:`match_masks`.

        Identical draw protocol and results to the general fast path;
        every mask fits the 16-bit table, so the chunked ``bits_of``
        fallback branches disappear from the three inner loops.
        """
        n = self.n_ports
        full = (1 << n) - 1
        if pre_matched:
            matching: Matching = dict(pre_matched)
            matched_inputs, matched_outputs = _pre_matched_masks(matching)
            free_inputs = full & ~matched_inputs
            free_outputs = full & ~matched_outputs
        else:
            matching = {}
            matched_outputs = 0
            free_inputs = full
            free_outputs = full
        cols = col_masks if col_masks is not None else _transpose(masks, n)
        rng_random = self.rng.random
        B = _BITS16
        L = _LEN16
        P = _POW2

        if union is None:
            union = 0
            for input_port in B[free_inputs]:
                union |= masks[input_port]
        union &= free_outputs
        # While every input is still free (always true in iteration 1
        # without reservations), a contender column needs no masking.
        all_free = free_inputs == full

        iterations_to_maximal: Optional[int] = None
        new_per_iteration: List[int] = []
        for iteration in range(1, self.iterations + 1):
            grants = [0] * n
            granted = 0
            if all_free:
                all_free = False
                for output_port in B[union]:
                    column = cols[output_port]
                    blist = B[column]
                    k = L[column]
                    chosen = (
                        blist[0] if k == 1 else blist[int(rng_random() * k)]
                    )
                    grants[chosen] |= P[output_port]
                    granted |= P[chosen]
            else:
                for output_port in B[union]:
                    column = cols[output_port] & free_inputs
                    blist = B[column]
                    k = L[column]
                    chosen = (
                        blist[0] if k == 1 else blist[int(rng_random() * k)]
                    )
                    grants[chosen] |= P[output_port]
                    granted |= P[chosen]

            for input_port in B[granted]:
                row = grants[input_port]
                blist = B[row]
                k = L[row]
                accepted = blist[0] if k == 1 else blist[int(rng_random() * k)]
                matching[input_port] = accepted
                matched_outputs |= P[accepted]
            free_inputs &= ~granted
            new_per_iteration.append(granted.bit_count())

            free_outputs = full & ~matched_outputs
            if free_outputs:
                union = 0
                for input_port in B[free_inputs]:
                    union |= masks[input_port]
                union &= free_outputs
            else:
                union = 0  # perfect match: nothing left to request
            if union == 0:
                iterations_to_maximal = iteration
                break

        return MatchResult(
            matching=matching,
            iterations_run=len(new_per_iteration),
            iterations_to_maximal=iterations_to_maximal,
            new_matches_per_iteration=new_per_iteration,
        )


class BitmaskIslip:
    """Round-robin (iSLIP) matching over port bitmasks.

    Exactly equivalent to :class:`~repro.core.matching.islip.IslipMatcher`
    (no randomness is involved): the rotating-pointer pick becomes "first
    set bit at or after the pointer, wrapping" -- one shift and a
    ``bit_length``.
    """

    name = "islip_bitmask"

    def __init__(self, n_ports: int, iterations: int = 3) -> None:
        _check_ports(n_ports)
        if iterations <= 0:
            raise ValueError(f"iterations must be positive, got {iterations}")
        self.n_ports = n_ports
        self.iterations = iterations
        self.grant_pointers: List[int] = [0] * n_ports  # per output
        self.accept_pointers: List[int] = [0] * n_ports  # per input

    def reset(self) -> None:
        self.grant_pointers = [0] * self.n_ports
        self.accept_pointers = [0] * self.n_ports

    @staticmethod
    def _rotate_pick(mask: int, pointer: int) -> int:
        """First set bit at or after ``pointer`` in circular port order."""
        upper = mask >> pointer
        if upper:
            return pointer + (upper & -upper).bit_length() - 1
        return (mask & -mask).bit_length() - 1

    def match(
        self,
        requests: RequestsLike,
        pre_matched: Optional[Matching] = None,
    ) -> MatchResult:
        return self.match_masks(
            _as_masks(requests, self.n_ports), pre_matched=pre_matched
        )

    def match_masks(
        self,
        masks: Sequence[int],
        pre_matched: Optional[Matching] = None,
        col_masks: Optional[Sequence[int]] = None,
        union: Optional[int] = None,
    ) -> MatchResult:
        n = self.n_ports
        matching: Matching = dict(pre_matched) if pre_matched else {}
        matched_inputs, matched_outputs = _pre_matched_masks(matching)
        full = (1 << n) - 1
        cols = col_masks if col_masks is not None else _transpose(masks, n)
        grant_pointers = self.grant_pointers
        accept_pointers = self.accept_pointers
        rotate_pick = self._rotate_pick

        free_inputs = full & ~matched_inputs
        free_outputs = full & ~matched_outputs
        new_per_iteration: List[int] = []
        iterations_to_maximal: Optional[int] = None

        if union is None:
            union = 0
            for input_port in (
                _BITS16[free_inputs]
                if free_inputs < 65536
                else bits_of(free_inputs)
            ):
                union |= masks[input_port]
        union &= free_outputs

        for iteration in range(1, self.iterations + 1):
            grants = [0] * n
            granted = 0
            for output_port in (
                _BITS16[union] if union < 65536 else bits_of(union)
            ):
                column = cols[output_port] & free_inputs
                chosen = rotate_pick(column, grant_pointers[output_port])
                grants[chosen] |= 1 << output_port
                granted |= 1 << chosen

            for input_port in (
                _BITS16[granted] if granted < 65536 else bits_of(granted)
            ):
                accepted = rotate_pick(
                    grants[input_port], accept_pointers[input_port]
                )
                matching[input_port] = accepted
                matched_outputs |= 1 << accepted
                if iteration == 1:
                    # Pointers move only on first-iteration accepts; this
                    # is the rule that guarantees 100% throughput for
                    # uniform traffic and prevents starvation.
                    grant_pointers[accepted] = (input_port + 1) % n
                    accept_pointers[input_port] = (accepted + 1) % n
            free_inputs &= ~granted
            new_per_iteration.append(granted.bit_count())

            free_outputs = full & ~matched_outputs
            union = 0
            for input_port in (
                _BITS16[free_inputs]
                if free_inputs < 65536
                else bits_of(free_inputs)
            ):
                union |= masks[input_port]
            union &= free_outputs
            if union == 0:
                iterations_to_maximal = iteration
                break

        return MatchResult(
            matching=matching,
            iterations_run=len(new_per_iteration),
            iterations_to_maximal=iterations_to_maximal,
            new_matches_per_iteration=new_per_iteration,
        )


class BitmaskFifoScheduler:
    """FIFO head-of-line contention over bitmasks.

    With ``strict_rng=True`` this is bit-identical to
    :class:`~repro.core.matching.fifo.FifoScheduler` for the same seeded
    ``rng``: the reference builds contender lists in ascending input
    order and draws ``randrange(len)``, which is exactly a
    ``randrange(bit_count)``-th set bit draw from the contender mask.
    """

    name = "fifo_bitmask"

    def __init__(
        self,
        n_ports: int,
        rng: Optional[random.Random] = None,
        strict_rng: bool = False,
    ) -> None:
        _check_ports(n_ports)
        self.n_ports = n_ports
        self.rng = rng if rng is not None else random.Random(0)
        self.strict_rng = strict_rng

    def match_heads(
        self,
        heads: Sequence[Optional[int]],
        pre_matched: Optional[Matching] = None,
    ) -> MatchResult:
        """Match given each input's head-of-line output (or ``None``)."""
        if len(heads) != self.n_ports:
            raise ValueError(
                f"expected {self.n_ports} head entries, got {len(heads)}"
            )
        matching: Matching = dict(pre_matched) if pre_matched else {}
        matched_inputs, taken_outputs = _pre_matched_masks(matching)
        contenders = [0] * self.n_ports
        contested = 0
        for input_port, output_port in enumerate(heads):
            if output_port is None or matched_inputs >> input_port & 1:
                continue
            if taken_outputs >> output_port & 1:
                continue
            contenders[output_port] |= 1 << input_port
            contested |= 1 << output_port
        added = 0
        rng = self.rng
        rng_random = rng.random
        strict = self.strict_rng
        for output_port in (
            _BITS16[contested] if contested < 65536 else bits_of(contested)
        ):
            column = contenders[output_port]
            count = column.bit_count()
            if strict:
                winner = bits_of(column)[rng.randrange(count)]
            elif count == 1:
                winner = column.bit_length() - 1
            else:
                winner = bits_of(column)[int(rng_random() * count)]
            matching[winner] = output_port
            added += 1
        return MatchResult(
            matching=matching,
            iterations_run=1,
            iterations_to_maximal=1,
            new_matches_per_iteration=[added],
        )
