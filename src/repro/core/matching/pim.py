"""Parallel iterative matching (PIM).

Section 3, verbatim structure:

1. Each unmatched input sends a request to *every* output for which it
   has a buffered cell.
2. If an unmatched output receives any requests, it chooses one
   *randomly* to grant.
3. If an input receives any grants, it chooses one to accept.

The three steps repeat, "retaining the matches made in previous
iterations"; iteration fills in the gaps.  Repeating until no more matches
form yields a *maximal* matching; the paper proves the expected number of
iterations to reach one is at most ``log2 N + 4/3`` and reports that
simulations find a maximal match within 4 iterations more than 98% of the
time.  AN2 hardware runs exactly 3 iterations because of the half-
microsecond slot budget.

This implementation mirrors the distributed structure: each step is
computed per-port from that port's local view (the requests/grants it
received), with the "dedicated wires" modelled by the request/grant/accept
dictionaries exchanged between iterations.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set

Matching = Dict[int, int]  # input port -> output port


@dataclass(slots=True)
class MatchResult:
    """Outcome of one slot's matching.

    Attributes:
        matching: input -> output pairs chosen this slot (including any
            pre-matched pairs passed in).
        iterations_run: how many request/grant/accept rounds executed.
        iterations_to_maximal: the first iteration index (1-based) after
            which the matching was maximal, or ``None`` if it never became
            maximal within ``iterations_run``.
        new_matches_per_iteration: matches added by each iteration.
    """

    matching: Matching
    iterations_run: int
    iterations_to_maximal: Optional[int]
    new_matches_per_iteration: List[int] = field(default_factory=list)

    @property
    def size(self) -> int:
        return len(self.matching)


class ParallelIterativeMatcher:
    """AN2's randomized crossbar scheduler.

    Args:
        n_ports: switch radix N (16 for AN2).
        iterations: rounds per slot (AN2 uses 3).
        rng: randomness source for the grant and accept choices.
    """

    name = "pim"

    def __init__(
        self,
        n_ports: int,
        iterations: int = 3,
        rng: Optional[random.Random] = None,
    ) -> None:
        if n_ports <= 0:
            raise ValueError(f"n_ports must be positive, got {n_ports}")
        if iterations <= 0:
            raise ValueError(f"iterations must be positive, got {iterations}")
        self.n_ports = n_ports
        self.iterations = iterations
        self.rng = rng if rng is not None else random.Random(0)

    def match(
        self,
        requests: Sequence[Set[int]],
        pre_matched: Optional[Matching] = None,
    ) -> MatchResult:
        """Compute one slot's matching.

        Args:
            requests: ``requests[i]`` is the set of outputs input ``i`` has
                buffered cells for (its non-empty virtual-circuit queues).
            pre_matched: input -> output pairs already committed this slot
                (guaranteed-traffic reservations); PIM only fills the
                remaining inputs and outputs, which is how best-effort
                traffic rides the unreserved slots (section 4).
        """
        self._validate(requests)
        matching: Matching = dict(pre_matched) if pre_matched else {}
        matched_outputs: Set[int] = set(matching.values())
        if len(matched_outputs) != len(matching):
            raise ValueError("pre_matched pairs share an output")
        iterations_to_maximal: Optional[int] = None
        new_per_iteration: List[int] = []

        for iteration in range(1, self.iterations + 1):
            added = self._iterate(requests, matching, matched_outputs)
            new_per_iteration.append(added)
            if iterations_to_maximal is None and self._is_maximal(
                requests, matching, matched_outputs
            ):
                iterations_to_maximal = iteration
                # Later iterations cannot add matches once maximal; stop.
                break

        return MatchResult(
            matching=matching,
            iterations_run=len(new_per_iteration),
            iterations_to_maximal=iterations_to_maximal,
            new_matches_per_iteration=new_per_iteration,
        )

    # ------------------------------------------------------------------
    def _iterate(
        self,
        requests: Sequence[Set[int]],
        matching: Matching,
        matched_outputs: Set[int],
    ) -> int:
        """One request/grant/accept round.  Mutates ``matching`` in place."""
        # Step 1: each unmatched input requests every output it has cells
        # for.  We record, per output, who asked.
        requests_at_output: Dict[int, List[int]] = {}
        for input_port, wanted in enumerate(requests):
            if input_port in matching:
                continue
            for output_port in wanted:
                requests_at_output.setdefault(output_port, []).append(input_port)

        # Step 2: each unmatched output grants one request at random.
        #
        # Determinism contract: outputs are visited in ascending port
        # order (and inputs likewise in step 3), so a fixed-seed run
        # consumes RNG draws in a reproducible sequence.  The hardware
        # ports all decide simultaneously, so any visiting order is
        # faithful -- but tests, benchmarks, and the bitmask fast path
        # (:mod:`repro.core.matching.bitmask`, which iterates its masks
        # ascending and is bit-identical to this implementation for a
        # shared seed) rely on this exact order.  Do not change it.
        grants_at_input: Dict[int, List[int]] = {}
        for output_port in sorted(requests_at_output):
            if output_port in matched_outputs:
                continue
            contenders = requests_at_output[output_port]
            chosen = contenders[self.rng.randrange(len(contenders))]
            grants_at_input.setdefault(chosen, []).append(output_port)

        # Step 3: each input with grants accepts one at random, inputs
        # ascending (same determinism contract as step 2).
        added = 0
        for input_port in sorted(grants_at_input):
            grants = grants_at_input[input_port]
            accepted = grants[self.rng.randrange(len(grants))]
            matching[input_port] = accepted
            matched_outputs.add(accepted)
            added += 1
        return added

    def _is_maximal(
        self,
        requests: Sequence[Set[int]],
        matching: Matching,
        matched_outputs: Set[int],
    ) -> bool:
        """No unmatched input still has a cell for an unmatched output."""
        for input_port, wanted in enumerate(requests):
            if input_port in matching:
                continue
            for output_port in wanted:
                if output_port not in matched_outputs:
                    return False
        return True

    def _validate(self, requests: Sequence[Set[int]]) -> None:
        if len(requests) != self.n_ports:
            raise ValueError(
                f"expected {self.n_ports} request sets, got {len(requests)}"
            )
        for input_port, wanted in enumerate(requests):
            for output_port in wanted:
                if not 0 <= output_port < self.n_ports:
                    raise ValueError(
                        f"input {input_port} requests bad output {output_port}"
                    )
