"""iSLIP-style round-robin matching -- an engineering ablation.

The paper argues that "the randomness in parallel iterative matching
protects against starvation".  A later line of work (McKeown's iSLIP)
replaces the random grant/accept choices with rotating round-robin
pointers, achieving the same starvation freedom deterministically and
desynchronizing the pointers under load.  We include it as an ablation so
the E2/E11 benchmarks can compare the two choice rules inside the same
iterate-to-fill-gaps framework.

Pointer discipline (standard iSLIP): grant and accept pointers advance to
one past the chosen port, and only when the grant was accepted in the
*first* iteration of a slot.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set

from repro.core.matching.pim import MatchResult, Matching


class IslipMatcher:
    """Round-robin request/grant/accept with pointer desynchronization."""

    name = "islip"

    def __init__(self, n_ports: int, iterations: int = 3) -> None:
        if n_ports <= 0:
            raise ValueError(f"n_ports must be positive, got {n_ports}")
        if iterations <= 0:
            raise ValueError(f"iterations must be positive, got {iterations}")
        self.n_ports = n_ports
        self.iterations = iterations
        self.grant_pointers: List[int] = [0] * n_ports  # per output
        self.accept_pointers: List[int] = [0] * n_ports  # per input

    def reset(self) -> None:
        self.grant_pointers = [0] * self.n_ports
        self.accept_pointers = [0] * self.n_ports

    def _rotate_pick(self, candidates: Sequence[int], pointer: int) -> int:
        """First candidate at or after ``pointer`` in circular port order."""
        best = min(candidates, key=lambda c: (c - pointer) % self.n_ports)
        return best

    def match(
        self,
        requests: Sequence[Set[int]],
        pre_matched: Optional[Matching] = None,
    ) -> MatchResult:
        if len(requests) != self.n_ports:
            raise ValueError(
                f"expected {self.n_ports} request sets, got {len(requests)}"
            )
        matching: Matching = dict(pre_matched) if pre_matched else {}
        matched_outputs: Set[int] = set(matching.values())
        new_per_iteration: List[int] = []
        iterations_to_maximal: Optional[int] = None

        for iteration in range(1, self.iterations + 1):
            requests_at_output: Dict[int, List[int]] = {}
            for input_port, wanted in enumerate(requests):
                if input_port in matching:
                    continue
                for output_port in wanted:
                    if output_port not in matched_outputs:
                        requests_at_output.setdefault(output_port, []).append(
                            input_port
                        )
            # Outputs grant (and inputs accept, below) in ascending port
            # order.  Each decision touches only that port's own pointer
            # slot, so the order is behavior-neutral -- but the insertion
            # order of these dicts descends from iterating the request
            # *sets* above, and sorting here keeps the visit order (and
            # the bitmask fast path's ascending-bit order) independent of
            # it.
            grants_at_input: Dict[int, List[int]] = {}
            for output_port in sorted(requests_at_output):
                contenders = requests_at_output[output_port]
                chosen = self._rotate_pick(
                    contenders, self.grant_pointers[output_port]
                )
                grants_at_input.setdefault(chosen, []).append(output_port)
            added = 0
            for input_port in sorted(grants_at_input):
                grants = grants_at_input[input_port]
                accepted = self._rotate_pick(
                    grants, self.accept_pointers[input_port]
                )  # grants list order is irrelevant to the rotating pick
                matching[input_port] = accepted
                matched_outputs.add(accepted)
                added += 1
                if iteration == 1:
                    # Pointers move only on first-iteration accepts; this is
                    # the rule that guarantees 100% throughput for uniform
                    # traffic and prevents starvation.
                    self.grant_pointers[accepted] = (
                        input_port + 1
                    ) % self.n_ports
                    self.accept_pointers[input_port] = (
                        accepted + 1
                    ) % self.n_ports
            new_per_iteration.append(added)
            if iterations_to_maximal is None and self._is_maximal(
                requests, matching, matched_outputs
            ):
                iterations_to_maximal = iteration
                break

        return MatchResult(
            matching=matching,
            iterations_run=len(new_per_iteration),
            iterations_to_maximal=iterations_to_maximal,
            new_matches_per_iteration=new_per_iteration,
        )

    def _is_maximal(
        self,
        requests: Sequence[Set[int]],
        matching: Matching,
        matched_outputs: Set[int],
    ) -> bool:
        for input_port, wanted in enumerate(requests):
            if input_port in matching:
                continue
            for output_port in wanted:
                if output_port not in matched_outputs:
                    return False
        return True
