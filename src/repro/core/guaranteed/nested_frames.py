"""Nested frames: fine-grained allocation with tight jitter.

Section 4: "One area to be explored is greater flexibility in frame size.
Large frames are attractive because they provide a fine-grained
allocation unit, but small frames yield better latency and jitter bounds.
Nested frames could provide the benefits of both.  For example,
allocation could be based on 1024-slot frames, with cell re-ordering
restricted to 128-slot units.  Such a change would require a more
sophisticated algorithm for building frame schedules."

A :class:`NestedFrameSchedule` allocates in cells per *outer* frame (1024
slots) but builds an independent Slepian-Duguid schedule per *subframe*
(128 slots), splitting each reservation as evenly as possible across the
subframes.  Cells then never wait longer than ~2 subframe times per
switch instead of ~2 frame times, while the allocation granularity stays
1/1024 of the link.

The cost is admissibility: a demand matrix is nested-schedulable only if
its per-subframe *shares* fit, and the even split rounds each reservation
up to at least one slot per subframe it touches -- so many tiny
reservations can exhaust a subframe that the flat frame would have
admitted (ceil(k/subframes) summed over a row can exceed the subframe
size even when the row sum fits the outer frame).  :meth:`admits` checks
the real per-subframe constraint before any state changes; this loss of
admission region is part of what makes the paper call for "a more
sophisticated algorithm for building frame schedules".
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.constants import FRAME_SLOTS, NESTED_FRAME_SLOTS
from repro.core.guaranteed.frames import FrameSchedule, ScheduleError
from repro.core.guaranteed.slepian_duguid import insert_cell, remove_cell


class NestedFrameSchedule:
    """An outer frame of evenly-loaded Slepian-Duguid subframes."""

    def __init__(
        self,
        n_ports: int,
        frame_slots: int = FRAME_SLOTS,
        subframe_slots: int = NESTED_FRAME_SLOTS,
    ) -> None:
        if frame_slots % subframe_slots != 0:
            raise ValueError(
                f"subframe ({subframe_slots}) must divide frame "
                f"({frame_slots})"
            )
        self.n_ports = n_ports
        self.frame_slots = frame_slots
        self.subframe_slots = subframe_slots
        self.n_subframes = frame_slots // subframe_slots
        self.subframes: List[FrameSchedule] = [
            FrameSchedule(n_ports, subframe_slots)
            for _ in range(self.n_subframes)
        ]
        #: reservation ledger: (input, output) -> cells per outer frame.
        self._reservations: Dict[Tuple[int, int], int] = {}

    # ------------------------------------------------------------------
    def _shares(self, cells: int) -> List[int]:
        """Split ``cells`` across subframes as evenly as possible."""
        base, extra = divmod(cells, self.n_subframes)
        return [
            base + (1 if index < extra else 0)
            for index in range(self.n_subframes)
        ]

    def admits(self, input_port: int, output_port: int, cells: int) -> bool:
        shares = self._shares(cells)
        return all(
            share == 0 or subframe.admits(input_port, output_port, share)
            for share, subframe in zip(shares, self.subframes)
        )

    def reserve(self, input_port: int, output_port: int, cells: int) -> int:
        """Add a reservation; returns total displacement moves."""
        if cells <= 0:
            raise ValueError(f"cells must be positive, got {cells}")
        if not self.admits(input_port, output_port, cells):
            raise ScheduleError(
                f"nested schedule cannot admit {input_port}->{output_port} "
                f"x{cells}"
            )
        moves = 0
        for share, subframe in zip(self._shares(cells), self.subframes):
            for _ in range(share):
                trace = insert_cell(subframe, input_port, output_port)
                moves += trace.displacements
        key = (input_port, output_port)
        self._reservations[key] = self._reservations.get(key, 0) + cells
        return moves

    def release(self, input_port: int, output_port: int, cells: int) -> None:
        key = (input_port, output_port)
        if self._reservations.get(key, 0) < cells:
            raise ScheduleError(f"releasing more than reserved on {key}")
        for share, subframe in zip(self._shares(cells), self.subframes):
            for _ in range(share):
                remove_cell(subframe, input_port, output_port)
        self._reservations[key] -= cells
        if self._reservations[key] == 0:
            del self._reservations[key]

    # ------------------------------------------------------------------
    def slot_assignments(self, slot: int) -> Dict[int, int]:
        """The (input -> output) reservations of an outer-frame slot."""
        if not 0 <= slot < self.frame_slots:
            raise ValueError(f"slot {slot} out of range")
        subframe_index, offset = divmod(slot, self.subframe_slots)
        return self.subframes[subframe_index].slot_assignments(offset)

    def total_reserved(self) -> int:
        return sum(self._reservations.values())

    def max_gap_slots(self, input_port: int, output_port: int) -> int:
        """Largest gap (in slots) between consecutive service slots of a
        reservation over one cyclic outer frame -- the jitter metric the
        nested-frame ablation reports."""
        slots = [
            slot
            for slot in range(self.frame_slots)
            if self.slot_assignments(slot).get(input_port) == output_port
        ]
        if not slots:
            raise ScheduleError(
                f"no reservation {input_port}->{output_port}"
            )
        if len(slots) == 1:
            return self.frame_slots
        gaps = [
            slots[i + 1] - slots[i] for i in range(len(slots) - 1)
        ]
        gaps.append(self.frame_slots - slots[-1] + slots[0])
        return max(gaps)

    def check_consistent(self) -> None:
        for subframe in self.subframes:
            subframe.check_consistent()
        totals: Dict[Tuple[int, int], int] = {}
        for subframe in self.subframes:
            for _, input_port, output_port in subframe.reserved_pairs():
                key = (input_port, output_port)
                totals[key] = totals.get(key, 0) + 1
        if totals != self._reservations:
            raise ScheduleError("reservation ledger out of sync")
