"""Latency and buffer bounds for guaranteed traffic.

Section 4's analytical results:

- buffer requirement per line card: **2 frames** of cells in a globally
  synchronized network, and about **4 frames** in an asynchronous network
  like AN2 ("for a typical local area installation, four frames worth of
  buffers are sufficient"),
- end-to-end delay bound: "the time for a guaranteed cell to reach its
  destination is at most ``p * (2f + l)``, where p is the path length, f
  is the frame time, and l is the maximum link latency",
- per-switch latency/jitter under 1 ms for sub-half-millisecond frames.

The E8 benchmark drives CBR streams through simulated multi-switch paths
(with and without clock drift) and checks measured maxima against these
functions.
"""

from __future__ import annotations

from repro.constants import FAST_CELL_TIME_US, FRAME_SLOTS


def frame_time_us(
    frame_slots: int = FRAME_SLOTS, cell_time_us: float = FAST_CELL_TIME_US
) -> float:
    """Duration of one frame on a link with the given cell time."""
    if frame_slots <= 0:
        raise ValueError(f"frame_slots must be positive, got {frame_slots}")
    return frame_slots * cell_time_us


def guaranteed_latency_bound_us(
    path_length: int,
    frame_time: float,
    max_link_latency_us: float,
) -> float:
    """The paper's ``p * (2f + l)`` end-to-end delay bound.

    ``path_length`` counts switches traversed.  Holds for synchronous and
    asynchronous networks (the asynchronous derivation rests on the fact
    that "a cell delayed for a long time in one switch cannot be very much
    delayed in later switches").
    """
    if path_length < 0:
        raise ValueError(f"negative path length {path_length}")
    return path_length * (2.0 * frame_time + max_link_latency_us)


def per_switch_jitter_bound_us(frame_time: float) -> float:
    """"The latency and jitter of a guaranteed cell is less than 1
    millisecond per switch" -- the bound is two frame times per switch."""
    return 2.0 * frame_time


def buffer_requirement_cells(
    frame_slots: int = FRAME_SLOTS, synchronous: bool = False
) -> int:
    """Guaranteed-traffic buffers needed per line card, in cells.

    Synchronous network: twice the frame size ("Buffers for a single
    frame are not enough, because neither the frame boundaries nor the
    transmission order is the same at both switches, and because the
    switches can rearrange their schedules from one frame to the next").

    Asynchronous network (AN2): depends on diameter, latency, and clock
    variation; "for a typical local area installation, four frames worth
    of buffers are sufficient".
    """
    if frame_slots <= 0:
        raise ValueError(f"frame_slots must be positive, got {frame_slots}")
    return (2 if synchronous else 4) * frame_slots
