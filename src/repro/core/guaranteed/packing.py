"""Frame-schedule shaping for best-effort friendliness.

Section 4: "Best-effort cells can only be transmitted in slots where
neither their input nor their output is busy with reserved traffic.  Such
slots will be more frequent if reserved traffic is packed into a small
number of slots, leaving other slots completely free for best-effort
traffic.  Best-effort cells will also fare better if the unreserved slots
are distributed throughout the frame rather than grouped at one point.
Finding the best way to arrange the frame schedule is a matter for
further study."

Three arrangement policies:

- ``first_fit``: plain incremental Slepian-Duguid insertion (the
  baseline; reservations land wherever the chain puts them),
- ``packed``: fill slots front-to-back with *maximum* matchings of the
  remaining demand, minimising the number of slots touched by reserved
  traffic,
- ``packed_spread``: the packed schedule with its used slots re-spaced
  evenly across the frame (both of the paper's desiderata at once).

The E12 benchmark drives identical guaranteed + best-effort traffic over
all three and reports best-effort latency/throughput.
"""

from __future__ import annotations

from typing import List

from repro.core.guaranteed.frames import FrameSchedule, ScheduleError
from repro.core.guaranteed.slepian_duguid import build_schedule
from repro.core.matching.maximum import hopcroft_karp

Demand = List[List[int]]


def _check_demand(n_ports: int, n_slots: int, demand: Demand) -> None:
    if len(demand) != n_ports or any(len(row) != n_ports for row in demand):
        raise ValueError(f"demand must be {n_ports}x{n_ports}")
    for i in range(n_ports):
        if sum(demand[i]) > n_slots:
            raise ScheduleError(f"input {i} over-committed")
    for o in range(n_ports):
        if sum(demand[i][o] for i in range(n_ports)) > n_slots:
            raise ScheduleError(f"output {o} over-committed")


def first_fit_schedule(
    n_ports: int, n_slots: int, demand: Demand
) -> FrameSchedule:
    """Incremental Slepian-Duguid insertion in row-major demand order."""
    _check_demand(n_ports, n_slots, demand)
    schedule, _ = build_schedule(n_ports, n_slots, demand)
    return schedule


def max_line_load(demand: Demand) -> int:
    """The largest row or column sum: the optimal packed slot count."""
    n = len(demand)
    rows = [sum(demand[i]) for i in range(n)]
    cols = [sum(demand[i][o] for i in range(n)) for o in range(n)]
    return max(rows + cols) if n else 0


def packed_schedule(
    n_ports: int, n_slots: int, demand: Demand
) -> FrameSchedule:
    """Pack reservations into the *minimum* number of slots.

    The minimum is ``L = max(row/col sum)`` (Konig's edge-colouring
    theorem; also the heart of Slepian-Duguid).  Greedy maximum matchings
    alone do not achieve it, so we use the classic regularization trick:
    pad the demand with *filler* units until every row and column sums to
    exactly L.  The padded demand is an L-regular bipartite multigraph, so
    each of L rounds of Hopcroft-Karp finds a perfect matching; placing
    only the real (non-filler) edges of each round into one slot colours
    all real demand with exactly L slots.
    """
    _check_demand(n_ports, n_slots, demand)
    load = max_line_load(demand)
    if load == 0:
        return FrameSchedule(n_ports, n_slots)
    if load > n_slots:
        raise ScheduleError(f"demand needs {load} slots, frame has {n_slots}")
    real = [row[:] for row in demand]
    filler = [[0] * n_ports for _ in range(n_ports)]
    rows = [sum(real[i]) for i in range(n_ports)]
    cols = [sum(real[i][o] for i in range(n_ports)) for o in range(n_ports)]
    for i in range(n_ports):
        while rows[i] < load:
            for o in range(n_ports):
                if cols[o] < load:
                    amount = min(load - rows[i], load - cols[o])
                    filler[i][o] += amount
                    rows[i] += amount
                    cols[o] += amount
                    break
            else:  # pragma: no cover - deficits always balance
                raise ScheduleError("regularization failed")

    schedule = FrameSchedule(n_ports, n_slots)
    for slot in range(load):
        requests = [
            {
                o
                for o in range(n_ports)
                if real[i][o] > 0 or filler[i][o] > 0
            }
            for i in range(n_ports)
        ]
        matching = hopcroft_karp(n_ports, requests)
        if len(matching) != n_ports:  # pragma: no cover - regular graph
            raise ScheduleError("no perfect matching in regular padding")
        for input_port, output_port in matching.items():
            if real[input_port][output_port] > 0:
                real[input_port][output_port] -= 1
                schedule.place(slot, input_port, output_port)
            else:
                filler[input_port][output_port] -= 1
    return schedule


def spread_schedule(schedule: FrameSchedule) -> FrameSchedule:
    """Re-space a schedule's used slots evenly across the frame.

    Keeps each slot's matching intact (so the crossbar constraint is
    untouched) but moves slot k of the used ones to position
    ``round(k * n_slots / used)``.
    """
    used_slots = [
        slot
        for slot in range(schedule.n_slots)
        if schedule.slot_assignments(slot)
    ]
    spread = FrameSchedule(schedule.n_ports, schedule.n_slots)
    used = len(used_slots)
    if used == 0:
        return spread
    for index, slot in enumerate(used_slots):
        target = min(
            schedule.n_slots - 1, (index * schedule.n_slots) // used
        )
        for input_port, output_port in schedule.slot_assignments(slot).items():
            spread.place(target, input_port, output_port)
    return spread


def packed_spread_schedule(
    n_ports: int, n_slots: int, demand: Demand
) -> FrameSchedule:
    """Packed, then spread: the paper's two desiderata combined."""
    return spread_schedule(packed_schedule(n_ports, n_slots, demand))


def completely_free_fraction(schedule: FrameSchedule) -> float:
    """Fraction of slots with *no* reservation at all -- "slots completely
    free for best-effort traffic" in the paper's words.  Packing maximizes
    this by construction (it minimizes slots touched)."""
    return (schedule.n_slots - schedule.slots_used()) / schedule.n_slots


def free_pair_fraction(schedule: FrameSchedule) -> float:
    """Average fraction of (input, output) pairs free per slot -- a proxy
    for best-effort opportunity under the schedule."""
    total = 0.0
    for slot in range(schedule.n_slots):
        assignments = schedule.slot_assignments(slot)
        free_inputs = schedule.n_ports - len(assignments)
        free_outputs = schedule.n_ports - len(assignments)
        total += (free_inputs * free_outputs) / (
            schedule.n_ports * schedule.n_ports
        )
    return total / schedule.n_slots


def make_policy_schedule(
    policy: str, n_ports: int, n_slots: int, demand: Demand
) -> FrameSchedule:
    """Dispatch by policy name ("first_fit", "packed", "packed_spread")."""
    if policy == "first_fit":
        return first_fit_schedule(n_ports, n_slots, demand)
    if policy == "packed":
        return packed_schedule(n_ports, n_slots, demand)
    if policy == "packed_spread":
        return packed_spread_schedule(n_ports, n_slots, demand)
    raise ValueError(f"unknown packing policy {policy!r}")
