"""Incremental schedule insertion via the Slepian-Duguid construction.

Section 4: "the Slepian-Duguid theorem implies that a schedule can be
found for any set of reservations that does not over-commit the bandwidth
of any link.  Moreover, the proof of the theorem provides an algorithm for
adding a cell to an existing schedule; the time required is linear in the
size of the switch and independent of frame size."

The algorithm, as the paper states it: to add a reservation from input P
to output Q, place it in a slot where both are free if one exists.
Otherwise there is a slot ``p`` where P is free and a slot ``q`` where Q
is free; add P->Q to ``p``, displacing the connection R->Q that conflicts
there into slot ``q``, whose own conflict (if any) moves back to ``p``,
and so on until no conflict remains -- at most N steps for an NxN switch,
so adding a k-cell reservation takes at most N*k steps.

Figure 3's worked example (adding 4->3 to the Figure 2 schedule) is
reproduced verbatim by ``tests/core/guaranteed/test_slepian_duguid.py``
and the E7 benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.core.guaranteed.frames import FrameSchedule, ScheduleError

#: (from_slot, to_slot, input, output) -- one displaced reservation.
Move = Tuple[int, int, int, int]


@dataclass
class InsertionTrace:
    """What one cell's insertion did to the schedule.

    Attributes:
        input_port / output_port: the reservation added.
        placed_slot: the slot the new connection ended up in.
        moves: existing reservations displaced, in order.
        displacements: ``len(moves)``.
        steps: steps in the paper's Figure-3 counting -- the initial
            placement is step 1, and each subsequent *swap* (a pair of
            displacements between slots p and q, or a final unpaired
            displacement) is one more step.  Bounded by N (see E7).
    """

    input_port: int
    output_port: int
    placed_slot: int
    moves: List[Move] = field(default_factory=list)

    @property
    def displacements(self) -> int:
        return len(self.moves)

    @property
    def steps(self) -> int:
        return 1 + (len(self.moves) + 1) // 2


def insert_cell(
    schedule: FrameSchedule, input_port: int, output_port: int
) -> InsertionTrace:
    """Add a one-cell/frame reservation input_port -> output_port.

    Raises :class:`ScheduleError` if the reservation would over-commit the
    input or output link -- the check bandwidth central performs before
    ever asking a switch to revise its schedule.
    """
    if not schedule.admits(input_port, output_port):
        raise ScheduleError(
            f"reservation {input_port}->{output_port} would over-commit a link"
        )
    free = schedule.find_free_slot(input_port, output_port)
    if free is not None:
        schedule.place(free, input_port, output_port)
        return InsertionTrace(input_port, output_port, free)

    slot_p = schedule.find_input_free_slot(input_port)
    slot_q = schedule.find_output_free_slot(output_port)
    # Both exist because the reservation does not over-commit either link,
    # and they differ because no slot has both free.
    assert slot_p is not None and slot_q is not None and slot_p != slot_q

    moves: List[Move] = []
    # The connection currently holding output Q in slot p must be evicted
    # to make room for the new reservation.
    evicted_input = schedule.input_of(slot_p, output_port)
    assert evicted_input is not None
    schedule.clear(slot_p, evicted_input)
    schedule.place(slot_p, input_port, output_port)

    # Re-home the evicted connection, ping-ponging between q and p.
    pending: Optional[Tuple[int, int]] = (evicted_input, output_port)
    dest, other = slot_q, slot_p
    safety = 4 * schedule.n_ports + 4
    while pending is not None:
        if safety == 0:  # pragma: no cover - the theorem forbids this
            raise RuntimeError("Slepian-Duguid chain failed to terminate")
        safety -= 1
        move_input, move_output = pending
        conflict_output = schedule.output_of(dest, move_input)
        conflict_input = schedule.input_of(dest, move_output)
        # The chain construction guarantees at most one kind of conflict:
        # moving into q conflicts only on the input, into p only on the
        # output (the other side was vacated by the previous move).
        if conflict_output is not None:
            schedule.clear(dest, move_input)
            next_pending: Optional[Tuple[int, int]] = (
                move_input,
                conflict_output,
            )
        elif conflict_input is not None:
            schedule.clear(dest, conflict_input)
            next_pending = (conflict_input, move_output)
        else:
            next_pending = None
        schedule.place(dest, move_input, move_output)
        source = other  # the slot this connection was displaced from
        moves.append((source, dest, move_input, move_output))
        pending = next_pending
        dest, other = other, dest

    return InsertionTrace(input_port, output_port, slot_p, moves)


def insert_reservation(
    schedule: FrameSchedule, input_port: int, output_port: int, cells: int
) -> List[InsertionTrace]:
    """Add a ``cells``-per-frame reservation, one cell at a time.

    "Adding a reservation for k cells takes at most N x k steps."
    """
    if cells <= 0:
        raise ValueError(f"cells must be positive, got {cells}")
    if not schedule.admits(input_port, output_port, cells):
        raise ScheduleError(
            f"reservation {input_port}->{output_port} x{cells} would "
            "over-commit a link"
        )
    return [
        insert_cell(schedule, input_port, output_port) for _ in range(cells)
    ]


def remove_cell(
    schedule: FrameSchedule, input_port: int, output_port: int
) -> int:
    """Release one cell/frame of the reservation; returns its former slot.

    Used by circuit teardown and by the page-out extension (section 2).
    """
    for slot in range(schedule.n_slots):
        if schedule.output_of(slot, input_port) == output_port:
            schedule.clear(slot, input_port)
            return slot
    raise ScheduleError(
        f"no reservation {input_port}->{output_port} to remove"
    )


def build_schedule(
    n_ports: int,
    n_slots: int,
    demand: List[List[int]],
) -> Tuple[FrameSchedule, int]:
    """Construct a schedule for a whole demand matrix from scratch.

    ``demand[i][o]`` is cells/frame from input ``i`` to output ``o``.  Any
    matrix whose row and column sums are all <= ``n_slots`` is admissible
    (the Slepian-Duguid theorem); this builds it incrementally and returns
    the schedule plus the total number of displacement moves performed.
    """
    schedule = FrameSchedule(n_ports, n_slots)
    total_moves = 0
    for input_port in range(n_ports):
        for output_port in range(n_ports):
            cells = demand[input_port][output_port]
            if cells:
                traces = insert_reservation(
                    schedule, input_port, output_port, cells
                )
                total_moves += sum(t.displacements for t in traces)
    return schedule, total_moves
