"""Frame schedules for guaranteed traffic.

"Bandwidth reservations are based on frames of 1024 cell slots...  the
switch creates a schedule for moving guaranteed traffic across the
crossbar, giving the required bandwidth to each virtual circuit"
(section 4).  A :class:`FrameSchedule` records, "for each slot and each
input, what output (if any) receives a cell from that input in that slot"
(Figure 2).

Invariants maintained at all times:

- in any slot, each input transmits to at most one output and each output
  receives from at most one input (the crossbar constraint),
- per-input and per-output totals never exceed the frame size (no link
  over-commitment).

Insertion that *preserves feasibility for any admissible demand* is the
job of :mod:`repro.core.guaranteed.slepian_duguid`; this module provides
the schedule data structure, its invariant checks, and direct placement
primitives.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from repro.constants import FRAME_SLOTS


class ScheduleError(Exception):
    """Violation of the crossbar or capacity constraints."""


class FrameSchedule:
    """A frame's worth of reserved crossbar connections."""

    def __init__(self, n_ports: int, n_slots: int = FRAME_SLOTS) -> None:
        if n_ports <= 0:
            raise ValueError(f"n_ports must be positive, got {n_ports}")
        if n_slots <= 0:
            raise ValueError(f"n_slots must be positive, got {n_slots}")
        self.n_ports = n_ports
        self.n_slots = n_slots
        # Per slot: input -> output and output -> input.
        self._by_input: List[Dict[int, int]] = [{} for _ in range(n_slots)]
        self._by_output: List[Dict[int, int]] = [{} for _ in range(n_slots)]
        # Totals for admission checks: reservations per input / output.
        self._input_total: List[int] = [0] * n_ports
        self._output_total: List[int] = [0] * n_ports

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def slot_assignments(self, slot: int) -> Dict[int, int]:
        """input -> output map for ``slot`` (a copy)."""
        return dict(self._by_input[slot])

    def output_of(self, slot: int, input_port: int) -> Optional[int]:
        return self._by_input[slot].get(input_port)

    def input_of(self, slot: int, output_port: int) -> Optional[int]:
        return self._by_output[slot].get(output_port)

    def input_free(self, slot: int, input_port: int) -> bool:
        return input_port not in self._by_input[slot]

    def output_free(self, slot: int, output_port: int) -> bool:
        return output_port not in self._by_output[slot]

    def input_load(self, input_port: int) -> int:
        """Reserved cells per frame leaving ``input_port``."""
        return self._input_total[input_port]

    def output_load(self, output_port: int) -> int:
        """Reserved cells per frame arriving at ``output_port``."""
        return self._output_total[output_port]

    def reservation_matrix(self) -> List[List[int]]:
        """R[i][o] = reserved cells/frame from input i to output o."""
        matrix = [[0] * self.n_ports for _ in range(self.n_ports)]
        for assignments in self._by_input:
            for input_port, output_port in assignments.items():
                matrix[input_port][output_port] += 1
        return matrix

    def reserved_pairs(self) -> Iterator[Tuple[int, int, int]]:
        """Yields (slot, input, output) for every reserved connection."""
        for slot, assignments in enumerate(self._by_input):
            for input_port, output_port in sorted(assignments.items()):
                yield (slot, input_port, output_port)

    def total_reserved(self) -> int:
        return sum(self._input_total)

    def slots_used(self) -> int:
        """Number of slots with at least one reservation."""
        return sum(1 for assignments in self._by_input if assignments)

    def admits(self, input_port: int, output_port: int, cells: int = 1) -> bool:
        """Would adding ``cells`` reservations over-commit either link?"""
        return (
            self._input_total[input_port] + cells <= self.n_slots
            and self._output_total[output_port] + cells <= self.n_slots
        )

    # ------------------------------------------------------------------
    # placement primitives
    # ------------------------------------------------------------------
    def place(self, slot: int, input_port: int, output_port: int) -> None:
        """Reserve (input -> output) in ``slot``; both must be free."""
        self._check_ports(input_port, output_port)
        if not 0 <= slot < self.n_slots:
            raise ScheduleError(f"slot {slot} out of range")
        if input_port in self._by_input[slot]:
            raise ScheduleError(
                f"slot {slot}: input {input_port} already transmits to "
                f"{self._by_input[slot][input_port]}"
            )
        if output_port in self._by_output[slot]:
            raise ScheduleError(
                f"slot {slot}: output {output_port} already receives from "
                f"{self._by_output[slot][output_port]}"
            )
        self._by_input[slot][input_port] = output_port
        self._by_output[slot][output_port] = input_port
        self._input_total[input_port] += 1
        self._output_total[output_port] += 1

    def clear(self, slot: int, input_port: int) -> Tuple[int, int]:
        """Remove the reservation of ``input_port`` in ``slot``.

        Returns the removed (input, output) pair.
        """
        assignments = self._by_input[slot]
        if input_port not in assignments:
            raise ScheduleError(f"slot {slot}: input {input_port} is free")
        output_port = assignments.pop(input_port)
        del self._by_output[slot][output_port]
        self._input_total[input_port] -= 1
        self._output_total[output_port] -= 1
        return (input_port, output_port)

    def move(self, from_slot: int, to_slot: int, input_port: int) -> None:
        """Move one reservation between slots (destination must be free)."""
        _, output_port = self.clear(from_slot, input_port)
        try:
            self.place(to_slot, input_port, output_port)
        except ScheduleError:
            # Restore before propagating, so failed moves are atomic.
            self.place(from_slot, input_port, output_port)
            raise

    def find_free_slot(
        self, input_port: int, output_port: int
    ) -> Optional[int]:
        """A slot where both ports are free, or ``None``."""
        for slot in range(self.n_slots):
            if self.input_free(slot, input_port) and self.output_free(
                slot, output_port
            ):
                return slot
        return None

    def find_input_free_slot(self, input_port: int) -> Optional[int]:
        for slot in range(self.n_slots):
            if self.input_free(slot, input_port):
                return slot
        return None

    def find_output_free_slot(self, output_port: int) -> Optional[int]:
        for slot in range(self.n_slots):
            if self.output_free(slot, output_port):
                return slot
        return None

    # ------------------------------------------------------------------
    def check_consistent(self) -> None:
        """Verify every invariant; raises :class:`ScheduleError` on breakage.

        Used by tests and the property-based suite after every mutation
        sequence.
        """
        input_totals = [0] * self.n_ports
        output_totals = [0] * self.n_ports
        for slot in range(self.n_slots):
            by_input = self._by_input[slot]
            by_output = self._by_output[slot]
            if len(by_input) != len(by_output):
                raise ScheduleError(f"slot {slot}: map size mismatch")
            for input_port, output_port in by_input.items():
                if by_output.get(output_port) != input_port:
                    raise ScheduleError(
                        f"slot {slot}: reverse map broken at "
                        f"{input_port}->{output_port}"
                    )
                input_totals[input_port] += 1
                output_totals[output_port] += 1
        if input_totals != self._input_total:
            raise ScheduleError("input totals out of sync")
        if output_totals != self._output_total:
            raise ScheduleError("output totals out of sync")
        for port in range(self.n_ports):
            if input_totals[port] > self.n_slots:
                raise ScheduleError(f"input {port} over-committed")
            if output_totals[port] > self.n_slots:
                raise ScheduleError(f"output {port} over-committed")

    def _check_ports(self, input_port: int, output_port: int) -> None:
        if not 0 <= input_port < self.n_ports:
            raise ScheduleError(f"input {input_port} out of range")
        if not 0 <= output_port < self.n_ports:
            raise ScheduleError(f"output {output_port} out of range")

    def copy(self) -> "FrameSchedule":
        duplicate = FrameSchedule(self.n_ports, self.n_slots)
        for slot, input_port, output_port in self.reserved_pairs():
            duplicate.place(slot, input_port, output_port)
        return duplicate

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<FrameSchedule {self.n_ports} ports x {self.n_slots} slots, "
            f"{self.total_reserved()} reserved>"
        )

    def render(self) -> str:
        """A human-readable rendering in the style of the paper's Figure 2."""
        lines = []
        for slot in range(self.n_slots):
            assignments = self._by_input[slot]
            if not assignments and self.n_slots > 16:
                continue  # keep large renders compact
            pairs = "  ".join(
                f"{i + 1}->{o + 1}" for i, o in sorted(assignments.items())
            )
            lines.append(f"Slot {slot + 1}: {pairs}")
        return "\n".join(lines)


def figure2_schedule() -> FrameSchedule:
    """The paper's Figure 2 schedule (4 ports, 3 slots, 1-based in the
    paper, 0-based here).

    Reservations (cells/frame)::

               out1 out2 out3 out4
        in1      .    1    1    1
        in2      2    .    .    .
        in3      .    2    .    1
        in4      1    .    1    .

    Schedule::

        Slot 1:  1->3  2->1  3->2
        Slot 2:  1->4  2->1  3->2  4->3
        Slot 3:  1->2  3->4  4->1

    Note the matrix in the paper reserves one cell for 4->3 which appears
    in slot 2; Figure 3 then *adds another* 4->3 reservation to show the
    insertion algorithm.  This function returns the schedule exactly as
    printed in Figure 2.
    """
    schedule = FrameSchedule(n_ports=4, n_slots=3)
    for slot, pairs in enumerate(
        [
            [(1, 3), (2, 1), (3, 2)],
            [(1, 4), (2, 1), (3, 2), (4, 3)],
            [(1, 2), (3, 4), (4, 1)],
        ]
    ):
        for input_port, output_port in pairs:
            schedule.place(slot, input_port - 1, output_port - 1)
    return schedule


def figure3_initial_schedule() -> FrameSchedule:
    """The two-row sub-schedule Figure 3 starts from (slots p and q).

    Figure 3 operates on slots 1 (p) and 3 (q) of Figure 2::

        p:  1->3  2->1  3->2
        q:  1->2  3->4  4->1
    """
    schedule = FrameSchedule(n_ports=4, n_slots=2)
    for slot, pairs in enumerate(
        [
            [(1, 3), (2, 1), (3, 2)],
            [(1, 2), (3, 4), (4, 1)],
        ]
    ):
        for input_port, output_port in pairs:
            schedule.place(slot, input_port - 1, output_port - 1)
    return schedule
