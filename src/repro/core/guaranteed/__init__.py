"""Guaranteed (Continuous Bit Rate) traffic: frames, schedules, admission.

Section 4 of the paper: bandwidth reservations are expressed in cells per
1024-slot *frame*; a per-switch schedule assigns reserved (input, output)
pairs to slots; the Slepian-Duguid theorem guarantees that any reservation
set that over-commits no link can be scheduled, and its proof gives the
incremental insertion algorithm (Figure 3).  Admission and route selection
are performed by the "bandwidth central" service.
"""

from repro.core.guaranteed.bandwidth_central import (
    BandwidthCentral,
    Reservation,
    ReservationDenied,
)
from repro.core.guaranteed.distributed import (
    DistributedAdmissionAgent,
    ReserveConfirm,
    ReserveReject,
    ReserveRequest,
)
from repro.core.guaranteed.nested_frames import NestedFrameSchedule
from repro.core.guaranteed.packing import (
    completely_free_fraction,
    make_policy_schedule,
    packed_schedule,
    spread_schedule,
)
from repro.core.guaranteed.frames import FrameSchedule, ScheduleError, figure2_schedule
from repro.core.guaranteed.latency import (
    buffer_requirement_cells,
    guaranteed_latency_bound_us,
)
from repro.core.guaranteed.slepian_duguid import (
    InsertionTrace,
    insert_cell,
    insert_reservation,
    remove_cell,
)

__all__ = [
    "BandwidthCentral",
    "DistributedAdmissionAgent",
    "FrameSchedule",
    "InsertionTrace",
    "NestedFrameSchedule",
    "Reservation",
    "ReservationDenied",
    "ReserveConfirm",
    "ReserveReject",
    "ReserveRequest",
    "ScheduleError",
    "completely_free_fraction",
    "make_policy_schedule",
    "packed_schedule",
    "spread_schedule",
    "buffer_requirement_cells",
    "figure2_schedule",
    "guaranteed_latency_bound_us",
    "insert_cell",
    "insert_reservation",
    "remove_cell",
]
