"""Bandwidth central: admission control and route choice for CBR circuits.

Section 4: "The request to reserve bandwidth is processed by a network
service called 'bandwidth central'...  Because it resolves all bandwidth
requests, it knows the unreserved capacity of each link in the network.
A new request is granted if there is a path between source and
destination on which each link has enough unreserved bandwidth.
Otherwise, the request must be denied.  Bandwidth central chooses the
route for the new virtual circuit if more than one possibility exists."

As in the first AN2 release, the service here is centralized (it would
live at a switch chosen during reconfiguration -- see
:meth:`repro.net.network.Network.elect_bandwidth_central`), but nothing in
the interface assumes that; the paper notes it "might well be implemented
in a distributed fashion".

Route selection heuristics (the paper points at Awerbuch et al.'s PARIS
heuristics): ``shortest`` (first feasible shortest path),
``widest_shortest`` (among shortest feasible paths, maximize the
bottleneck residual -- keeps capacity spread out), and ``first_fit``
(deterministic, for reproducible tests).
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro._types import NodeId
from repro.constants import FRAME_SLOTS
from repro.net.topology import Edge, TopologyView


class ReservationDenied(Exception):
    """No path with sufficient unreserved bandwidth exists."""


_reservation_ids = itertools.count(1)


@dataclass
class Reservation:
    """A granted bandwidth reservation.

    ``route_nodes`` runs source host, switches..., destination host;
    ``route_edges`` are the cables traversed, in order.  Each switch hop
    also appears in ``switch_hops`` as (switch, in_port, out_port) -- the
    data needed to revise that switch's frame schedule.
    """

    source: NodeId
    destination: NodeId
    cells_per_frame: int
    route_nodes: List[NodeId]
    route_edges: List[Edge]
    switch_hops: List[Tuple[NodeId, int, int]] = field(default_factory=list)
    reservation_id: int = field(default_factory=lambda: next(_reservation_ids))

    @property
    def path_length(self) -> int:
        """Number of switches traversed."""
        return len(self.switch_hops)


class BandwidthCentral:
    """Centralized admission control over a discovered topology."""

    def __init__(
        self,
        view: TopologyView,
        frame_slots: int = FRAME_SLOTS,
        heuristic: str = "widest_shortest",
        capacities: Optional[Dict[Edge, int]] = None,
    ) -> None:
        """``capacities`` optionally overrides per-edge capacity in
        cells/frame (e.g. a 155 Mbit/s host link carries a quarter of a
        622 Mbit/s trunk's cells per frame time)."""
        if heuristic not in ("shortest", "widest_shortest", "first_fit"):
            raise ValueError(f"unknown heuristic {heuristic!r}")
        self.view = view
        self.frame_slots = frame_slots
        self.heuristic = heuristic
        #: residual capacity in cells/frame per (edge, direction) where
        #: direction 0 means "from the lower endpoint toward the higher".
        self._residual: Dict[Tuple[Edge, int], int] = {}
        self._capacity: Dict[Tuple[Edge, int], int] = {}
        #: adjacency over *all* nodes (hosts included): node -> list of
        #: (neighbor, edge).
        self._adjacency: Dict[NodeId, List[Tuple[NodeId, Edge]]] = {}
        for edge in sorted(view.edges):
            (node_a, _), (node_b, _) = edge
            capacity = frame_slots
            if capacities is not None and edge in capacities:
                capacity = capacities[edge]
            self._residual[(edge, 0)] = capacity
            self._residual[(edge, 1)] = capacity
            self._capacity[(edge, 0)] = capacity
            self._capacity[(edge, 1)] = capacity
            self._adjacency.setdefault(node_a, []).append((node_b, edge))
            self._adjacency.setdefault(node_b, []).append((node_a, edge))
        self.reservations: Dict[int, Reservation] = {}
        self.requests_granted = 0
        self.requests_denied = 0

    # ------------------------------------------------------------------
    # capacity bookkeeping
    # ------------------------------------------------------------------
    def _direction(self, edge: Edge, from_node: NodeId) -> int:
        (node_a, _), _ = edge
        return 0 if from_node == node_a else 1

    def residual(self, edge: Edge, from_node: NodeId) -> int:
        """Unreserved cells/frame on ``edge`` leaving ``from_node``."""
        return self._residual[(edge, self._direction(edge, from_node))]

    def _consume(self, route_nodes: List[NodeId], route_edges: List[Edge], cells: int) -> None:
        for from_node, edge in zip(route_nodes, route_edges):
            key = (edge, self._direction(edge, from_node))
            if self._residual[key] < cells:
                raise ReservationDenied(
                    f"link {edge} over-committed during consume (bug)"
                )
            self._residual[key] -= cells

    def _restore(self, route_nodes: List[NodeId], route_edges: List[Edge], cells: int) -> None:
        for from_node, edge in zip(route_nodes, route_edges):
            key = (edge, self._direction(edge, from_node))
            self._residual[key] += cells
            if self._residual[key] > self._capacity[key]:
                raise ValueError(f"released more than reserved on {edge}")

    # ------------------------------------------------------------------
    # admission
    # ------------------------------------------------------------------
    def request(
        self, source: NodeId, destination: NodeId, cells_per_frame: int
    ) -> Reservation:
        """Grant a reservation or raise :class:`ReservationDenied`."""
        if cells_per_frame <= 0:
            raise ValueError(
                f"cells_per_frame must be positive, got {cells_per_frame}"
            )
        if cells_per_frame > self.frame_slots:
            self.requests_denied += 1
            raise ReservationDenied(
                f"{cells_per_frame} cells/frame exceeds the frame size "
                f"{self.frame_slots}"
            )
        if source == destination:
            raise ValueError("source and destination must differ")
        for node in (source, destination):
            if node not in self._adjacency:
                raise ReservationDenied(f"{node} is not attached to the network")

        path = self._find_route(source, destination, cells_per_frame)
        if path is None:
            self.requests_denied += 1
            raise ReservationDenied(
                f"no path {source}->{destination} with {cells_per_frame} "
                "cells/frame unreserved on every link"
            )
        route_nodes, route_edges = path
        self._consume(route_nodes, route_edges, cells_per_frame)
        reservation = Reservation(
            source=source,
            destination=destination,
            cells_per_frame=cells_per_frame,
            route_nodes=route_nodes,
            route_edges=route_edges,
            switch_hops=self._switch_hops(route_nodes, route_edges),
        )
        self.reservations[reservation.reservation_id] = reservation
        self.requests_granted += 1
        return reservation

    def release(self, reservation: Reservation) -> None:
        """Return a reservation's bandwidth to the pool."""
        if reservation.reservation_id not in self.reservations:
            raise KeyError(f"unknown reservation {reservation.reservation_id}")
        del self.reservations[reservation.reservation_id]
        self._restore(
            reservation.route_nodes,
            reservation.route_edges,
            reservation.cells_per_frame,
        )

    # ------------------------------------------------------------------
    def _switch_hops(
        self, route_nodes: List[NodeId], route_edges: List[Edge]
    ) -> List[Tuple[NodeId, int, int]]:
        hops: List[Tuple[NodeId, int, int]] = []
        for position in range(1, len(route_nodes) - 1):
            switch = route_nodes[position]
            in_edge = route_edges[position - 1]
            out_edge = route_edges[position]
            in_port = self._port_on(in_edge, switch)
            out_port = self._port_on(out_edge, switch)
            hops.append((switch, in_port, out_port))
        return hops

    @staticmethod
    def _port_on(edge: Edge, node: NodeId) -> int:
        (node_a, port_a), (node_b, port_b) = edge
        if node == node_a:
            return port_a
        if node == node_b:
            return port_b
        raise ValueError(f"{node} not on edge {edge}")

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    def _find_route(
        self, source: NodeId, destination: NodeId, cells: int
    ) -> Optional[Tuple[List[NodeId], List[Edge]]]:
        """Shortest feasible path, tie-broken per the configured heuristic.

        Feasible means every directed link on the path has at least
        ``cells`` unreserved.  BFS over the feasibility-filtered multigraph
        finds distances; the tie-break walks best predecessors.
        """
        # BFS distances over feasible links.
        distance: Dict[NodeId, int] = {source: 0}
        queue = deque([source])
        while queue:
            node = queue.popleft()
            if node == destination:
                break
            # Hosts relay nothing: only the endpoints may be hosts.
            if node.is_host and node != source:
                continue
            for neighbor, edge in self._adjacency.get(node, []):
                if self.residual(edge, node) < cells:
                    continue
                if neighbor not in distance:
                    distance[neighbor] = distance[node] + 1
                    queue.append(neighbor)
        if destination not in distance:
            return None

        # Walk back from the destination choosing predecessors.
        def best_incoming(node: NodeId) -> Tuple[NodeId, Edge]:
            candidates: List[Tuple[NodeId, Edge]] = []
            for neighbor, edge in self._adjacency[node]:
                if distance.get(neighbor) != distance[node] - 1:
                    continue
                if neighbor.is_host and neighbor != source:
                    continue
                if self.residual(edge, neighbor) < cells:
                    continue
                candidates.append((neighbor, edge))
            if not candidates:
                raise ReservationDenied("BFS predecessor walk failed (bug)")
            if self.heuristic == "widest_shortest":
                return max(
                    candidates,
                    key=lambda item: (self.residual(item[1], item[0]), item),
                )
            # "shortest" and "first_fit": deterministic first in sort order.
            return min(candidates)

        nodes: List[NodeId] = [destination]
        edges: List[Edge] = []
        current = destination
        while current != source:
            predecessor, edge = best_incoming(current)
            nodes.append(predecessor)
            edges.append(edge)
            current = predecessor
        nodes.reverse()
        edges.reverse()
        return nodes, edges

    # ------------------------------------------------------------------
    def total_reserved(self) -> int:
        """Total cells/frame currently reserved across all circuits."""
        return sum(r.cells_per_frame for r in self.reservations.values())

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<BandwidthCentral {len(self.reservations)} reservations, "
            f"heuristic={self.heuristic}>"
        )
