"""Distributed bandwidth admission: the paper's hinted alternative.

Section 4: "The request to reserve bandwidth is processed by a network
service called 'bandwidth central'.  The name is misleading -- network
central might well be implemented in a distributed fashion."

This module implements that alternative as a hop-by-hop reservation
protocol, with *no* global state:

1. the source host emits a ``ReserveRequest`` (riding the signaling
   circuit, like a setup cell);
2. each switch on the path picks the next hop exactly as circuit setup
   does (its own topology view, up*/down* legal), checks **its own
   ledger** of unreserved cells/frame on that outgoing link, and if the
   request fits: holds the bandwidth, revises its frame schedule
   (Slepian-Duguid), installs the routing entry, and forwards;
3. the destination host answers ``ReserveConfirm``, which retraces the
   path upstream so every hop (and finally the source) learns the grant;
4. any hop without capacity (or without a legal continuation) answers
   ``ReserveReject``; the rejection retraces upstream, and each hop rolls
   its hold, schedule revision, and routing entry back.

Compared with the centralized service, decisions use only local
knowledge: a request can be rejected on a full link even though an
alternate route had room (the centralized version would have found it).
The A2 ablation benchmark quantifies exactly that acceptance gap, along
with the latency advantage of not round-tripping to a central switch.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict

from repro._types import NodeId, VcId
from repro.constants import FAST_LINK_BPS
from repro.core.routing.signaling import SetupRequest
from repro.net.cell import TrafficClass


@dataclass(frozen=True)
class ReserveRequest:
    """Hop-by-hop bandwidth reservation request."""

    vc: VcId
    source: NodeId
    destination: NodeId
    cells_per_frame: int
    gone_down: bool = False
    hop_count: int = 0


@dataclass(frozen=True)
class ReserveConfirm:
    vc: VcId


@dataclass(frozen=True)
class ReserveReject:
    vc: VcId
    reason: str = ""


@dataclass(frozen=True)
class ReserveRelease:
    """Teardown of a granted reservation, travelling downstream."""

    vc: VcId


@dataclass
class _PendingHold:
    in_port: int
    out_port: int
    cells: int
    confirmed: bool = False


class DistributedAdmissionAgent:
    """One switch's share of the distributed bandwidth service.

    The agent owns the unreserved-capacity ledger for the switch's
    *outgoing* links and the pending/confirmed holds of reservations
    passing through.  It plugs into the same transport surface as the
    signaling agent (the switch dispatches Reserve* messages here).
    """

    def __init__(self, switch) -> None:
        self.switch = switch
        #: residual cells/frame per outgoing port; populated lazily from
        #: the attached link's speed.
        self._residual: Dict[int, int] = {}
        self._holds: Dict[VcId, _PendingHold] = {}
        self.requests_seen = 0
        self.rejections_issued = 0
        self.confirms_forwarded = 0

    # ------------------------------------------------------------------
    def residual(self, out_port: int) -> int:
        if out_port not in self._residual:
            link = self.switch.ports[out_port].link
            frame_slots = self.switch.config.frame_slots
            if link is None:
                capacity = 0
            else:
                capacity = max(1, int(frame_slots * link.bps / FAST_LINK_BPS))
            self._residual[out_port] = capacity
        return self._residual[out_port]

    # ------------------------------------------------------------------
    def handle(self, in_port: int, message) -> None:
        if isinstance(message, ReserveRequest):
            self._handle_request(in_port, message)
        elif isinstance(message, ReserveConfirm):
            self._handle_confirm(in_port, message)
        elif isinstance(message, ReserveReject):
            self._handle_reject(in_port, message)
        elif isinstance(message, ReserveRelease):
            self._handle_release(in_port, message)
        else:
            raise TypeError(f"unknown admission message {message!r}")

    # ------------------------------------------------------------------
    def _handle_request(self, in_port: int, request: ReserveRequest) -> None:
        self.requests_seen += 1
        setup_like = SetupRequest(
            vc=request.vc,
            source=request.source,
            destination=request.destination,
            traffic_class=TrafficClass.GUARANTEED,
            gone_down=request.gone_down,
            hop_count=request.hop_count,
        )
        decision = self.switch.signaling.choose_output(setup_like)
        if decision is None:
            self._reject_back(in_port, request.vc, "no legal route")
            return
        out_port, next_gone_down, _ = decision
        if self.residual(out_port) < request.cells_per_frame:
            self._reject_back(in_port, request.vc, "link full")
            return
        # Hold locally: ledger, frame schedule, routing entry.
        try:
            self.switch.add_reservation(
                in_port, out_port, request.cells_per_frame
            )
        except Exception:
            self._reject_back(in_port, request.vc, "schedule full")
            return
        self._residual[out_port] -= request.cells_per_frame
        self.switch.install_circuit(request.vc, in_port, out_port, setup_like)
        self._holds[request.vc] = _PendingHold(
            in_port, out_port, request.cells_per_frame
        )
        self.switch.send_signaling(
            out_port,
            replace(
                request,
                gone_down=next_gone_down,
                hop_count=request.hop_count + 1,
            ),
        )

    def _handle_confirm(self, in_port: int, message: ReserveConfirm) -> None:
        hold = self._holds.get(message.vc)
        if hold is None or in_port != hold.out_port:
            return
        hold.confirmed = True
        self.confirms_forwarded += 1
        self.switch.send_signaling(hold.in_port, message)

    def _handle_reject(self, in_port: int, message: ReserveReject) -> None:
        hold = self._holds.pop(message.vc, None)
        if hold is None or in_port != hold.out_port:
            return
        self._rollback(message.vc, hold)
        self.switch.send_signaling(hold.in_port, message)

    def _handle_release(self, in_port: int, message: ReserveRelease) -> None:
        hold = self._holds.pop(message.vc, None)
        if hold is None:
            return
        self._rollback(message.vc, hold)
        self.switch.send_signaling(hold.out_port, message)

    # ------------------------------------------------------------------
    def _rollback(self, vc: VcId, hold: _PendingHold) -> None:
        self.switch.remove_reservation(hold.in_port, hold.out_port, hold.cells)
        self._residual[hold.out_port] += hold.cells
        self.switch.remove_circuit(vc)

    def _reject_back(self, in_port: int, vc: VcId, reason: str) -> None:
        self.rejections_issued += 1
        self.switch.send_signaling(in_port, ReserveReject(vc, reason))

    # ------------------------------------------------------------------
    def held_cells(self) -> int:
        return sum(h.cells for h in self._holds.values())

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<DistributedAdmissionAgent {self.switch.node_id} "
            f"{len(self._holds)} holds>"
        )
