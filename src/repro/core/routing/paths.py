"""Route computation over a discovered topology view.

A :class:`RouteComputer` wraps a view with the up*/down* orientation and
answers host-to-host and switch-to-switch routing questions.  Every switch
builds its own RouteComputer from the view it received in the
distribution phase; because orientations and tie-breaks are deterministic
functions of (view, root), all switches route consistently.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro._types import NodeId
from repro.core.routing.updown import UpDownOrientation
from repro.net.topology import Edge, TopologyDelta, TopologyView


class RoutingError(Exception):
    """No usable route (disconnection, unknown host, illegal path)."""


@dataclass
class Route:
    """A concrete end-to-end path.

    ``nodes`` runs source host, switches..., destination host (or switch
    to switch for transit segments); ``edges`` are the cables used, and
    ``switch_hops`` lists (switch, in_port, out_port) for every switch on
    the path -- what the signaling layer installs into routing tables.
    """

    nodes: List[NodeId]
    edges: List[Edge]
    switch_hops: List[Tuple[NodeId, int, int]]

    @property
    def n_switches(self) -> int:
        return len(self.switch_hops)

    def __len__(self) -> int:
        return len(self.edges)


def port_on(edge: Edge, node: NodeId) -> int:
    """The port number ``node`` uses on ``edge``."""
    (node_a, port_a), (node_b, port_b) = edge
    if node == node_a:
        return port_a
    if node == node_b:
        return port_b
    raise ValueError(f"{node} is not an endpoint of {edge}")


def switch_hops_of(
    nodes: List[NodeId], edges: List[Edge]
) -> List[Tuple[NodeId, int, int]]:
    """Derive per-switch (in_port, out_port) pairs from a node/edge path."""
    hops: List[Tuple[NodeId, int, int]] = []
    for position in range(len(nodes)):
        node = nodes[position]
        if not node.is_switch:
            continue
        if position == 0 or position == len(nodes) - 1:
            continue  # endpoint switches have no through-hop
        in_edge = edges[position - 1]
        out_edge = edges[position]
        hops.append((node, port_on(in_edge, node), port_on(out_edge, node)))
    return hops


class RouteComputer:
    """Host-to-host routes over one view, optionally up*/down* restricted.

    ``epoch`` labels the reconfiguration epoch this computer serves (the
    stringified :class:`~repro.core.reconfig.epoch.EpochTag`); the
    orientation's route cache is keyed by computer lifetime -- a new
    epoch installs a new computer -- and the label makes the hit/miss
    counters attributable.  ``probes`` optionally exposes those counters
    through the :class:`~repro.obs.registry.MetricsRegistry` as
    ``route_cache_hits`` / ``route_cache_misses`` / ``route_cache_epoch``
    gauges (snapshot-time reads; the routing hot path is untouched).
    """

    def __init__(
        self,
        view: TopologyView,
        root: NodeId,
        restrict_updown: bool = True,
        epoch: Optional[str] = None,
        probes=None,
        *,
        _orientation: Optional[UpDownOrientation] = None,
        _host_ports=None,
    ) -> None:
        self.view = view
        self.root = root
        self.restrict_updown = restrict_updown
        self.epoch = epoch
        if _orientation is not None:
            self.orientation = _orientation
        else:
            self.orientation = UpDownOrientation(view, root, epoch=epoch)
        #: True when this computer was produced by :meth:`with_view`'s
        #: incremental path rather than a from-scratch build.
        self.incremental = _orientation is not None
        self._host_ports = (
            _host_ports if _host_ports is not None else view.host_ports()
        )
        if probes is not None:
            orientation = self.orientation
            probes.gauge("route_cache_hits", lambda: orientation.cache_hits)
            probes.gauge(
                "route_cache_misses", lambda: orientation.cache_misses
            )

    # ------------------------------------------------------------------
    def with_view(
        self,
        view: TopologyView,
        epoch: Optional[str] = None,
        probes=None,
    ) -> "RouteComputer":
        """The next epoch's computer, recomputed incrementally.

        Computes the :class:`~repro.net.topology.TopologyDelta` between
        this computer's view and ``view`` and repairs the up*/down*
        orientation over the affected region only (see
        :meth:`UpDownOrientation.apply_delta`) instead of rebuilding the
        world.  The root must be unchanged -- the orientation is a
        function of (view, root) -- and the new view must still be
        connected from it; both raise ``ValueError``, exactly as a
        from-scratch build of ``view`` would, so callers fall back the
        same way.
        """
        delta = TopologyDelta.between(self.view, view)
        orientation = self.orientation.apply_delta(delta, epoch=epoch)
        return RouteComputer(
            view,
            self.root,
            restrict_updown=self.restrict_updown,
            epoch=epoch,
            probes=probes,
            _orientation=orientation,
            _host_ports=self._patched_host_ports(delta),
        )

    def _patched_host_ports(self, delta: TopologyDelta):
        """Host attachments for the new view, patched from this one.

        Mirrors :meth:`TopologyView.host_ports` (whose per-host lists are
        fully sorted, so patch-then-sort reproduces a rebuild exactly)
        without the O(E) scan over every cable in the fabric.
        """
        changed = {
            node
            for edge in delta.added | delta.removed
            for node, _ in edge
            if node.is_host
        }
        if not changed:
            return self._host_ports
        ports = dict(self._host_ports)
        removed = delta.removed
        for host in sorted(changed):
            entries = [
                entry
                for entry in ports.get(host, [])
                if self._host_entry_edge(host, entry) not in removed
            ]
            for (na, pa), (nb, pb) in delta.added:
                if na == host and nb.is_switch:
                    entries.append((pa, nb, pb))
                elif nb == host and na.is_switch:
                    entries.append((pb, na, pa))
            if entries:
                entries.sort()
                ports[host] = entries
            else:
                ports.pop(host, None)
        return ports

    @staticmethod
    def _host_entry_edge(host: NodeId, entry) -> Edge:
        host_port, switch, switch_port = entry
        a, b = (host, host_port), (switch, switch_port)
        return (a, b) if a <= b else (b, a)

    # ------------------------------------------------------------------
    def attachment(
        self, host: NodeId, preferred_port: int = 0
    ) -> Tuple[NodeId, Edge]:
        """The (switch, cable) a host's traffic enters the network through.

        Prefers the host's port ``preferred_port`` (the active link; "Only
        one link is in active use at any time"), falling back to any other
        attachment.
        """
        attachments = self._host_ports.get(host)
        if not attachments:
            raise RoutingError(f"host {host} has no attachments in the view")
        for host_port, switch, switch_port in attachments:
            if host_port == preferred_port:
                return switch, self._edge_for(host, host_port, switch, switch_port)
        host_port, switch, switch_port = attachments[0]
        return switch, self._edge_for(host, host_port, switch, switch_port)

    def _edge_for(
        self, host: NodeId, host_port: int, switch: NodeId, switch_port: int
    ) -> Edge:
        a, b = (host, host_port), (switch, switch_port)
        return (a, b) if a <= b else (b, a)

    # ------------------------------------------------------------------
    def host_route(
        self,
        source: NodeId,
        destination: NodeId,
        source_port: int = 0,
        destination_port: int = 0,
    ) -> Route:
        """Shortest (legal) route between two hosts."""
        if not (source.is_host and destination.is_host):
            raise RoutingError("host_route requires two hosts")
        if source == destination:
            raise RoutingError("source and destination hosts are identical")
        src_switch, src_edge = self.attachment(source, source_port)
        dst_switch, dst_edge = self.attachment(destination, destination_port)
        switch_path = self.switch_route(src_switch, dst_switch)
        nodes = [source] + switch_path[0] + [destination]
        edges = [src_edge] + switch_path[1] + [dst_edge]
        return Route(nodes, edges, switch_hops_of(nodes, edges))

    def switch_route(
        self, source: NodeId, destination: NodeId
    ) -> Tuple[List[NodeId], List[Edge]]:
        """Shortest (legal) switch-to-switch path as (nodes, edges)."""
        if self.restrict_updown:
            path = self.orientation.shortest_legal_path(source, destination)
        else:
            path = self.orientation.shortest_unrestricted_path(
                source, destination
            )
        if path is None:
            raise RoutingError(
                f"no {'legal ' if self.restrict_updown else ''}path "
                f"{source} -> {destination}"
            )
        return path

    def path_inflation(
        self, source: NodeId, destination: NodeId
    ) -> Tuple[int, int]:
        """(restricted length, unrestricted length) -- the E10 metric for
        "Up*/down* routing may eliminate some potential routes and thus
        have a negative effect on performance"."""
        legal = self.orientation.shortest_legal_path(source, destination)
        free = self.orientation.shortest_unrestricted_path(source, destination)
        if legal is None or free is None:
            raise RoutingError(f"{source} and {destination} are disconnected")
        return len(legal[1]), len(free[1])
