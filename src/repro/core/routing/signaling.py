"""Hop-by-hop virtual-circuit setup and teardown.

Section 2: "When a new virtual circuit is to be created, a cell
containing the ids of the source and destination hosts is sent along a
separate signaling circuit.  When this cell arrives at a switch, it is
passed to the processor on the line card where it arrived.  Software
there chooses the outgoing port for the circuit (based on the topology
information obtained during reconfiguration) and adds the virtual circuit
to the line card's routing table.  Cells for the new virtual circuit may
be sent immediately after the setup cell.  If they arrive at a switch
before the virtual circuit is established there, they will be buffered
until the routing table entry is filled in."

Each switch routes the setup cell itself (hop by hop) using its own
topology view; the ``gone_down`` flag carried in the request keeps the
concatenation of per-hop decisions inside the up*/down* discipline.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, Tuple

from repro._types import NodeId, VcId
from repro.net.cell import TrafficClass


@dataclass(frozen=True)
class SetupRequest:
    """The setup cell's payload."""

    vc: VcId
    source: NodeId
    destination: NodeId
    traffic_class: TrafficClass = TrafficClass.BEST_EFFORT
    #: has the path taken a down traversal yet (up*/down* bookkeeping)?
    gone_down: bool = False
    #: hops already taken (loop/diagnostics guard).
    hop_count: int = 0


@dataclass(frozen=True)
class TeardownRequest:
    vc: VcId


@dataclass(frozen=True)
class PageOut:
    """Extension (section 2): the upstream switch released this circuit's
    resources; the receiver may cascade."""

    vc: VcId


class SignalingTransport:
    """What the signaling agent needs from its switch (duck-typed).

    - ``route_computer()``: the current
      :class:`~repro.core.routing.paths.RouteComputer` (or ``None`` before
      the first reconfiguration completes),
    - ``attached_host_port(host)``: local port cabled to ``host`` if any,
    - ``install_circuit(vc, in_port, out_port, request)``: create the
      routing-table entry and per-VC buffers,
    - ``remove_circuit(vc)``: tear state down, returning the stored
      (in_port, out_port) if the circuit existed,
    - ``send_signaling(port_index, message)``: transmit a signaling cell.
    """

    def route_computer(self):  # pragma: no cover - interface
        raise NotImplementedError

    def attached_host_port(self, host: NodeId) -> Optional[int]:  # pragma: no cover
        raise NotImplementedError

    def install_circuit(self, vc, in_port, out_port, request):  # pragma: no cover
        raise NotImplementedError

    def remove_circuit(self, vc):  # pragma: no cover
        raise NotImplementedError

    def send_signaling(self, port_index, message):  # pragma: no cover
        raise NotImplementedError


class SignalingAgent:
    """One switch's circuit-setup software."""

    def __init__(self, node_id: NodeId, transport: SignalingTransport, max_hops: int = 64) -> None:
        self.node_id = node_id
        self.transport = transport
        self.max_hops = max_hops
        self.setups_handled = 0
        self.setups_failed = 0
        self.teardowns_handled = 0

    # ------------------------------------------------------------------
    def handle(self, in_port: int, message) -> None:
        from repro.core.routing.multicast import MulticastSetupRequest

        if isinstance(message, SetupRequest):
            self._handle_setup(in_port, message)
        elif isinstance(message, MulticastSetupRequest):
            self._handle_multicast_setup(in_port, message)
        elif isinstance(message, TeardownRequest):
            self._handle_teardown(in_port, message)
        else:
            raise TypeError(f"unknown signaling message {message!r}")

    def _handle_multicast_setup(self, in_port: int, request) -> None:
        """Group the destination set by next hop and branch the setup.

        Each destination is routed exactly as a unicast setup would be;
        destinations sharing a next hop share a branch.  The union of
        branches is installed as one fanout entry.
        """
        from repro.core.routing.multicast import MulticastSetupRequest

        self.setups_handled += 1
        if request.hop_count >= self.max_hops:
            self.setups_failed += 1
            return
        branches: dict = {}
        unreachable = 0
        for destination in sorted(request.destinations):
            single = SetupRequest(
                vc=request.vc,
                source=request.source,
                destination=destination,
                gone_down=request.gone_down,
                hop_count=request.hop_count,
            )
            decision = self.choose_output(single)
            if decision is None:
                unreachable += 1
                continue
            out_port, next_gone_down, _ = decision
            branch = branches.setdefault(
                out_port, {"destinations": set(), "gone_down": next_gone_down}
            )
            branch["destinations"].add(destination)
        if not branches:
            self.setups_failed += 1
            return
        if unreachable:
            self.setups_failed += 1  # partial tree; reachable leaves join
        self.transport.install_multicast(
            request.vc, in_port, frozenset(branches), request
        )
        for out_port in sorted(branches):
            branch = branches[out_port]
            self.transport.send_signaling(
                out_port,
                MulticastSetupRequest(
                    vc=request.vc,
                    source=request.source,
                    destinations=frozenset(branch["destinations"]),
                    gone_down=branch["gone_down"],
                    hop_count=request.hop_count + 1,
                ),
            )

    def _handle_setup(self, in_port: int, request: SetupRequest) -> None:
        self.setups_handled += 1
        if request.hop_count >= self.max_hops:
            self.setups_failed += 1
            return
        decision = self.choose_output(request)
        if decision is None:
            self.setups_failed += 1
            return
        out_port, next_gone_down, reaches_host = decision
        self.transport.install_circuit(request.vc, in_port, out_port, request)
        forwarded = replace(
            request,
            gone_down=next_gone_down,
            hop_count=request.hop_count + 1,
        )
        self.transport.send_signaling(out_port, forwarded)

    def choose_output(
        self, request: SetupRequest
    ) -> Optional[Tuple[int, bool, bool]]:
        """Pick the outgoing port for a circuit to ``request.destination``.

        Returns (out_port, gone_down after this hop, is final hop) or
        ``None`` when no legal continuation exists (e.g. the view is stale
        or up*/down* forbids every remaining direction).
        """
        host_port = self.transport.attached_host_port(request.destination)
        if host_port is not None:
            return host_port, request.gone_down, True
        computer = self.transport.route_computer()
        if computer is None:
            return None
        try:
            dest_switch, _ = computer.attachment(request.destination)
        except Exception:
            return None
        if dest_switch == self.node_id:
            # The view says the host is here but it is not cabled (stale
            # view or dead host link).
            return None
        hop = computer.orientation.next_hop(
            self.node_id, dest_switch, arrived_downward=request.gone_down
        )
        if hop is None:
            return None
        neighbor, edge = hop
        from repro.core.routing.paths import port_on

        out_port = port_on(edge, self.node_id)
        traversal_down = not computer.orientation.is_up_traversal(
            edge, self.node_id
        )
        return out_port, request.gone_down or traversal_down, False

    def _handle_teardown(self, in_port: int, request: TeardownRequest) -> None:
        self.teardowns_handled += 1
        removed = self.transport.remove_circuit(request.vc)
        if removed is None:
            return
        _, out_port = removed
        if out_port is not None:
            self.transport.send_signaling(out_port, request)
