"""Virtual circuits: identities and life cycle.

"Routing in AN2 is based on virtual circuits.  For our purposes here, a
virtual circuit represents a stream of cells to be transmitted between a
pair of hosts...  The header of each cell contains its virtual circuit
id." (Section 1.)

Real ATM remaps the VCI at every hop; this model uses network-unique ids
(a documented simplification -- see DESIGN.md) so a circuit can be traced
end-to-end by one number.  Ids 0..15 are reserved for the control plane.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import FrozenSet, Optional

from repro._types import NodeId, VcId
from repro.core.routing.paths import Route
from repro.net.cell import TrafficClass

#: VC 0 carries pings/acks; VC 1 carries signaling; the rest of the low
#: ids are reserved.
PING_VC: VcId = 0
SIGNALING_VC: VcId = 1
FIRST_DATA_VC: VcId = 16


class CircuitState(enum.Enum):
    SETTING_UP = "setting_up"
    ESTABLISHED = "established"
    PAGED_OUT = "paged_out"
    TORN_DOWN = "torn_down"
    BROKEN = "broken"  # path crossed a failed link; awaiting reroute


@dataclass
class VirtualCircuit:
    """One unidirectional stream of cells between two hosts."""

    vc: VcId
    source: NodeId
    destination: NodeId
    traffic_class: TrafficClass = TrafficClass.BEST_EFFORT
    #: for multicast circuits: the full destination group (``destination``
    #: then holds its first member, for display and packet metadata).
    group: Optional[FrozenSet[NodeId]] = None
    route: Optional[Route] = None
    state: CircuitState = CircuitState.SETTING_UP
    cells_per_frame: int = 0  # > 0 only for guaranteed circuits
    cells_sent: int = 0
    cells_delivered: int = 0
    established_at: Optional[float] = None

    @property
    def is_guaranteed(self) -> bool:
        return self.traffic_class is TrafficClass.GUARANTEED

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<VC {self.vc} {self.source}->{self.destination} "
            f"{self.traffic_class.value} {self.state.value}>"
        )


class VcAllocator:
    """Hands out network-unique virtual circuit ids."""

    def __init__(self, first: VcId = FIRST_DATA_VC) -> None:
        if first < FIRST_DATA_VC:
            raise ValueError(
                f"data VCs start at {FIRST_DATA_VC}; got first={first}"
            )
        self._next = first

    def allocate(self) -> VcId:
        vc = self._next
        self._next += 1
        return vc
