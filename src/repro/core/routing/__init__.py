"""Virtual-circuit routing (sections 2 and 5).

- :mod:`repro.core.routing.updown` -- up*/down* link orientation and
  legal-path search (AN1's deadlock-avoiding route restriction),
- :mod:`repro.core.routing.paths` -- route computation over a discovered
  topology view,
- :mod:`repro.core.routing.circuits` -- virtual-circuit identities and
  life cycle,
- :mod:`repro.core.routing.signaling` -- hop-by-hop circuit setup ("a
  cell containing the ids of the source and destination hosts is sent
  along a separate signaling circuit"),
- :mod:`repro.core.routing.paging` -- the idle-circuit page-out/page-in
  extension,
- :mod:`repro.core.routing.reroute` -- local rerouting around failed
  links,
- :mod:`repro.core.routing.load_balance` -- the speculative
  load-balancing rerouter.
"""

from repro.core.routing.circuits import (
    SIGNALING_VC,
    CircuitState,
    VcAllocator,
    VirtualCircuit,
)
from repro.core.routing.multicast import FanoutToken, MulticastSetupRequest
from repro.core.routing.paths import Route, RouteComputer, RoutingError
from repro.core.routing.updown import UpDownOrientation

__all__ = [
    "CircuitState",
    "FanoutToken",
    "MulticastSetupRequest",
    "Route",
    "RouteComputer",
    "RoutingError",
    "SIGNALING_VC",
    "UpDownOrientation",
    "VcAllocator",
    "VirtualCircuit",
]
