"""Circuit paging: reclaiming the resources of idle circuits.

Section 2: "A second optimization allows reclamation of resources, such
as buffers, that are associated with an idle virtual circuit.  Switch
software could 'page out' a circuit by releasing its buffers, removing it
from the routing table, and notifying the downstream switch of this
action.  The downstream switch could then page it out as well.  If
further cells for the circuit subsequently arrived, it could be 'paged
in' by generating a setup cell to recreate the circuit."

The mechanics (releasing state, the PageOut notification, and the
cell-triggered page-in) live in :class:`~repro.switch.switch.AN2Switch`;
this module provides the *policy*: a daemon that periodically scans a
switch for idle circuits and pages them out.
"""

from __future__ import annotations

from typing import List

from repro._types import VcId
from repro.switch.switch import AN2Switch


class PagingDaemon:
    """Periodically pages out circuits idle longer than a threshold."""

    def __init__(
        self,
        switch: AN2Switch,
        idle_threshold_us: float = 50_000.0,
        scan_interval_us: float = 25_000.0,
    ) -> None:
        if idle_threshold_us <= 0 or scan_interval_us <= 0:
            raise ValueError("thresholds must be positive")
        self.switch = switch
        self.idle_threshold_us = idle_threshold_us
        self.scan_interval_us = scan_interval_us
        self.pages_initiated = 0
        self._running = False

    def start(self) -> None:
        if self._running:
            return
        self._running = True
        self.switch.sim.schedule(self.scan_interval_us, self._scan)

    def stop(self) -> None:
        self._running = False

    def _scan(self) -> None:
        if not self._running:
            return
        for vc in self.scan_once():
            pass
        self.switch.sim.schedule(self.scan_interval_us, self._scan)

    def scan_once(self) -> List[VcId]:
        """One scan pass; returns the circuits paged out."""
        paged: List[VcId] = []
        for vc in self.switch.idle_circuits(self.idle_threshold_us):
            if self.switch.page_out(vc):
                paged.append(vc)
                self.pages_initiated += 1
        return paged


def buffers_reclaimed(switch: AN2Switch) -> int:
    """Best-effort buffer cells currently *not* pinned by paged-in
    circuits: the benefit metric for the E13 benchmark."""
    pinned = 0
    for card in switch.cards:
        # det: allow(commutative sum; value order cannot matter)
        for state in card.downstream.values():
            pinned += state.allocation
    return pinned
