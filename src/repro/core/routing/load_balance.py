"""Speculative load balancing by circuit migration.

Section 2: "A more speculative option is to reroute circuits to balance
the load on the network.  The mechanics of rerouting are no more
difficult in this case than in the earlier ones.  However, algorithms to
determine when and where circuits should be moved have yet to be
considered."

We supply one such algorithm, clearly labelled as the extension the paper
leaves open: a watermark balancer.  Periodically, it measures each
switch output port's forwarding rate; when a port exceeds
``high_watermark`` of its link's cell rate, the busiest circuit using it
is migrated onto an alternate legal path (reusing the local-reroute
mechanics).  A migration cooldown prevents oscillation.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro._types import NodeId, VcId
from repro.net.network import Network


class LoadBalancer:
    """Watermark-triggered circuit migration over a running network."""

    def __init__(
        self,
        network: Network,
        interval_us: float = 10_000.0,
        high_watermark: float = 0.9,
        cooldown_us: float = 50_000.0,
    ) -> None:
        if not 0.0 < high_watermark <= 1.0:
            raise ValueError(f"watermark {high_watermark} out of (0, 1]")
        self.network = network
        self.interval_us = interval_us
        self.high_watermark = high_watermark
        self.cooldown_us = cooldown_us
        self.migrations = 0
        self._last_counts: Dict[Tuple[NodeId, int], int] = {}
        self._last_migration: Dict[VcId, float] = {}
        self._running = False

    def start(self) -> None:
        if self._running:
            return
        self._running = True
        self.network.sim.schedule(self.interval_us, self._tick)

    def stop(self) -> None:
        self._running = False

    def _tick(self) -> None:
        if not self._running:
            return
        self.balance_once()
        self.network.sim.schedule(self.interval_us, self._tick)

    # ------------------------------------------------------------------
    def balance_once(self) -> int:
        """One measurement + migration pass; returns migrations made."""
        moved = 0
        now = self.network.sim.now
        # det: allow(NodeId keys inserted in topology-build order)
        for switch in self.network.switches.values():
            # det: allow(int keys inserted in replay-deterministic forwarding order)
            for out_port, total in switch.stats.per_output_forwarded.items():
                key = (switch.node_id, out_port)
                previous = self._last_counts.get(key, 0)
                self._last_counts[key] = total
                delta = total - previous
                port = switch.ports[out_port]
                if port.link is None or not port.link.working:
                    continue
                capacity = self.interval_us / port.link.cell_time_us
                if capacity <= 0 or delta / capacity < self.high_watermark:
                    continue
                victim = self._busiest_circuit(switch, out_port)
                if victim is None:
                    continue
                last = self._last_migration.get(victim, -1e18)
                if now - last < self.cooldown_us:
                    continue
                blocked = switch._edges_on_port(out_port)
                if switch.reroute_circuit(victim, blocked):
                    self._last_migration[victim] = now
                    self.migrations += 1
                    moved += 1
        return moved

    def _busiest_circuit(self, switch, out_port: int) -> Optional[VcId]:
        best_vc: Optional[VcId] = None
        best_count = -1
        for card in switch.cards:
            for entry in card.routing_table.entries():
                if entry.out_port != out_port:
                    continue
                if entry.cells_forwarded > best_count:
                    best_count = entry.cells_forwarded
                    best_vc = entry.vc
        return best_vc
