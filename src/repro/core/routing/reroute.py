"""Local rerouting of circuits around failures.

Section 2: "it should often be possible to restrict participation [in a
reconfiguration] to switches 'near' the failing component, and to drop
cells only when the path of their virtual circuit goes through a failed
link.  In this case, the virtual circuit can be rerouted by sending a new
circuit setup cell from the point where the path was broken."

The mechanism lives in :meth:`repro.switch.switch.AN2Switch._reroute_port`
(enabled with ``SwitchConfig(enable_local_reroute=True)``).  This module
provides analysis helpers used by the E13 benchmark to verify the
selectivity claim: only circuits whose path crossed the failed link see
any disruption.
"""

from __future__ import annotations

from typing import List, Tuple

from repro._types import NodeId
from repro.net.network import Network


def circuits_crossing(
    network: Network, a: NodeId, b: NodeId
) -> Tuple[List[int], List[int]]:
    """Partition established circuits into (crossing, not crossing) the
    link between ``a`` and ``b``, judged by installed routing entries."""
    crossing: List[int] = []
    clear: List[int] = []
    # det: allow(int VC keys inserted in ascending allocation order)
    for vc, circuit in network.circuits.items():
        if _vc_uses_link(network, vc, a, b):
            crossing.append(vc)
        else:
            clear.append(vc)
    return crossing, clear


def _vc_uses_link(network: Network, vc: int, a: NodeId, b: NodeId) -> bool:
    # det: allow(existence check over all switches; answer order-independent)
    for switch in network.switches.values():
        in_port = switch._vc_in_port.get(vc)
        if in_port is None:
            continue
        entry = switch.cards[in_port].routing_table.lookup(vc)
        if entry is None:
            continue
        # The inbound side: who feeds this card?
        monitor = switch.cards[in_port].monitor
        if monitor is not None and monitor.neighbor is not None:
            neighbor = monitor.neighbor[0]
            if {switch.node_id, neighbor} == {a, b}:
                return True
        out_card = switch.cards[entry.out_port]
        monitor = out_card.monitor
        if monitor is not None and monitor.neighbor is not None:
            neighbor = monitor.neighbor[0]
            if {switch.node_id, neighbor} == {a, b}:
                return True
    return False


def installed_path(network: Network, vc: int, source: NodeId) -> List[NodeId]:
    """Walk the installed routing entries from the source host: the
    circuit's current physical path (post-reroute ground truth)."""
    path: List[NodeId] = [source]
    host = network.hosts[source]
    port = host.active_port
    peer = port.peer()
    guard = 0
    while peer is not None and guard < 64:
        guard += 1
        node = peer.node
        path.append(node.node_id)
        if node.node_id.is_host:
            break
        entry = node.cards[peer.index].routing_table.lookup(vc)  # type: ignore[attr-defined]
        if entry is None:
            break
        out_port = node.ports[entry.out_port]
        peer = out_port.peer()
    return path
