"""Multicast virtual circuits.

Section 1 notes their existence without detail: "(There are also
multicast virtual circuits, but they will not be discussed here.)"  We
implement the natural design for the AN2 architecture:

- **setup** generalizes the unicast setup cell: the request carries a
  *set* of destination hosts; each switch groups the destinations by
  their next hop (each branch independently obeying up*/down*), installs
  a fanout entry (one input, several outputs), and forwards one setup
  per branch with that branch's destination subset -- the union of the
  per-destination paths forms the multicast tree;
- **data** cells are replicated at fanout switches into the per-branch
  VC queues; each branch is credit-flow-controlled independently (the
  copies compete for crossbar slots like any best-effort cell);
- **buffering**: an arriving cell occupies one input buffer until its
  *last* copy has crossed the crossbar -- a shared
  :class:`FanoutToken` counts the outstanding branches, and the credit
  returns upstream only when the token drains (so the upstream window
  reflects true buffer occupancy).

Reroute/paging do not apply to fanout entries in this release (they
skip them), mirroring the paper's choice to leave multicast aside.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet

from repro._types import NodeId, VcId


@dataclass(frozen=True)
class MulticastSetupRequest:
    """The multicast setup cell: one VC, many destinations."""

    vc: VcId
    source: NodeId
    destinations: FrozenSet[NodeId]
    gone_down: bool = False
    hop_count: int = 0

    def __post_init__(self) -> None:
        if not self.destinations:
            raise ValueError("multicast setup needs at least one destination")


@dataclass
class FanoutToken:
    """Shared by the copies of one cell at one fanout switch: the input
    buffer is freed (and the credit returned) when the last copy leaves."""

    remaining: int

    def branch_departed(self) -> bool:
        """Returns True when this was the final outstanding branch."""
        if self.remaining <= 0:
            raise ValueError("fanout token over-drained")
        self.remaining -= 1
        return self.remaining == 0
