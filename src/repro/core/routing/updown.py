"""Up*/down* routing: deadlock freedom by route restriction.

Section 5: "The rules for route restriction are based on the spanning
tree formed during reconfiguration.  Each link in the network is assigned
an orientation, with up being toward the root of the tree.  (If the two
ends of the link are at the same level in the tree, then up is toward the
higher-numbered switch.)  Messages are only routed on up*/down* paths,
i.e. paths in which no traversal down a link is followed by an upward
traversal.  This restriction is sufficient to prevent cycle formation and
thus to prevent deadlock."

Levels are breadth-first distances from the root over the switch graph
(the propagation-order tree is observed to be near-breadth-first; using
BFS depths makes the orientation deterministic for a given view + root,
which every switch can compute identically from the distributed
topology).
"""

from __future__ import annotations

from collections import deque
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro._types import NodeId
from repro.net.topology import Edge, TopologyView

#: Process-wide default for path memoization (see
#: :meth:`UpDownOrientation.shortest_legal_path`).  Tests flip this off to
#: prove cached and uncached runs are digest-identical.
_CACHE_ENABLED = True


def set_path_cache_enabled(enabled: bool) -> bool:
    """Enable/disable path memoization globally; returns the old value.

    The cache is a pure memo over immutable inputs -- an orientation's
    view never changes after construction -- so this switch must never
    change any computed route, only how often the BFS actually runs.
    The conformance tests assert exactly that (digest equality with the
    cache on and off).
    """
    global _CACHE_ENABLED
    previous = _CACHE_ENABLED
    _CACHE_ENABLED = bool(enabled)
    return previous


def path_cache_enabled() -> bool:
    return _CACHE_ENABLED


_PathResult = Optional[Tuple[List[NodeId], List[Edge]]]

#: cache sentinel distinguishing "no entry" from a cached ``None``
#: (destination unreachable is a perfectly cacheable answer).
_MISS = object()


class UpDownOrientation:
    """Link orientations and legal-path search over one topology view.

    Path queries (:meth:`shortest_legal_path`,
    :meth:`shortest_unrestricted_path`, and the down-only search behind
    :meth:`next_hop`) are memoized per ``(source, destination)`` pair.
    The memo needs no explicit invalidation because an orientation is an
    immutable function of ``(view, root)``: reconfiguration installs a
    new epoch by building a *new* orientation (see
    ``AN2Switch._on_topology_ready``), so the epoch key is the object
    lifetime itself.  ``epoch`` is an optional label carried for
    observability -- the route-cache probes report hits/misses per epoch.
    """

    def __init__(
        self,
        view: TopologyView,
        root: NodeId,
        epoch: Optional[str] = None,
    ) -> None:
        if not root.is_switch:
            raise ValueError(f"root must be a switch, got {root}")
        self.view = view
        self.root = root
        self.epoch = epoch
        self._adjacency: Dict[NodeId, List[Tuple[NodeId, Edge]]] = {}
        for edge in sorted(view.edges):
            (node_a, _), (node_b, _) = edge
            if node_a.is_switch and node_b.is_switch:
                self._adjacency.setdefault(node_a, []).append((node_b, edge))
                self._adjacency.setdefault(node_b, []).append((node_a, edge))
        if root not in self._adjacency and view.switches() != [root]:
            if root not in set(view.switches()):
                raise ValueError(f"root {root} not in the topology view")
        self.levels = self._bfs_levels()
        # (kind, source, destination) -> (nodes, edges) or None.  Entries
        # are only written for unblocked queries; ``blocked_edges``
        # searches (local reroute around a failure the view does not know
        # about yet) always run the BFS.
        self._path_cache: Dict[Tuple[str, NodeId, NodeId], _PathResult] = {}
        self.cache_hits = 0
        self.cache_misses = 0

    # ------------------------------------------------------------------
    def _cached(
        self, kind: str, source: NodeId, destination: NodeId, compute
    ) -> _PathResult:
        """Memoized path lookup.

        Hits return fresh list copies: callers routinely concatenate or
        (in reroute paths) consume the lists, and a shared mutable result
        would let one caller corrupt every later query.
        """
        if not _CACHE_ENABLED:
            return compute(source, destination)
        key = (kind, source, destination)
        hit = self._path_cache.get(key, _MISS)
        if hit is not _MISS:
            self.cache_hits += 1
            if hit is None:
                return None
            nodes, edges = hit
            return list(nodes), list(edges)
        self.cache_misses += 1
        result = compute(source, destination)
        if result is None:
            self._path_cache[key] = None
            return None
        nodes, edges = result
        self._path_cache[key] = (list(nodes), list(edges))
        return result

    def _bfs_levels(self) -> Dict[NodeId, int]:
        levels = {self.root: 0}
        queue = deque([self.root])
        while queue:
            node = queue.popleft()
            for neighbor, _ in self._adjacency.get(node, []):
                if neighbor not in levels:
                    levels[neighbor] = levels[node] + 1
                    queue.append(neighbor)
        return levels

    # ------------------------------------------------------------------
    def up_end(self, edge: Edge) -> NodeId:
        """The endpoint of ``edge`` that is the *up* direction.

        Closer to the root wins; at equal levels, the higher-numbered
        switch is up (the paper's tie-break).
        """
        (node_a, _), (node_b, _) = edge
        level_a = self.levels.get(node_a)
        level_b = self.levels.get(node_b)
        if level_a is None or level_b is None:
            raise ValueError(f"edge {edge} spans disconnected switches")
        if level_a != level_b:
            return node_a if level_a < level_b else node_b
        return node_a if node_a > node_b else node_b

    def is_up_traversal(self, edge: Edge, from_node: NodeId) -> bool:
        """True when crossing ``edge`` out of ``from_node`` goes upward."""
        return self.up_end(edge) != from_node

    # ------------------------------------------------------------------
    def path_is_legal(self, nodes: Sequence[NodeId], edges: Sequence[Edge]) -> bool:
        """No down-traversal followed by an up-traversal."""
        went_down = False
        for from_node, edge in zip(nodes, edges):
            if self.is_up_traversal(edge, from_node):
                if went_down:
                    return False
            else:
                went_down = True
        return True

    def shortest_legal_path(
        self,
        source: NodeId,
        destination: NodeId,
        blocked_edges: Optional[FrozenSet[Edge]] = None,
    ) -> Optional[Tuple[List[NodeId], List[Edge]]]:
        """Shortest up*/down* path between two switches.

        BFS over (switch, has-gone-down) states.  ``blocked_edges`` lets
        the local-reroute extension search around a failed cable without
        waiting for a fresh view; such queries bypass the memo (both on
        read and on write) because the blocked set varies per call.
        """
        if not blocked_edges:
            return self._cached("legal", source, destination, self._legal_bfs)
        return self._legal_bfs(source, destination, blocked_edges)

    def _legal_bfs(
        self,
        source: NodeId,
        destination: NodeId,
        blocked_edges: Optional[FrozenSet[Edge]] = None,
    ) -> Optional[Tuple[List[NodeId], List[Edge]]]:
        if source == destination:
            return ([source], [])
        blocked = blocked_edges or frozenset()
        start = (source, False)
        parents: Dict[Tuple[NodeId, bool], Tuple[Tuple[NodeId, bool], Edge]] = {}
        seen: Set[Tuple[NodeId, bool]] = {start}
        queue = deque([start])
        goal: Optional[Tuple[NodeId, bool]] = None
        while queue and goal is None:
            node, went_down = queue.popleft()
            for neighbor, edge in self._adjacency.get(node, []):
                if edge in blocked:
                    continue
                if self.is_up_traversal(edge, node):
                    if went_down:
                        continue  # down then up: illegal
                    state = (neighbor, False)
                else:
                    state = (neighbor, True)
                if state in seen:
                    continue
                seen.add(state)
                parents[state] = ((node, went_down), edge)
                if neighbor == destination:
                    goal = state
                    break
                queue.append(state)
        if goal is None:
            return None
        nodes: List[NodeId] = [goal[0]]
        edges: List[Edge] = []
        state = goal
        while state != start:
            state, edge = parents[state]
            nodes.append(state[0])
            edges.append(edge)
        nodes.reverse()
        edges.reverse()
        return nodes, edges

    def shortest_unrestricted_path(
        self, source: NodeId, destination: NodeId
    ) -> Optional[Tuple[List[NodeId], List[Edge]]]:
        """Plain BFS shortest path, for measuring the up*/down* penalty."""
        return self._cached("free", source, destination, self._free_bfs)

    def _free_bfs(
        self, source: NodeId, destination: NodeId
    ) -> Optional[Tuple[List[NodeId], List[Edge]]]:
        if source == destination:
            return ([source], [])
        parents: Dict[NodeId, Tuple[NodeId, Edge]] = {}
        seen = {source}
        queue = deque([source])
        while queue:
            node = queue.popleft()
            for neighbor, edge in self._adjacency.get(node, []):
                if neighbor in seen:
                    continue
                seen.add(neighbor)
                parents[neighbor] = (node, edge)
                if neighbor == destination:
                    queue.clear()
                    break
                queue.append(neighbor)
        if destination not in parents:
            return None
        nodes = [destination]
        edges: List[Edge] = []
        node = destination
        while node != source:
            node, edge = parents[node]
            nodes.append(node)
            edges.append(edge)
        nodes.reverse()
        edges.reverse()
        return nodes, edges

    def next_hop(
        self, here: NodeId, destination: NodeId, arrived_downward: bool
    ) -> Optional[Tuple[NodeId, Edge]]:
        """Hop-by-hop forwarding decision for circuit setup.

        ``arrived_downward`` is whether the path so far has taken a down
        traversal; the chosen hop must keep the whole path legal.  Returns
        the neighbor and cable to use, or ``None`` when no legal
        continuation exists.
        """
        path = None
        if not arrived_downward:
            path = self.shortest_legal_path(here, destination)
        else:
            # Only downward continuations are allowed now: BFS restricted
            # to down traversals.
            path = self._shortest_down_only_path(here, destination)
        if path is None or not path[1]:
            return None
        nodes, edges = path
        return nodes[1], edges[0]

    def _shortest_down_only_path(
        self, source: NodeId, destination: NodeId
    ) -> Optional[Tuple[List[NodeId], List[Edge]]]:
        return self._cached("down", source, destination, self._down_bfs)

    def _down_bfs(
        self, source: NodeId, destination: NodeId
    ) -> Optional[Tuple[List[NodeId], List[Edge]]]:
        if source == destination:
            return ([source], [])
        parents: Dict[NodeId, Tuple[NodeId, Edge]] = {}
        seen = {source}
        queue = deque([source])
        while queue:
            node = queue.popleft()
            for neighbor, edge in self._adjacency.get(node, []):
                if self.is_up_traversal(edge, node):
                    continue
                if neighbor in seen:
                    continue
                seen.add(neighbor)
                parents[neighbor] = (node, edge)
                if neighbor == destination:
                    queue.clear()
                    break
                queue.append(neighbor)
        if destination not in parents:
            return None
        nodes = [destination]
        edges: List[Edge] = []
        node = destination
        while node != source:
            node, edge = parents[node]
            nodes.append(node)
            edges.append(edge)
        nodes.reverse()
        edges.reverse()
        return nodes, edges
