"""Up*/down* routing: deadlock freedom by route restriction.

Section 5: "The rules for route restriction are based on the spanning
tree formed during reconfiguration.  Each link in the network is assigned
an orientation, with up being toward the root of the tree.  (If the two
ends of the link are at the same level in the tree, then up is toward the
higher-numbered switch.)  Messages are only routed on up*/down* paths,
i.e. paths in which no traversal down a link is followed by an upward
traversal.  This restriction is sufficient to prevent cycle formation and
thus to prevent deadlock."

Levels are breadth-first distances from the root over the switch graph
(the propagation-order tree is observed to be near-breadth-first; using
BFS depths makes the orientation deterministic for a given view + root,
which every switch can compute identically from the distributed
topology).
"""

from __future__ import annotations

import hashlib
import heapq
from collections import deque
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro._types import NodeId
from repro.net.topology import Edge, TopologyDelta, TopologyView

#: Process-wide default for path memoization (see
#: :meth:`UpDownOrientation.shortest_legal_path`).  Tests flip this off to
#: prove cached and uncached runs are digest-identical.
_CACHE_ENABLED = True


def set_path_cache_enabled(enabled: bool) -> bool:
    """Enable/disable path memoization globally; returns the old value.

    The cache is a pure memo over immutable inputs -- an orientation's
    view never changes after construction -- so this switch must never
    change any computed route, only how often the BFS actually runs.
    The conformance tests assert exactly that (digest equality with the
    cache on and off).
    """
    global _CACHE_ENABLED
    previous = _CACHE_ENABLED
    _CACHE_ENABLED = bool(enabled)
    return previous


def path_cache_enabled() -> bool:
    return _CACHE_ENABLED


_PathResult = Optional[Tuple[List[NodeId], List[Edge]]]

#: cache sentinel distinguishing "no entry" from a cached ``None``
#: (destination unreachable is a perfectly cacheable answer).
_MISS = object()


class UpDownOrientation:
    """Link orientations and legal-path search over one topology view.

    Path queries (:meth:`shortest_legal_path`,
    :meth:`shortest_unrestricted_path`, and the down-only search behind
    :meth:`next_hop`) are memoized per ``(source, destination)`` pair.
    The memo needs no explicit invalidation because an orientation is an
    immutable function of ``(view, root)``: reconfiguration installs a
    new epoch by building a *new* orientation (see
    ``AN2Switch._on_topology_ready``), so the epoch key is the object
    lifetime itself.  ``epoch`` is an optional label carried for
    observability -- the route-cache probes report hits/misses per epoch.
    """

    def __init__(
        self,
        view: TopologyView,
        root: NodeId,
        epoch: Optional[str] = None,
    ) -> None:
        if not root.is_switch:
            raise ValueError(f"root must be a switch, got {root}")
        self.view = view
        self.root = root
        self.epoch = epoch
        self._adjacency: Dict[NodeId, List[Tuple[NodeId, Edge]]] = {}
        for edge in sorted(view.edges):
            (node_a, _), (node_b, _) = edge
            if node_a.is_switch and node_b.is_switch:
                self._adjacency.setdefault(node_a, []).append((node_b, edge))
                self._adjacency.setdefault(node_b, []).append((node_a, edge))
        switches = view.switches()
        if root not in self._adjacency and switches != [root]:
            if root not in set(switches):
                raise ValueError(f"root {root} not in the topology view")
        self.levels = self._bfs_levels()
        # Every switch in the view must be reachable from the root over
        # the *switch* graph.  Accepting a disconnected view here used to
        # defer the failure to a confusing ``up_end`` ValueError in the
        # middle of some later path query; fail at construction instead,
        # where the caller (the epoch install path) can fall back.
        unreachable = [s for s in switches if s not in self.levels]
        if unreachable:
            raise ValueError(
                f"switch graph is not connected from root {root}: "
                f"{len(unreachable)} of {len(switches)} switches are "
                f"unreachable (e.g. {unreachable[0]})"
            )
        # (kind, source, destination) -> (nodes, edges) or None.  Entries
        # are only written for unblocked queries; ``blocked_edges``
        # searches (local reroute around a failure the view does not know
        # about yet) always run the BFS.
        self._path_cache: Dict[Tuple[str, NodeId, NodeId], _PathResult] = {}
        self.cache_hits = 0
        self.cache_misses = 0

    # ------------------------------------------------------------------
    def _cached(
        self, kind: str, source: NodeId, destination: NodeId, compute
    ) -> _PathResult:
        """Memoized path lookup.

        Hits return fresh list copies: callers routinely concatenate or
        (in reroute paths) consume the lists, and a shared mutable result
        would let one caller corrupt every later query.
        """
        if not _CACHE_ENABLED:
            return compute(source, destination)
        key = (kind, source, destination)
        hit = self._path_cache.get(key, _MISS)
        if hit is not _MISS:
            self.cache_hits += 1
            if hit is None:
                return None
            nodes, edges = hit
            return list(nodes), list(edges)
        self.cache_misses += 1
        result = compute(source, destination)
        if result is None:
            self._path_cache[key] = None
            return None
        nodes, edges = result
        self._path_cache[key] = (list(nodes), list(edges))
        return result

    def _bfs_levels(self) -> Dict[NodeId, int]:
        levels = {self.root: 0}
        queue = deque([self.root])
        while queue:
            node = queue.popleft()
            for neighbor, _ in self._adjacency.get(node, []):
                if neighbor not in levels:
                    levels[neighbor] = levels[node] + 1
                    queue.append(neighbor)
        return levels

    # ------------------------------------------------------------------
    # incremental recomputation
    # ------------------------------------------------------------------
    def structure_digest(self) -> str:
        """SHA-256 over (root, levels, exact adjacency list order).

        Two orientations with equal digests answer every un-blocked path
        query identically: the BFS result is a pure function of the
        adjacency structure (including list order) and the levels.  The
        incremental path (:meth:`apply_delta`) is digest-checked against
        a from-scratch rebuild in tests and in the topology smoke gate --
        equivalence is proven, not assumed.
        """
        digest = hashlib.sha256()
        digest.update(str(self.root).encode("utf-8"))
        for node in sorted(self.levels):
            digest.update(f"|{node}:{self.levels[node]}".encode("utf-8"))
        for node in sorted(self._adjacency):
            digest.update(f"#{node}".encode("utf-8"))
            for _, edge in self._adjacency[node]:
                (na, pa), (nb, pb) = edge
                digest.update(f";{na}.{pa}-{nb}.{pb}".encode("utf-8"))
        return digest.hexdigest()

    def apply_delta(
        self, delta: TopologyDelta, epoch: Optional[str] = None
    ) -> "UpDownOrientation":
        """A new orientation for ``view +/- delta``, computed incrementally.

        Instead of re-sorting every cable and re-running the full BFS
        (O(E log E) -- the whole-fabric cost a per-epoch rebuild pays at
        datacenter scale), this patches only the adjacency lists of
        switches touched by the delta and repairs the BFS levels over the
        affected region (deletion cascade + bounded re-settle, the
        classic dynamic-BFS algorithm).  Path-cache entries provably
        untouched by the delta migrate to the new orientation; everything
        else is invalidated.

        The result is structurally identical to
        ``UpDownOrientation(delta.apply_to(view), root)`` -- same levels,
        same adjacency order, same answers to every query
        (:meth:`structure_digest` equality, enforced by tests).  Raises
        ``ValueError`` exactly when the rebuild would: the delta must
        leave the switch graph connected from the root.
        """
        new_view = delta.apply_to(self.view)
        removed_sw = sorted(
            e for e in delta.removed
            if e[0][0].is_switch and e[1][0].is_switch
        )
        added_sw = sorted(
            e for e in delta.added
            if e[0][0].is_switch and e[1][0].is_switch
        )

        clone: UpDownOrientation = object.__new__(UpDownOrientation)
        clone.view = new_view
        clone.root = self.root
        clone.epoch = epoch
        clone._adjacency = self._patched_adjacency(removed_sw, added_sw)
        clone.levels, dirty = self._repaired_levels(
            clone._adjacency, removed_sw, added_sw
        )
        self._check_delta_connectivity(clone, delta)
        clone._path_cache = self._migrated_cache(
            removed_sw, added_sw, dirty, clone.levels
        )
        clone.cache_hits = 0
        clone.cache_misses = 0
        return clone

    def _patched_adjacency(
        self, removed_sw: List[Edge], added_sw: List[Edge]
    ) -> Dict[NodeId, List[Tuple[NodeId, Edge]]]:
        """Adjacency for the new view, bit-identical to a full rebuild.

        A rebuild appends each node's incident edges in global
        ``sorted(edges)`` order, i.e. each list is sorted by edge; so
        patching = rebuild only the touched nodes' lists and re-sort them
        by edge.  Untouched lists are shared (they are never mutated
        after construction).
        """
        adjacency = dict(self._adjacency)
        removed_set = set(removed_sw)
        touched: Set[NodeId] = set()
        for (na, _), (nb, _) in removed_sw:
            touched.add(na)
            touched.add(nb)
        for (na, _), (nb, _) in added_sw:
            touched.add(na)
            touched.add(nb)
        for node in sorted(touched):
            entries = [
                (neighbor, edge)
                for neighbor, edge in adjacency.get(node, [])
                if edge not in removed_set
            ]
            for edge in added_sw:
                (ea, _), (eb, _) = edge
                if ea == node:
                    entries.append((eb, edge))
                elif eb == node:
                    entries.append((ea, edge))
            if entries:
                entries.sort(key=lambda item: item[1])
                adjacency[node] = entries
            else:
                adjacency.pop(node, None)
        return adjacency

    def _repaired_levels(
        self,
        adjacency: Dict[NodeId, List[Tuple[NodeId, Edge]]],
        removed_sw: List[Edge],
        added_sw: List[Edge],
    ) -> Tuple[Dict[NodeId, int], Set[NodeId]]:
        """Dynamic-BFS repair of the root levels over the affected region.

        Phase 1 (deletion cascade): a switch whose every potential BFS
        parent (neighbor one level up) is itself affected joins the
        affected set.  Phase 2 (re-settle): affected switches plus any
        switch an added edge can improve are re-settled in level order
        from their clean neighbors (unit-weight Dijkstra).  Switches that
        never settle are unreachable.  Returns ``(levels, dirty)`` where
        ``dirty`` is every switch whose level changed, appeared, or
        vanished.
        """
        old_levels = self.levels
        root = self.root
        affected: Set[NodeId] = set()

        def has_clean_support(node: NodeId) -> bool:
            want = old_levels[node] - 1
            for neighbor, _ in adjacency.get(node, []):
                if neighbor in affected:
                    continue
                if old_levels.get(neighbor) == want:
                    return True
            return False

        cascade: deque = deque()
        for (na, _), (nb, _) in removed_sw:
            for node in (na, nb):
                if (
                    node != root
                    and node in old_levels
                    and node not in affected
                    and not has_clean_support(node)
                ):
                    affected.add(node)
                    cascade.append(node)
        while cascade:
            node = cascade.popleft()
            for neighbor, _ in adjacency.get(node, []):
                if (
                    neighbor != root
                    and neighbor not in affected
                    and neighbor in old_levels
                    and not has_clean_support(neighbor)
                ):
                    affected.add(neighbor)
                    cascade.append(neighbor)

        # Re-settle: seed every affected switch from its clean neighbors,
        # and every switch an added edge might improve or newly reach.
        best: Dict[NodeId, int] = {}
        heap: List[Tuple[int, NodeId]] = []

        def known_level(node: NodeId) -> Optional[int]:
            if node in affected:
                return None
            return old_levels.get(node)

        def push(node: NodeId, candidate: int) -> None:
            if candidate < best.get(node, 1 << 60):
                best[node] = candidate
                heapq.heappush(heap, (candidate, node))

        for node in sorted(affected):
            for neighbor, _ in adjacency.get(node, []):
                support = known_level(neighbor)
                if support is not None:
                    push(node, support + 1)
        for (na, _), (nb, _) in added_sw:
            for here, there in ((na, nb), (nb, na)):
                here_level = known_level(here)
                if here_level is None:
                    continue
                there_level = known_level(there)
                if there_level is None or here_level + 1 < there_level:
                    push(there, here_level + 1)

        settled: Dict[NodeId, int] = {}
        while heap:
            level, node = heapq.heappop(heap)
            if node in settled or level > best.get(node, 1 << 60):
                continue
            settled[node] = level
            for neighbor, _ in adjacency.get(node, []):
                if neighbor in settled or neighbor == root:
                    continue
                candidate = level + 1
                current = known_level(neighbor)
                if neighbor in affected or neighbor in best:
                    push(neighbor, candidate)
                elif current is None or candidate < current:
                    push(neighbor, candidate)

        levels = dict(old_levels)
        dirty: Set[NodeId] = set()
        for node, level in sorted(settled.items()):
            if old_levels.get(node) != level:
                dirty.add(node)
            levels[node] = level
        unreachable = affected - set(settled)
        for node in sorted(unreachable):
            levels.pop(node, None)
            dirty.add(node)
        return levels, dirty

    def _check_delta_connectivity(
        self, clone: "UpDownOrientation", delta: TopologyDelta
    ) -> None:
        """Raise exactly when a from-scratch rebuild of the new view would.

        A switch still present in the new view but absent from the
        repaired levels is unreachable from the root; a switch that left
        the view entirely (its last cable was removed) is legitimately
        gone.  The O(E) membership scan only runs on the rare raise-or-
        drop path -- never on a clean delta.
        """
        if not clone.view.edges:
            # The rebuild rejects an edgeless view outright (the root is
            # not in it).
            raise ValueError(f"root {clone.root} not in the topology view")
        # Unreachable candidates: switches with switch links but no
        # repaired level, switches stripped of their last switch link by
        # a removal (they may survive in the view on a host cable, which
        # the rebuild rejects too), and switches introduced by added
        # edges that never got a level.
        candidates = {
            node
            # det: allow(builds a set; membership only, order-insensitive)
            for node in set(clone._adjacency) - set(clone.levels)
            if node.is_switch
        }
        candidates |= {
            node
            for edge in delta.removed | delta.added
            for node, _ in edge
            if node.is_switch
            and node != clone.root
            and node not in clone.levels
        }
        if not candidates:
            return
        in_view: Set[NodeId] = set()
        for (na, _), (nb, _) in clone.view.edges:
            in_view.add(na)
            in_view.add(nb)
        disconnected = sorted(c for c in candidates if c in in_view)
        if disconnected:
            raise ValueError(
                f"switch graph is not connected from root {clone.root}: "
                f"{len(disconnected)} switch(es) unreachable after delta "
                f"(e.g. {disconnected[0]})"
            )

    def _migrated_cache(
        self,
        removed_sw: List[Edge],
        added_sw: List[Edge],
        dirty: Set[NodeId],
        new_levels: Dict[NodeId, int],
    ) -> Dict[Tuple[str, NodeId, NodeId], _PathResult]:
        """Path-cache entries that provably survive the delta.

        An entry's BFS read the adjacency of switches within path-length
        distance of its source and the levels of their neighbors.  Root
        levels lower-bound pairwise distance (``dist(s, x) >=
        |level[s] - level[x]|``), so an entry whose every
        delta-affected switch is *strictly farther* than its path length
        -- under both the old and the new levels -- would have produced
        a byte-identical BFS on the new structure.  Everything else is
        invalidated (including every negative/unreachable entry: those
        BFS runs explored their whole component).
        """
        if not _CACHE_ENABLED or not self._path_cache:
            return {}
        affected: Set[NodeId] = set(dirty)
        for (na, _), (nb, _) in removed_sw:
            affected.add(na)
            affected.add(nb)
        for (na, _), (nb, _) in added_sw:
            affected.add(na)
            affected.add(nb)
        if not affected:
            return dict(self._path_cache)
        old_levels = self.levels
        affected_sorted = sorted(affected)
        migrated: Dict[Tuple[str, NodeId, NodeId], _PathResult] = {}
        # The cache is digest-neutral: entries are only ever read by exact
        # key, so migration order cannot leak into any output.
        for key, result in self._path_cache.items():  # det: allow(cache is key-addressed; iteration order unobservable)
            if result is None:
                continue
            nodes, edges = result
            source = key[1]
            length = len(edges)
            safe = True
            for x in affected_sorted:
                old_x = old_levels.get(x)
                old_s = old_levels.get(source)
                if old_x is not None and old_s is not None:
                    if abs(old_s - old_x) <= length:
                        safe = False
                        break
                new_x = new_levels.get(x)
                new_s = new_levels.get(source)
                if new_x is not None and new_s is not None:
                    if abs(new_s - new_x) <= length:
                        safe = False
                        break
            if safe:
                migrated[key] = (list(nodes), list(edges))
        return migrated

    # ------------------------------------------------------------------
    def up_end(self, edge: Edge) -> NodeId:
        """The endpoint of ``edge`` that is the *up* direction.

        Closer to the root wins; at equal levels, the higher-numbered
        switch is up (the paper's tie-break).
        """
        (node_a, _), (node_b, _) = edge
        level_a = self.levels.get(node_a)
        level_b = self.levels.get(node_b)
        if level_a is None or level_b is None:
            raise ValueError(f"edge {edge} spans disconnected switches")
        if level_a != level_b:
            return node_a if level_a < level_b else node_b
        return node_a if node_a > node_b else node_b

    def is_up_traversal(self, edge: Edge, from_node: NodeId) -> bool:
        """True when crossing ``edge`` out of ``from_node`` goes upward."""
        return self.up_end(edge) != from_node

    # ------------------------------------------------------------------
    def path_is_legal(self, nodes: Sequence[NodeId], edges: Sequence[Edge]) -> bool:
        """No down-traversal followed by an up-traversal."""
        went_down = False
        for from_node, edge in zip(nodes, edges):
            if self.is_up_traversal(edge, from_node):
                if went_down:
                    return False
            else:
                went_down = True
        return True

    def shortest_legal_path(
        self,
        source: NodeId,
        destination: NodeId,
        blocked_edges: Optional[FrozenSet[Edge]] = None,
    ) -> Optional[Tuple[List[NodeId], List[Edge]]]:
        """Shortest up*/down* path between two switches.

        BFS over (switch, has-gone-down) states.  ``blocked_edges`` lets
        the local-reroute extension search around a failed cable without
        waiting for a fresh view; such queries bypass the memo (both on
        read and on write) because the blocked set varies per call.
        """
        if not blocked_edges:
            return self._cached("legal", source, destination, self._legal_bfs)
        return self._legal_bfs(source, destination, blocked_edges)

    def _legal_bfs(
        self,
        source: NodeId,
        destination: NodeId,
        blocked_edges: Optional[FrozenSet[Edge]] = None,
    ) -> Optional[Tuple[List[NodeId], List[Edge]]]:
        if source == destination:
            return ([source], [])
        blocked = blocked_edges or frozenset()
        start = (source, False)
        parents: Dict[Tuple[NodeId, bool], Tuple[Tuple[NodeId, bool], Edge]] = {}
        seen: Set[Tuple[NodeId, bool]] = {start}
        queue = deque([start])
        goal: Optional[Tuple[NodeId, bool]] = None
        while queue and goal is None:
            node, went_down = queue.popleft()
            for neighbor, edge in self._adjacency.get(node, []):
                if edge in blocked:
                    continue
                if self.is_up_traversal(edge, node):
                    if went_down:
                        continue  # down then up: illegal
                    state = (neighbor, False)
                else:
                    state = (neighbor, True)
                if state in seen:
                    continue
                seen.add(state)
                parents[state] = ((node, went_down), edge)
                if neighbor == destination:
                    goal = state
                    break
                queue.append(state)
        if goal is None:
            return None
        nodes: List[NodeId] = [goal[0]]
        edges: List[Edge] = []
        state = goal
        while state != start:
            state, edge = parents[state]
            nodes.append(state[0])
            edges.append(edge)
        nodes.reverse()
        edges.reverse()
        return nodes, edges

    def shortest_unrestricted_path(
        self, source: NodeId, destination: NodeId
    ) -> Optional[Tuple[List[NodeId], List[Edge]]]:
        """Plain BFS shortest path, for measuring the up*/down* penalty."""
        return self._cached("free", source, destination, self._free_bfs)

    def _free_bfs(
        self, source: NodeId, destination: NodeId
    ) -> Optional[Tuple[List[NodeId], List[Edge]]]:
        if source == destination:
            return ([source], [])
        parents: Dict[NodeId, Tuple[NodeId, Edge]] = {}
        seen = {source}
        queue = deque([source])
        while queue:
            node = queue.popleft()
            for neighbor, edge in self._adjacency.get(node, []):
                if neighbor in seen:
                    continue
                seen.add(neighbor)
                parents[neighbor] = (node, edge)
                if neighbor == destination:
                    queue.clear()
                    break
                queue.append(neighbor)
        if destination not in parents:
            return None
        nodes = [destination]
        edges: List[Edge] = []
        node = destination
        while node != source:
            node, edge = parents[node]
            nodes.append(node)
            edges.append(edge)
        nodes.reverse()
        edges.reverse()
        return nodes, edges

    def next_hop(
        self, here: NodeId, destination: NodeId, arrived_downward: bool
    ) -> Optional[Tuple[NodeId, Edge]]:
        """Hop-by-hop forwarding decision for circuit setup.

        ``arrived_downward`` is whether the path so far has taken a down
        traversal; the chosen hop must keep the whole path legal.  Returns
        the neighbor and cable to use, or ``None`` when no legal
        continuation exists.
        """
        path = None
        if not arrived_downward:
            path = self.shortest_legal_path(here, destination)
        else:
            # Only downward continuations are allowed now: BFS restricted
            # to down traversals.
            path = self._shortest_down_only_path(here, destination)
        if path is None or not path[1]:
            return None
        nodes, edges = path
        return nodes[1], edges[0]

    def _shortest_down_only_path(
        self, source: NodeId, destination: NodeId
    ) -> Optional[Tuple[List[NodeId], List[Edge]]]:
        return self._cached("down", source, destination, self._down_bfs)

    def _down_bfs(
        self, source: NodeId, destination: NodeId
    ) -> Optional[Tuple[List[NodeId], List[Edge]]]:
        if source == destination:
            return ([source], [])
        parents: Dict[NodeId, Tuple[NodeId, Edge]] = {}
        seen = {source}
        queue = deque([source])
        while queue:
            node = queue.popleft()
            for neighbor, edge in self._adjacency.get(node, []):
                if self.is_up_traversal(edge, node):
                    continue
                if neighbor in seen:
                    continue
                seen.add(neighbor)
                parents[neighbor] = (node, edge)
                if neighbor == destination:
                    queue.clear()
                    break
                queue.append(neighbor)
        if destination not in parents:
            return None
        nodes = [destination]
        edges: List[Edge] = []
        node = destination
        while node != source:
            node, edge = parents[node]
            nodes.append(node)
            edges.append(edge)
        nodes.reverse()
        edges.reverse()
        return nodes, edges
