"""The paper's primary contribution: AN2's distributed algorithms.

- :mod:`repro.core.reconfig` -- topology acquisition (the three-phase
  spanning-tree algorithm with epoch tags), the link-state skeptic, and
  neighbor monitoring (section 2),
- :mod:`repro.core.routing` -- virtual circuits, setup signaling,
  up*/down* route restriction, and the proposed extensions: circuit
  page-out/in, local reroute, load balancing (sections 2 and 5),
- :mod:`repro.core.matching` -- parallel iterative matching and the
  scheduling baselines it is evaluated against (section 3),
- :mod:`repro.core.guaranteed` -- frame schedules, Slepian-Duguid
  insertion, bandwidth central admission control, latency/buffer bounds
  (section 4),
- :mod:`repro.core.flowcontrol` -- credit-based flow control, credit
  resynchronization, sizing, and deadlock analysis (section 5).
"""
