"""Variable-length packets -- the host's view of the network.

Section 1: "it is more convenient for host software to deal with larger
data units, such as the variable-length packets supported by ethernet and
AN1.  In AN2 a host presents packets to its controller, which disassembles
them into cells...  The controller at the receiving host will re-assemble
the cells into packets."
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional

from repro._types import NodeId

_packet_ids = itertools.count()


@dataclass
class Packet:
    """A host-level packet.

    ``payload`` is arbitrary bytes; ``size`` may exceed ``len(payload)``
    when callers want to model a large packet without materialising its
    bytes (the segmenter then pads with zeros conceptually -- only the
    byte count matters to the simulation).
    """

    source: NodeId
    destination: NodeId
    payload: bytes = b""
    size: Optional[int] = None
    created_at: float = 0.0
    delivered_at: Optional[float] = None
    uid: int = field(default_factory=lambda: next(_packet_ids))

    def __post_init__(self) -> None:
        if self.size is None:
            self.size = len(self.payload)
        if self.size < len(self.payload):
            raise ValueError(
                f"packet size {self.size} smaller than payload "
                f"({len(self.payload)} bytes)"
            )

    @property
    def latency(self) -> float:
        """End-to-end latency in microseconds (requires delivery)."""
        if self.delivered_at is None:
            raise ValueError(f"packet #{self.uid} not delivered yet")
        return self.delivered_at - self.created_at

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<Packet#{self.uid} {self.source}->{self.destination} "
            f"{self.size}B>"
        )
