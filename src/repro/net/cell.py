"""The ATM cell: 48 bytes of payload behind a 5-byte header.

The paper (section 1): "the network traffics in cells consisting of 48
bytes of data and a 5-byte header.  Using fixed-length cells makes it
easier to build high-speed switches and support bandwidth reservations."

We model the header fields the AN2 design actually uses -- the virtual
circuit id, a traffic-class bit (guaranteed vs best-effort), and an
end-of-packet marker for reassembly (AAL5-style).  Control traffic
(reconfiguration messages, credits, signaling, pings) also rides in cells;
those carry a :class:`CellKind` discriminator and a small payload object,
standing in for the dedicated control formats of the real hardware.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any, Optional

from repro._types import VcId


class CellKind(enum.Enum):
    """What a cell carries.

    ``DATA`` cells move user traffic.  Everything else models AN2's control
    plane: link-monitor pings/acks, reconfiguration protocol messages,
    credit returns for flow control, and virtual-circuit signaling.
    """

    DATA = "data"
    SETUP = "setup"
    TEARDOWN = "teardown"
    CREDIT = "credit"
    PING = "ping"
    PING_ACK = "ping_ack"
    RECONFIG = "reconfig"
    SIGNALING = "signaling"

    @property
    def is_control(self) -> bool:
        return self is not CellKind.DATA


class TrafficClass(enum.Enum):
    """Section 1's two classes of traffic."""

    GUARANTEED = "guaranteed"  # Continuous Bit Rate in ATM terms
    BEST_EFFORT = "best_effort"  # Variable Bit Rate


_cell_ids = itertools.count()


@dataclass
class Cell:
    """One 53-byte cell.

    Attributes:
        vc: virtual circuit id from the header.
        kind: data vs the various control-cell kinds.
        traffic_class: guaranteed or best-effort scheduling class.
        payload: opaque payload (bytes for data, message objects for
            control cells).
        end_of_packet: AAL5-style last-cell-of-packet marker.
        seq: per-packet sequence number used by reassembly checks.
        packet_id: id of the packet this cell was segmented from.
        created_at: simulated time the cell entered the network (stamped by
            the sending controller; used for latency measurements).
    """

    vc: VcId
    kind: CellKind = CellKind.DATA
    traffic_class: TrafficClass = TrafficClass.BEST_EFFORT
    payload: Any = None
    end_of_packet: bool = False
    seq: int = 0
    packet_id: Optional[int] = None
    created_at: float = 0.0
    #: set on per-branch copies at a multicast fanout switch; the shared
    #: token frees the input buffer when the last copy departs.
    fanout_token: Any = None
    #: journey-trace context (:class:`repro.obs.journey.JourneyContext`),
    #: attached by the source host only for sampled cells under an active
    #: journey trace; ``None`` for everything else, and every hop's
    #: instrumentation guard is just this ``is not None`` check.
    trace_ctx: Any = None
    uid: int = field(default_factory=lambda: next(_cell_ids))

    @property
    def is_data(self) -> bool:
        return self.kind is CellKind.DATA

    @property
    def is_guaranteed(self) -> bool:
        return self.traffic_class is TrafficClass.GUARANTEED

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        flags = []
        if self.end_of_packet:
            flags.append("eop")
        if self.is_guaranteed:
            flags.append("cbr")
        text = f"<Cell#{self.uid} vc={self.vc} {self.kind.value}"
        if flags:
            text += " " + ",".join(flags)
        return text + ">"


def make_control_cell(vc: VcId, kind: CellKind, payload: Any) -> Cell:
    """Build a control cell (kind must not be ``DATA``)."""
    if kind is CellKind.DATA:
        raise ValueError("control cells must not be DATA")
    return Cell(vc=vc, kind=kind, payload=payload)
