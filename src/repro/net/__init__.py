"""Network element substrate: cells, packets, links, ports, nodes, topologies.

This subpackage models the *hardware* of an AN2 installation -- everything
below the distributed algorithms of :mod:`repro.core`:

- :mod:`repro.net.cell` / :mod:`repro.net.packet` / :mod:`repro.net.aal` --
  the data units (fixed-size ATM cells, host-visible variable-length
  packets, and the segmentation/reassembly between them),
- :mod:`repro.net.link` / :mod:`repro.net.port` -- full-duplex point-to-
  point links with latency, serialization time, failure and error
  injection,
- :mod:`repro.net.node` -- the base class for switches and hosts,
- :mod:`repro.net.topology` -- connection-pattern descriptions and
  generators (including the paper's Figure-1-style SRC installation),
- :mod:`repro.net.topogen` -- structured datacenter-scale generators
  (k-ary fat-tree, spine-leaf, folded Clos) with tier/pod metadata.
"""

from repro.net.aal import Reassembler, Segmenter
from repro.net.cell import Cell, CellKind, TrafficClass
from repro.net.host import Host, HostConfig
from repro.net.link import Link, LinkState
from repro.net.network import Network, NetworkError
from repro.net.packet import Packet
from repro.net.port import Port
from repro.net.topogen import StructuredTopology, fat_tree, folded_clos, spine_leaf
from repro.net.topology import (
    Topology,
    TopologyDelta,
    TopologyError,
    TopologyView,
)

__all__ = [
    "Cell",
    "CellKind",
    "Host",
    "HostConfig",
    "Link",
    "LinkState",
    "Network",
    "NetworkError",
    "Packet",
    "Port",
    "Reassembler",
    "Segmenter",
    "StructuredTopology",
    "Topology",
    "TopologyDelta",
    "TopologyError",
    "TopologyView",
    "TrafficClass",
    "fat_tree",
    "folded_clos",
    "spine_leaf",
]
