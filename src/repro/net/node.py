"""Base class for network nodes (switches and hosts)."""

from __future__ import annotations

from typing import Dict, List, Optional

from repro._types import NodeId, PortIndex
from repro.net.cell import Cell
from repro.net.port import Port
from repro.sim.kernel import Simulator


class Node:
    """A device with an array of ports attached to a simulator.

    Subclasses implement :meth:`on_cell` -- the per-cell receive path --
    and may use :meth:`neighbor_ids` to learn who is cabled to them (the
    paper: "each node knows the identity of its neighbors; this
    information can be obtained by sending a query out each port"; we let
    nodes read the cable map directly, standing in for that query
    exchange, while the *state* of links is still only learned through
    the monitoring protocol).
    """

    def __init__(self, sim: Simulator, node_id: NodeId, n_ports: int) -> None:
        if n_ports <= 0:
            raise ValueError(f"node needs at least one port, got {n_ports}")
        self.sim = sim
        self.node_id = node_id
        self.ports: List[Port] = [Port(self, i) for i in range(n_ports)]

    # ------------------------------------------------------------------
    @property
    def n_ports(self) -> int:
        return len(self.ports)

    def port(self, index: PortIndex) -> Port:
        return self.ports[index]

    def free_port(self) -> Optional[Port]:
        """The lowest-index uncabled port, or ``None``."""
        for port in self.ports:
            if not port.connected:
                return port
        return None

    def neighbor_ids(self) -> Dict[PortIndex, NodeId]:
        """Map of port index -> neighbor node id, for cabled ports."""
        neighbors: Dict[PortIndex, NodeId] = {}
        for port in self.ports:
            peer = port.peer()
            if peer is not None:
                neighbors[port.index] = peer.node.node_id
        return neighbors

    # ------------------------------------------------------------------
    def on_cell(self, port: Port, cell: Cell) -> None:
        """Handle an arriving cell.  Subclasses must override."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover
        return f"<{type(self).__name__} {self.node_id}>"
