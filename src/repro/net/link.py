"""Full-duplex point-to-point links.

Section 1: "data is transmitted between hosts through a sequence of
switches connected by full-duplex links".  A :class:`Link` joins two
:class:`~repro.net.port.Port` endpoints and models, per direction:

- serialization time (cell bits / link rate) with FIFO ordering,
- propagation latency (from cable length),
- failure state (a dead link delivers nothing), and
- a cell error rate for the intermittent faults the skeptic watches for.

Failure and error injection are first-class because the paper's headline
demo is "pulling the plug on an arbitrary switch" and the skeptic exists
precisely because "a faulty link may exhibit intermittent failures".
"""

from __future__ import annotations

import enum
import hashlib
from collections import deque
from typing import TYPE_CHECKING, Callable, Deque, List, Optional, Tuple

from repro.constants import CELL_BITS, FAST_LINK_BPS, PROPAGATION_US_PER_KM
from repro.net.cell import Cell, CellKind
from repro.sim.kernel import Simulator

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.port import Port

import random as _random_module


class LinkState(enum.Enum):
    """The reconfiguration algorithm's clean link abstraction (section 2)."""

    WORKING = "working"
    DEAD = "dead"


class Link:
    """A bidirectional link between two ports.

    Direction 0 carries cells from ``port_a`` to ``port_b``; direction 1
    the reverse.  Cells on one direction are delivered in FIFO order.
    """

    def __init__(
        self,
        sim: Simulator,
        port_a: "Port",
        port_b: "Port",
        length_km: float = 0.1,
        bps: float = FAST_LINK_BPS,
        rng: Optional[_random_module.Random] = None,
        batch_trains: bool = False,
        max_train_cells: int = 64,
    ) -> None:
        """``batch_trains`` enables cell-train delivery batching: cells
        serialized back-to-back in one direction are delivered by a
        shared kernel event per *train* instead of one event per cell.
        Delivered/dropped/corrupted cell sets, per-cell ``drop_filter``
        adjudication, FIFO order, and credit accounting are identical to
        the unbatched path (mid-train faults flush the train cell by
        cell against each cell's own arrival time); what changes is that
        a cell inside a train may surface up to ``max_train_cells - 1``
        cell times later than its nominal arrival.  Off by default --
        latency-sensitive experiments and the frozen replay digests use
        the exact per-cell schedule."""
        if length_km < 0:
            raise ValueError(f"negative link length {length_km}")
        if max_train_cells < 1:
            raise ValueError(f"max_train_cells {max_train_cells} must be >= 1")
        self.sim = sim
        self.port_a = port_a
        self.port_b = port_b
        self.length_km = length_km
        self.bps = bps
        self.latency_us = length_km * PROPAGATION_US_PER_KM
        self.cell_time_us = CELL_BITS / bps * 1e6
        self.state = LinkState.WORKING
        self.error_rate = 0.0
        self._drop_filter: Optional[Callable[[Cell], bool]] = None
        self.batch_trains = batch_trains
        self.max_train_cells = max_train_cells
        # Per-direction (arrival_time, cell) FIFOs of cells in flight but
        # not yet delivered, plus the single pending train event each.
        self._pending_trains: List[Deque[Tuple[float, Cell]]] = [
            deque(),
            deque(),
        ]
        self._train_events: List[Optional[object]] = [None, None]
        #: kernel events saved by train batching (delivered cells minus
        #: train fires; a diagnostics metric for the speed workloads).
        self.train_events_saved = 0
        # Without an explicit RNG, derive a per-link substream keyed by
        # the endpoint labels.  A shared Random(0) here would make every
        # link in the network draw *identical* error streams -- injected
        # errors perfectly correlated across links, which no real cable
        # plant exhibits and which defeats independent-fault experiments.
        self._rng = rng if rng is not None else self._default_rng()
        self._next_free = [0.0, 0.0]  # per-direction serialization horizon
        self.cells_delivered = 0
        self.cells_dropped = 0
        #: DATA-cell subset of ``cells_dropped`` -- user-visible loss.
        #: (Control cells die on dead links constantly: the monitors keep
        #: pinging; that is telemetry, not service loss.)
        self.data_cells_dropped = 0
        self.cells_corrupted = 0
        #: observers called with (link, new_state) on every state change;
        #: the link monitors on both endpoints subscribe here.
        self.state_observers: List[Callable[["Link", LinkState], None]] = []
        # --- loss-recovery solution hooks (repro.solutions) -----------
        # All three default to unset and then cost nothing: the hot path
        # is byte-identical and schedules the same kernel events, which
        # is what lets the do_nothing solution stay digest-identical to
        # a hook-free run.
        #: observers called as (link, direction, cell) when a cell
        #: actually starts serializing -- NOT when it is dropped at a
        #: dead transmitter.  The link_retx guard numbers cells here.
        self.tx_observers: List[Callable[["Link", int, Cell], None]] = []
        #: adjudication hook: called as (link, direction, cell, reason)
        #: whenever a cell is lost at delivery time, with reason one of
        #: "dead", "filtered", "error".  Observational -- the drop and
        #: its counters stand -- but a solution may schedule recovery
        #: work (a NACK/resend, an administrative repair) from here.
        self.adjudicator: Optional[
            Callable[["Link", int, Cell, str], None]
        ] = None
        #: delivery interposer: called as (link, direction, cell) after
        #: the delivery counters and trace records.  Returning True
        #: claims the cell -- the hook delivers it to the target port
        #: itself (possibly later, to restore FIFO order around a
        #: link-local retransmission); False lets the link deliver.
        self.deliver_hook: Optional[Callable[["Link", int, Cell], bool]] = None
        port_a.attach(self, 0)
        port_b.attach(self, 1)

    # ------------------------------------------------------------------
    def _default_rng(self) -> _random_module.Random:
        """A deterministic substream keyed by this link's endpoints.

        Mirrors the :class:`~repro.sim.random.RandomStreams` discipline
        (seed hashed with a stable name) so links built outside a
        :class:`~repro.net.network.Network` still get decorrelated,
        reproducible error streams.
        """
        name = f"link/{self.port_a.label}/{self.port_b.label}"
        digest = hashlib.sha256(name.encode("utf-8")).digest()
        return _random_module.Random(int.from_bytes(digest[:8], "big"))

    @property
    def working(self) -> bool:
        return self.state is LinkState.WORKING

    @property
    def drop_filter(self) -> Optional[Callable[[Cell], bool]]:
        """Targeted fault injection: when set, a delivered cell for which
        the predicate returns True is corrupted (dropped) regardless of
        ``error_rate``.  Tests use this to lose, e.g., only CREDIT cells,
        exercising the resynchronization machinery surgically."""
        return self._drop_filter

    @drop_filter.setter
    def drop_filter(self, predicate: Optional[Callable[[Cell], bool]]) -> None:
        # Cells whose arrival time has already passed were adjudicated
        # under the old filter in the unbatched schedule; flush them
        # first so batching can never change which cells a filter sees.
        self._flush_due_trains()
        self._drop_filter = predicate

    def other_port(self, port: "Port") -> "Port":
        if port is self.port_a:
            return self.port_b
        if port is self.port_b:
            return self.port_a
        raise ValueError(f"{port!r} is not an endpoint of {self!r}")

    def next_free(self, direction: int) -> float:
        """Earliest time a new cell can start serializing in ``direction``."""
        if direction not in (0, 1):
            raise ValueError(f"bad direction {direction}")
        return self._next_free[direction]

    @property
    def round_trip_us(self) -> float:
        """Propagation + serialization round trip, used for credit sizing."""
        return 2 * (self.latency_us + self.cell_time_us)

    # ------------------------------------------------------------------
    # transmission
    # ------------------------------------------------------------------
    def transmit(
        self, direction: int, cell: Cell, bits: Optional[int] = None
    ) -> None:
        """Serialize ``cell`` in ``direction`` (0: a->b, 1: b->a).

        ``bits`` overrides the serialization length -- AN1 transmits
        variable-length packets rather than fixed cells, so its "cells"
        occupy the wire in proportion to their size.
        """
        if direction not in (0, 1):
            raise ValueError(f"bad direction {direction}")
        if not self.working:
            self.cells_dropped += 1
            if cell.kind is CellKind.DATA:
                self.data_cells_dropped += 1
            if cell.trace_ctx is not None:
                cell.trace_ctx.record(
                    self.sim.now, self.journey_label(), "wire.drop",
                    reason="dead",
                )
            return
        serialization = (
            self.cell_time_us if bits is None else bits / self.bps * 1e6
        )
        start = max(self.sim.now, self._next_free[direction])
        departure = start + serialization
        self._next_free[direction] = departure
        arrival = departure + self.latency_us
        if self.tx_observers:
            for observer in list(self.tx_observers):
                observer(self, direction, cell)
        if self.batch_trains:
            self._pending_trains[direction].append((arrival, cell))
            if self._train_events[direction] is None:
                self._train_events[direction] = self.sim.schedule_at(
                    arrival, self._fire_train, direction
                )
            return
        self.sim.schedule_at(arrival, self._deliver, direction, cell)

    def _fire_train(self, direction: int) -> None:
        """Deliver every pending cell whose arrival time has passed.

        One kernel event serves a whole train: the first fire lands at
        the head cell's arrival, delivers everything due, and reschedules
        a single event at the arrival of the train's last cell (capped at
        ``max_train_cells`` ahead, which bounds how late any one cell can
        surface).  A same-instant burst of N cells therefore costs 2
        events instead of N; a slow paced stream degrades gracefully to
        one event per cell, never worse than the unbatched path.
        """
        pending = self._pending_trains[direction]
        now = self.sim.now
        delivered = 0
        while pending and pending[0][0] <= now:
            _, cell = pending.popleft()
            self._deliver(direction, cell)
            delivered += 1
        if delivered > 1:
            self.train_events_saved += delivered - 1
        if pending:
            index = min(self.max_train_cells, len(pending)) - 1
            self._train_events[direction] = self.sim.schedule_at(
                pending[index][0], self._fire_train, direction
            )
        else:
            self._train_events[direction] = None

    def _flush_due_trains(self) -> None:
        """Deliver pending cells that have nominally arrived (both
        directions).  Called before any adjudication input changes --
        drop filter, error rate, link state -- so that every cell is
        judged under the rules in force at its own arrival time, exactly
        as in the unbatched schedule."""
        if not self.batch_trains:
            return
        now = self.sim.now
        for direction in (0, 1):
            pending = self._pending_trains[direction]
            while pending and pending[0][0] <= now:
                _, cell = pending.popleft()
                self._deliver(direction, cell)

    def journey_label(self) -> str:
        """Component name for this link's journey/flight records."""
        return f"link.{self.port_a.label}-{self.port_b.label}"

    def target_port(self, direction: int) -> "Port":
        """The receiving port for ``direction`` (0: port_b, 1: port_a)."""
        if direction not in (0, 1):
            raise ValueError(f"bad direction {direction}")
        return self.port_b if direction == 0 else self.port_a

    def _deliver(self, direction: int, cell: Cell) -> None:
        ctx = cell.trace_ctx
        if not self.working:
            self.cells_dropped += 1
            if cell.kind is CellKind.DATA:
                self.data_cells_dropped += 1
            if ctx is not None:
                ctx.record(
                    self.sim.now, self.journey_label(), "wire.drop",
                    reason="dead",
                )
            if self.adjudicator is not None:
                self.adjudicator(self, direction, cell, "dead")
            return
        if self.drop_filter is not None and self.drop_filter(cell):
            self.cells_corrupted += 1
            if ctx is not None:
                ctx.record(
                    self.sim.now, self.journey_label(), "wire.drop",
                    reason="filtered",
                )
            if self.adjudicator is not None:
                self.adjudicator(self, direction, cell, "filtered")
            return
        if self.error_rate > 0 and self._rng.random() < self.error_rate:
            self.cells_corrupted += 1
            if ctx is not None:
                ctx.record(
                    self.sim.now, self.journey_label(), "wire.drop",
                    reason="error",
                )
            if self.adjudicator is not None:
                self.adjudicator(self, direction, cell, "error")
            return
        self.cells_delivered += 1
        if ctx is not None:
            ctx.record(
                self.sim.now, self.journey_label(), "wire.arrive",
                direction=direction,
            )
        if self.deliver_hook is not None and self.deliver_hook(
            self, direction, cell
        ):
            return
        self.target_port(direction).deliver(cell)

    # ------------------------------------------------------------------
    # fault injection
    # ------------------------------------------------------------------
    def fail(self) -> None:
        """Cut the link.  Cells in flight and queued cells are lost.

        With train batching, cells that nominally arrived before the cut
        are flushed (delivered) first; cells still in flight stay on the
        pending train and are adjudicated by the train event chain under
        whatever link state holds at each cell's own arrival time --
        dropped while the link is down, delivered if it was restored
        first.  That is exactly the unbatched schedule's behavior, where
        every cell's delivery event checks ``working`` at arrival.
        """
        self._flush_due_trains()
        self._set_state(LinkState.DEAD)

    def restore(self) -> None:
        """Bring the link back up."""
        self._flush_due_trains()
        self._set_state(LinkState.WORKING)

    def _set_state(self, state: LinkState) -> None:
        if state is self.state:
            return
        self.state = state
        for observer in list(self.state_observers):
            observer(self, state)

    def set_error_rate(self, rate: float) -> None:
        """Fraction of delivered cells silently corrupted (dropped)."""
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"error rate {rate} out of [0, 1]")
        self._flush_due_trains()
        self.error_rate = rate

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<Link {self.port_a.label}<->{self.port_b.label} "
            f"{self.state.value}>"
        )
