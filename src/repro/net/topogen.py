"""Structured datacenter-scale topology generators.

The paper's installations are ad-hoc LANs (Figure 1: a redundant switch
core with dual-homed hosts), but the ROADMAP north-star is thousands of
switches -- and at that scale real networks are *structured*: multi-stage
Clos fabrics whose regularity is what makes routing, expansion, and
failure analysis tractable ("SCALABLE INTERNETWORKING", PAPERS.md).
This module generates the three standard shapes:

- :func:`fat_tree` -- the k-ary fat-tree: ``k`` pods of ``k/2`` edge and
  ``k/2`` aggregation switches over ``(k/2)^2`` core switches
  (``5k^2/4`` switches total; k=32 is 1280 switches),
- :func:`spine_leaf` -- the 2-tier leaf-spine fabric: every leaf cabled
  to every spine (optionally with multiple parallel cables),
- :func:`folded_clos` -- the classic folded 3-stage Clos(m, n, r):
  ``r`` leaf switches with ``n`` host-facing ports each and ``m``
  spine switches; ``m >= n`` makes the fabric rearrangeably nonblocking.

Every generator returns a :class:`StructuredTopology`: the plain
:class:`~repro.net.topology.Topology` (so everything downstream --
reconfiguration, routing, simulation -- works unchanged) plus the
structural metadata (per-switch tier and pod labels) that structured
algorithms (per-pod sharding, tier-aware root selection, expansion
planning) need and an ad-hoc topology cannot provide.

Switch numbering is deterministic and tier-contiguous (core/spine block
first, then pod by pod), so a given parameterization always produces the
identical ``Topology`` -- the same determinism contract as every other
generator in :mod:`repro.net.topology`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro._types import NodeId, switch_id
from repro.net.topology import Topology, TopologyError, TopologyView

#: Tier labels used by the generators.
TIER_CORE = "core"
TIER_AGGREGATION = "aggregation"
TIER_EDGE = "edge"
TIER_SPINE = "spine"
TIER_LEAF = "leaf"


@dataclass
class StructuredTopology:
    """A generated topology plus its structural metadata.

    ``tier`` maps every switch to its stage label and ``pod`` maps it to
    its pod index (``None`` for pod-less tiers: core and spine).  Hosts,
    when generated, appear in ``hosts_of`` keyed by their edge/leaf
    switch.
    """

    name: str
    params: Dict[str, int]
    topology: Topology
    tier: Dict[NodeId, str] = field(default_factory=dict)
    pod: Dict[NodeId, Optional[int]] = field(default_factory=dict)
    hosts_of: Dict[NodeId, List[NodeId]] = field(default_factory=dict)

    def view(self) -> TopologyView:
        return self.topology.view()

    def switches_in_tier(self, tier: str) -> List[NodeId]:
        return sorted(s for s, t in self.tier.items() if t == tier)

    def switches_in_pod(self, pod: int) -> List[NodeId]:
        return sorted(s for s, p in self.pod.items() if p == pod)

    def n_pods(self) -> int:
        return len({p for p in self.pod.values() if p is not None})

    def default_root(self) -> NodeId:
        """The deterministic up*/down* root for this fabric.

        The paper breaks level ties toward the higher-numbered switch;
        rooting at the *highest-numbered top-tier switch* keeps the
        orientation's up direction aligned with the physical up direction
        of the fabric (toward core/spine), which is what gives up*/down*
        full path diversity on a Clos.
        """
        top = self.switches_in_tier(
            TIER_CORE if TIER_CORE in self.tier.values() else TIER_SPINE
        )
        if not top:
            top = self.topology.switches()
        return top[-1]

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<StructuredTopology {self.name} {self.params} "
            f"switches={len(self.tier)}>"
        )


def fat_tree(
    k: int,
    hosts_per_edge: int = 0,
    length_km: float = 0.1,
    host_length_km: float = 0.05,
) -> StructuredTopology:
    """The k-ary fat-tree (Al-Fares et al. numbering, AN2 cabling rules).

    ``k`` even, >= 2: ``(k/2)^2`` core switches, ``k`` pods each holding
    ``k/2`` aggregation and ``k/2`` edge switches.  Edge switch ``j`` of a
    pod cables to every aggregation switch of its pod; aggregation switch
    ``j`` cables to core group ``j`` (core switches ``j*k/2 ..
    (j+1)*k/2-1``).  Every switch is built with exactly ``k`` ports, the
    defining fat-tree property.

    ``hosts_per_edge`` (up to ``k/2``) attaches that many single-homed
    hosts to every edge switch -- at full fan-out the fabric serves
    ``k^3/4`` hosts.
    """
    if k < 2 or k % 2:
        raise TopologyError(f"fat_tree needs an even k >= 2, got {k}")
    half = k // 2
    if hosts_per_edge > half:
        raise TopologyError(
            f"fat_tree(k={k}) edge switches have {half} host-facing "
            f"ports, cannot attach {hosts_per_edge} hosts"
        )
    topo = Topology()
    tier: Dict[NodeId, str] = {}
    pod: Dict[NodeId, Optional[int]] = {}
    n_core = half * half
    core = [topo.add_switch(i, ports=k) for i in range(n_core)]
    for s in core:
        tier[s] = TIER_CORE
        pod[s] = None
    aggs: Dict[int, List[NodeId]] = {}
    edges: Dict[int, List[NodeId]] = {}
    for p in range(k):
        base = n_core + p * k
        aggs[p] = [topo.add_switch(base + j, ports=k) for j in range(half)]
        edges[p] = [
            topo.add_switch(base + half + j, ports=k) for j in range(half)
        ]
        for s in aggs[p]:
            tier[s] = TIER_AGGREGATION
            pod[s] = p
        for s in edges[p]:
            tier[s] = TIER_EDGE
            pod[s] = p
    for p in range(k):
        for edge_switch in edges[p]:
            for agg_switch in aggs[p]:
                topo.connect(edge_switch, agg_switch, length_km=length_km)
        for j, agg_switch in enumerate(aggs[p]):
            for c in range(j * half, (j + 1) * half):
                topo.connect(agg_switch, core[c], length_km=length_km)
    hosts_of: Dict[NodeId, List[NodeId]] = {}
    host_num = 0
    for p in range(k):
        for edge_switch in edges[p]:
            attached: List[NodeId] = []
            for _ in range(hosts_per_edge):
                host = topo.add_host(host_num)
                host_num += 1
                topo.connect(
                    host, edge_switch, port_a=0, length_km=host_length_km
                )
                attached.append(host)
            if attached:
                hosts_of[edge_switch] = attached
    return StructuredTopology(
        name="fat_tree",
        params={"k": k, "hosts_per_edge": hosts_per_edge},
        topology=topo,
        tier=tier,
        pod=pod,
        hosts_of=hosts_of,
    )


def spine_leaf(
    n_spines: int,
    n_leaves: int,
    hosts_per_leaf: int = 0,
    links_per_pair: int = 1,
    leaf_spare_ports: int = 0,
    length_km: float = 0.1,
    host_length_km: float = 0.05,
) -> StructuredTopology:
    """A 2-tier spine-leaf fabric: every leaf cabled to every spine.

    ``links_per_pair`` lays that many parallel cables per (spine, leaf)
    pair -- the standard way to widen a small spine tier without adding
    switches.  Spines get ``n_leaves * links_per_pair`` ports; leaves get
    ``n_spines * links_per_pair + hosts_per_leaf + leaf_spare_ports``
    (spare ports stay uncabled, reserved for later expansion).
    """
    if n_spines < 1 or n_leaves < 1:
        raise TopologyError(
            f"spine_leaf needs >= 1 spine and leaf, got "
            f"{n_spines}x{n_leaves}"
        )
    if links_per_pair < 1:
        raise TopologyError(f"links_per_pair must be >= 1, got {links_per_pair}")
    if leaf_spare_ports < 0:
        raise TopologyError(
            f"leaf_spare_ports must be >= 0, got {leaf_spare_ports}"
        )
    topo = Topology()
    tier: Dict[NodeId, str] = {}
    pod: Dict[NodeId, Optional[int]] = {}
    spine_ports = n_leaves * links_per_pair
    leaf_ports = n_spines * links_per_pair + hosts_per_leaf + leaf_spare_ports
    spines = [topo.add_switch(i, ports=spine_ports) for i in range(n_spines)]
    leaves = [
        topo.add_switch(n_spines + i, ports=leaf_ports)
        for i in range(n_leaves)
    ]
    for s in spines:
        tier[s] = TIER_SPINE
        pod[s] = None
    for index, leaf in enumerate(leaves):
        tier[leaf] = TIER_LEAF
        pod[leaf] = index
    for leaf in leaves:
        for spine in spines:
            for _ in range(links_per_pair):
                topo.connect(leaf, spine, length_km=length_km)
    hosts_of: Dict[NodeId, List[NodeId]] = {}
    host_num = 0
    for leaf in leaves:
        attached: List[NodeId] = []
        for _ in range(hosts_per_leaf):
            host = topo.add_host(host_num)
            host_num += 1
            topo.connect(host, leaf, port_a=0, length_km=host_length_km)
            attached.append(host)
        if attached:
            hosts_of[leaf] = attached
    return StructuredTopology(
        name="spine_leaf",
        params={
            "n_spines": n_spines,
            "n_leaves": n_leaves,
            "hosts_per_leaf": hosts_per_leaf,
            "links_per_pair": links_per_pair,
        },
        topology=topo,
        tier=tier,
        pod=pod,
        hosts_of=hosts_of,
    )


def folded_clos(
    m: int,
    n: int,
    r: int,
    attach_hosts: bool = False,
    length_km: float = 0.1,
    host_length_km: float = 0.05,
) -> StructuredTopology:
    """The folded 3-stage Clos(m, n, r).

    ``r`` leaf switches each expose ``n`` host-facing ports and ``m``
    uplinks (one to each of the ``m`` spine switches); the unfolded
    ingress and egress stages share the leaf hardware.  ``m >= n`` gives
    the rearrangeably-nonblocking fabric of Clos's theorem -- the same
    property the paper's crossbar scheduling leans on at switch scale,
    here at fabric scale.  With ``attach_hosts`` every leaf fills its
    ``n`` host ports.
    """
    if m < 1 or n < 1 or r < 1:
        raise TopologyError(f"folded_clos needs m, n, r >= 1, got {m},{n},{r}")
    # A folded Clos *is* a spine-leaf with the (m, n, r) parameterization
    # made explicit; leaves reserve their n host ports even when
    # unpopulated, so the fabric's nonblocking ratio m/n is physical.
    structured = spine_leaf(
        n_spines=m,
        n_leaves=r,
        hosts_per_leaf=n if attach_hosts else 0,
        leaf_spare_ports=0 if attach_hosts else n,
        length_km=length_km,
        host_length_km=host_length_km,
    )
    return StructuredTopology(
        name="folded_clos",
        params={"m": m, "n": n, "r": r, "attach_hosts": int(attach_hosts)},
        topology=structured.topology,
        tier=structured.tier,
        pod=structured.pod,
        hosts_of=structured.hosts_of,
    )
