"""Hosts and their network controllers.

Section 1: "Each host has a controller which serves as its interface to
the network...  a host presents packets to its controller, which
disassembles them into cells to transmit to the network.  The controller
at the receiving host will re-assemble the cells into packets."  And:
"Each host has links to two different switches.  Only one link is in
active use at any time; the other is an alternate to be used if the first
fails."

The controller here:

- segments outgoing packets (AAL5-style) and paces cells onto the active
  link -- best-effort circuits under credit flow control, guaranteed
  circuits under strict CBR pacing ("The network controller prevents a
  host from sending more than its reserved bandwidth", section 5),
- reassembles incoming cells, returning a credit per best-effort cell
  (the host buffer drains instantly into memory),
- answers pings and monitors its own links, failing over to the
  alternate port when the skeptic declares the active link dead.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional

from repro._types import NodeId, VcId
from repro.core.flowcontrol.credits import UpstreamCredits
from repro.core.flowcontrol.resync import ResyncReply, ResyncRequest, ResyncState
from repro.core.flowcontrol.sizing import credits_for_link
from repro.core.reconfig.monitor import PortMonitor, make_ack
from repro.core.reconfig.skeptic import LinkVerdict, Skeptic
from repro.core.routing.signaling import SetupRequest, TeardownRequest
from repro.net.aal import Reassembler, ReassemblyError, Segmenter
from repro.net.cell import Cell, CellKind, TrafficClass
from repro.obs.journey import attach_journey
from repro.net.node import Node
from repro.net.packet import Packet
from repro.net.port import Port
from repro.sim.kernel import Simulator
from repro.sim.monitor import Tally
from repro.sim.process import Signal
from repro.sim.random import RandomStreams


@dataclass
class HostConfig:
    ping_interval_us: float = 1_000.0
    ack_timeout_us: float = 400.0
    miss_threshold: int = 3
    skeptic_base_wait_us: float = 10_000.0
    skeptic_max_level: int = 8
    skeptic_decay_us: float = 1_000_000.0
    credit_allocation: Optional[int] = None
    ping_reply_delay_us: float = 1.0
    frame_slots: int = 1024
    #: after failing over to the alternate link, automatically re-emit
    #: setup cells for open best-effort circuits (guaranteed circuits
    #: need re-admission and are left to the application).
    auto_reopen_on_failover: bool = True
    #: "credits" (AN2) or "drop" (send at link rate, let switches drop;
    #: must match the switches' SwitchConfig.flow_control).
    flow_control: str = "credits"
    #: cell time used for guaranteed pacing; derived from the active link
    #: when ``None``.
    cell_time_us: Optional[float] = None


@dataclass
class _Sender:
    """Per-circuit transmit state."""

    vc: VcId
    destination: NodeId
    traffic_class: TrafficClass
    segmenter: Segmenter
    queue: Deque[Cell] = field(default_factory=deque)
    upstream: Optional[UpstreamCredits] = None
    resync: Optional[ResyncState] = None
    cells_per_frame: int = 0
    cells_sent: int = 0
    pacer_running: bool = False


class Host(Node):
    """A dual-homed host with its AN2 controller."""

    def __init__(
        self,
        sim: Simulator,
        node_id: NodeId,
        streams: RandomStreams,
        config: Optional[HostConfig] = None,
        n_ports: int = 2,
        registry=None,
    ) -> None:
        super().__init__(sim, node_id, n_ports)
        self.streams = streams
        self.config = config if config is not None else HostConfig()
        self.active_port_index = 0
        self.senders: Dict[VcId, _Sender] = {}
        self.reassembler = Reassembler()
        self.delivered: List[Packet] = []
        self._probes = (
            registry.node(f"host.{node_id}") if registry is not None else None
        )
        if self._probes is not None:
            self.packet_latency = self._probes.tally("packet_latency")
            self._probes.gauge("cells_received", lambda: self.cells_received)
            self._probes.gauge(
                "reassembly_errors", lambda: self.reassembly_errors
            )
            self._probes.gauge("packets_delivered", lambda: len(self.delivered))
            self._probes.gauge("queued_cells", self.queued_cells)
        else:
            self.packet_latency = Tally(f"{node_id}.packet_latency")
        self.cell_latency: Dict[VcId, Tally] = {}
        self.cell_arrivals: Dict[VcId, List[float]] = {}
        self.packet_delivered = Signal(f"{node_id}.packet_delivered")
        self.setup_received = Signal(f"{node_id}.setup_received")
        self.failover = Signal(f"{node_id}.failover")
        self.incoming_circuits: Dict[VcId, SetupRequest] = {}
        #: outcomes of distributed bandwidth reservations we originated.
        self.reservation_outcomes: Dict[VcId, str] = {}
        self.reservation_decided = Signal(f"{node_id}.reservation_decided")
        self.received_counts: Dict[VcId, int] = {}
        self.reassembly_errors = 0
        self.cells_received = 0
        self.monitors: Dict[int, PortMonitor] = {}
        self._pump_scheduled = False
        self._rotation: Deque[VcId] = deque()
        self._started = False

    # ==================================================================
    @property
    def active_port(self) -> Port:
        return self.ports[self.active_port_index]

    def start(self) -> None:
        """Begin monitoring the host's links (enables failover)."""
        if self._started:
            return
        self._started = True
        jitter = self.streams.stream(f"{self.node_id}.jitter")
        for port in self.ports:
            if not port.connected:
                continue
            skeptic = Skeptic(
                base_wait_us=self.config.skeptic_base_wait_us,
                max_level=self.config.skeptic_max_level,
                decay_interval_us=self.config.skeptic_decay_us,
                on_verdict=self._verdict_handler(port.index),
            )
            monitor = PortMonitor(
                self.sim,
                self.node_id,
                port,
                skeptic,
                ping_interval_us=self.config.ping_interval_us,
                ack_timeout_us=self.config.ack_timeout_us,
                miss_threshold=self.config.miss_threshold,
                start_offset_us=jitter.uniform(0, self.config.ping_interval_us),
            )
            self.monitors[port.index] = monitor
            monitor.start()

    def _verdict_handler(self, port_index: int):
        def handler(verdict: LinkVerdict, now: float) -> None:
            if (
                verdict is LinkVerdict.DEAD
                and port_index == self.active_port_index
            ):
                self._fail_over()

        return handler

    def _fail_over(self) -> None:
        """Switch to the alternate link; optionally re-open circuits."""
        for candidate in self.ports:
            if candidate.index == self.active_port_index:
                continue
            if candidate.connected:
                self.active_port_index = candidate.index
                if self.config.auto_reopen_on_failover:
                    self._reopen_circuits()
                self.failover.fire(candidate.index)
                return

    def _reopen_circuits(self) -> None:
        """Re-emit setup cells for open best-effort circuits on the new
        active link.  Cells in flight on the old path are lost (their
        packets surface as reassembly errors); queued cells follow the
        new path once its entries install."""
        for vc, sender in self.senders.items():
            if sender.traffic_class is not TrafficClass.BEST_EFFORT:
                continue
            # Fresh credit window for the fresh first hop: the old
            # window's outstanding cells died with the old link.
            if self.config.flow_control == "credits":
                allocation = self._allocation()
                sender.upstream = UpstreamCredits(
                    allocation, trace=self._make_credit_trace(vc)
                )
                sender.resync = ResyncState(vc, sender.upstream)
            self.active_port.send(
                Cell(
                    vc=1,
                    kind=CellKind.SIGNALING,
                    payload=SetupRequest(
                        vc=vc,
                        source=self.node_id,
                        destination=sender.destination,
                        traffic_class=sender.traffic_class,
                    ),
                )
            )
        self._kick_pump()

    # ==================================================================
    # circuit management
    # ==================================================================
    def open_circuit(
        self,
        vc: VcId,
        destination: NodeId,
        traffic_class: TrafficClass = TrafficClass.BEST_EFFORT,
        cells_per_frame: int = 0,
        send_setup: bool = True,
    ) -> None:
        """Create transmit state for a circuit and emit its setup cell."""
        if vc in self.senders:
            raise ValueError(f"circuit {vc} already open at {self.node_id}")
        if traffic_class is TrafficClass.GUARANTEED and cells_per_frame <= 0:
            raise ValueError("guaranteed circuits need cells_per_frame > 0")
        sender = _Sender(
            vc=vc,
            destination=destination,
            traffic_class=traffic_class,
            segmenter=Segmenter(vc, traffic_class),
            cells_per_frame=cells_per_frame,
        )
        if traffic_class is TrafficClass.BEST_EFFORT:
            if self.config.flow_control == "credits":
                allocation = self._allocation()
                sender.upstream = UpstreamCredits(
                    allocation, trace=self._make_credit_trace(vc)
                )
                sender.resync = ResyncState(vc, sender.upstream)
            self._rotation.append(vc)
        self.senders[vc] = sender
        if send_setup:
            request = SetupRequest(
                vc=vc,
                source=self.node_id,
                destination=destination,
                traffic_class=traffic_class,
            )
            self.active_port.send(
                Cell(vc=1, kind=CellKind.SIGNALING, payload=request)
            )

    def close_circuit(self, vc: VcId, send_teardown: bool = True) -> None:
        sender = self.senders.pop(vc, None)
        if sender is None:
            return
        if vc in self._rotation:
            self._rotation.remove(vc)
        if send_teardown and self.active_port.connected:
            self.active_port.send(
                Cell(vc=1, kind=CellKind.SIGNALING, payload=TeardownRequest(vc))
            )

    def _make_credit_trace(self, vc: VcId):
        """Credit-state trace hook for one circuit; ``None`` (no send-path
        overhead) when no tracer is attached at circuit-open time."""
        sim = self.sim
        if sim.tracer is None:
            return None
        component = str(self.node_id)

        def hook(name: str, payload: dict) -> None:
            tracer = sim.tracer
            if tracer is not None:
                tracer.emit(
                    sim.now, "flowcontrol", component, name, vc=vc, **payload
                )

        return hook

    def _allocation(self) -> int:
        if self.config.credit_allocation is not None:
            return self.config.credit_allocation
        link = self.active_port.link
        if link is None:
            return 4
        return credits_for_link(link.length_km, link.bps)

    # ==================================================================
    # transmit path
    # ==================================================================
    def send_packet(self, vc: VcId, packet: Packet) -> None:
        """Queue a packet for transmission on an open circuit."""
        sender = self.senders.get(vc)
        if sender is None:
            raise KeyError(f"no open circuit {vc} at {self.node_id}")
        packet.created_at = self.sim.now
        cells = sender.segmenter.segment(packet, now=self.sim.now)
        tracer = self.sim.tracer
        if tracer is not None and tracer.enabled("journey"):
            attach_journey(tracer, cells, self.sim.now, str(self.node_id))
        sender.queue.extend(cells)
        if sender.traffic_class is TrafficClass.GUARANTEED:
            self._start_pacer(sender)
        else:
            self._kick_pump()

    def send_raw_cells(self, vc: VcId, count: int) -> None:
        """Queue synthetic single-cell payloads (benchmark workloads)."""
        sender = self.senders.get(vc)
        if sender is None:
            raise KeyError(f"no open circuit {vc} at {self.node_id}")
        tracer = self.sim.tracer
        journeys = tracer is not None and tracer.enabled("journey")
        for _ in range(count):
            packet = Packet(
                source=self.node_id,
                destination=sender.destination,
                payload=b"",
                size=1,
                created_at=self.sim.now,
            )
            cells = sender.segmenter.segment(packet, now=self.sim.now)
            if journeys:
                attach_journey(tracer, cells, self.sim.now, str(self.node_id))
            sender.queue.extend(cells)
        if sender.traffic_class is TrafficClass.GUARANTEED:
            self._start_pacer(sender)
        else:
            self._kick_pump()

    # ------------------------------------------------------------------
    # best-effort pump: round-robin over credited circuits at link rate
    # ------------------------------------------------------------------
    def _kick_pump(self) -> None:
        if self._pump_scheduled:
            return
        self._pump_scheduled = True
        self.sim.schedule(0.0, self._pump)

    def _pump(self) -> None:
        self._pump_scheduled = False
        port = self.active_port
        if not port.connected:
            return
        now = self.sim.now
        if not port.can_transmit_at(now):
            assert port.link is not None
            if not port.link.working:
                # Dead link: do not spin.  Failover (or restoration)
                # kicks the pump again when there is a path.
                return
            # Link busy: retry when the current cell finishes serializing.
            delay = max(port.link.next_free(port._direction) - now, 0.0)
            self._pump_scheduled = True
            self.sim.schedule(delay + 1e-6, self._pump)
            return
        sent = False
        for _ in range(len(self._rotation)):
            vc = self._rotation[0]
            self._rotation.rotate(-1)
            sender = self.senders.get(vc)
            if sender is None or not sender.queue:
                continue
            if sender.upstream is not None and not sender.upstream.can_send:
                if sender.upstream.note_stall():
                    # New stall episode (not a repeat of a blocked pump
                    # pass): worth a flight-recorder entry.
                    recorder = self.sim.recorder
                    if recorder is not None:
                        recorder.record(
                            now, f"host.{self.node_id}", "credit.stall",
                            vc=int(vc), stalls=sender.upstream.stalls,
                        )
                continue
            cell = sender.queue.popleft()
            if sender.upstream is not None:
                sender.upstream.consume()
            sender.cells_sent += 1
            if cell.trace_ctx is not None:
                cell.trace_ctx.record(
                    now, str(self.node_id), "tx", port=port.index
                )
            port.send(cell)
            sent = True
            break
        if sent or any(
            s.queue
            and (s.upstream is None or s.upstream.can_send)
            and s.traffic_class is TrafficClass.BEST_EFFORT
            for s in self.senders.values()
        ):
            # More work now or soon: pace at the link's cell time.
            assert port.link is not None
            self._pump_scheduled = True
            self.sim.schedule(port.link.cell_time_us, self._pump)

    # ------------------------------------------------------------------
    # guaranteed pacer: strict CBR, one cell every frame/k
    # ------------------------------------------------------------------
    def _start_pacer(self, sender: _Sender) -> None:
        if sender.pacer_running:
            return
        sender.pacer_running = True
        self.sim.schedule(0.0, self._pace, sender.vc)

    def _pace(self, vc: VcId) -> None:
        sender = self.senders.get(vc)
        if sender is None:
            return
        port = self.active_port
        if sender.queue and port.connected:
            cell = sender.queue.popleft()
            # Guaranteed latency is measured from network entry: the
            # p*(2f+l) bound (section 4) is about transit, not about how
            # long the application queued behind its own reserved rate.
            cell.created_at = self.sim.now
            sender.cells_sent += 1
            if cell.trace_ctx is not None:
                cell.trace_ctx.record(
                    self.sim.now, str(self.node_id), "tx", port=port.index
                )
            port.send(cell)
        if sender.queue:
            cell_time = self.config.cell_time_us
            if cell_time is None:
                assert port.link is not None
                cell_time = port.link.cell_time_us
            interval = (
                self.config.frame_slots * cell_time / sender.cells_per_frame
            )
            self.sim.schedule(interval, self._pace, vc)
        else:
            sender.pacer_running = False

    # ==================================================================
    # receive path
    # ==================================================================
    def on_cell(self, port: Port, cell: Cell) -> None:
        kind = cell.kind
        if kind is CellKind.DATA:
            self._accept_data(port, cell)
        elif kind is CellKind.CREDIT:
            self._accept_credit(port, cell)
        elif kind is CellKind.PING:
            self.sim.schedule(
                self.config.ping_reply_delay_us,
                self._reply_ping,
                port.index,
                cell.payload,
            )
        elif kind is CellKind.PING_ACK:
            monitor = self.monitors.get(port.index)
            if monitor is not None:
                monitor.on_ack(cell.payload)
        elif kind is CellKind.SIGNALING:
            self._accept_signaling(cell.payload, port=port)
        elif kind is CellKind.RECONFIG:
            pass  # hosts do not participate in reconfiguration
        else:
            raise ValueError(f"host cannot handle cell kind {kind}")

    def _reply_ping(self, port_index: int, payload) -> None:
        port = self.ports[port_index]
        if port.connected:
            ack = make_ack(payload, self.node_id, port_index)
            port.send(Cell(vc=0, kind=CellKind.PING_ACK, payload=ack))

    def _accept_data(self, port: Port, cell: Cell) -> None:
        self.cells_received += 1
        self.received_counts[cell.vc] = self.received_counts.get(cell.vc, 0) + 1
        if (
            cell.traffic_class is TrafficClass.BEST_EFFORT
            and self.config.flow_control == "credits"
        ):
            # The controller drains cells into host memory immediately, so
            # the buffer is free the moment the cell arrives.
            port.send(Cell(vc=cell.vc, kind=CellKind.CREDIT, payload=1))
        tally = self.cell_latency.get(cell.vc)
        if tally is None:
            if self._probes is not None:
                tally = self._probes.tally(f"vc{cell.vc}.cell_latency")
            else:
                tally = Tally(f"vc{cell.vc}.cell_latency")
            self.cell_latency[cell.vc] = tally
        tally.record(self.sim.now - cell.created_at)
        self.cell_arrivals.setdefault(cell.vc, []).append(self.sim.now)
        ctx = cell.trace_ctx
        if ctx is not None:
            ctx.record(
                self.sim.now, str(self.node_id), "deliver",
                latency=self.sim.now - cell.created_at,
            )
        aborted_before = self.reassembler.packets_aborted
        try:
            packet = self.reassembler.accept(cell)
        except ReassemblyError:
            self.reassembly_errors += 1
            recorder = self.sim.recorder
            if recorder is not None:
                recorder.record(
                    self.sim.now, f"host.{self.node_id}",
                    "reassembly.error", vc=int(cell.vc), seq=cell.seq,
                )
            return
        # A stale partial discarded during seq-0 resynchronization is a
        # corrupted packet too, even though the cell itself was accepted.
        aborted = self.reassembler.packets_aborted - aborted_before
        self.reassembly_errors += aborted
        if aborted:
            recorder = self.sim.recorder
            if recorder is not None:
                recorder.record(
                    self.sim.now, f"host.{self.node_id}",
                    "reassembly.abort", vc=int(cell.vc), aborted=aborted,
                )
        if packet is not None:
            packet.delivered_at = self.sim.now
            self.delivered.append(packet)
            self.packet_latency.record(packet.latency)
            if ctx is not None:
                ctx.record(
                    self.sim.now, str(self.node_id), "packet.done",
                    latency=packet.latency,
                )
            self.packet_delivered.fire(packet)

    def _accept_credit(self, port: Port, cell: Cell) -> None:
        payload = cell.payload
        if isinstance(payload, ResyncRequest):
            freed = self.received_counts.get(payload.vc, 0)
            port.send(
                Cell(
                    vc=payload.vc,
                    kind=CellKind.CREDIT,
                    payload=ResyncReply(payload.vc, payload.cells_sent, freed),
                )
            )
            return
        if isinstance(payload, ResyncReply):
            sender = self.senders.get(payload.vc)
            if sender is not None and sender.resync is not None:
                recovered = sender.resync.apply_reply(payload)
                if recovered:
                    if self.sim.tracer is not None:
                        self.sim.tracer.emit(
                            self.sim.now, "flowcontrol", str(self.node_id),
                            "resync.recovered",
                            vc=payload.vc, recovered=recovered,
                        )
                    recorder = self.sim.recorder
                    if recorder is not None:
                        recorder.record(
                            self.sim.now, f"host.{self.node_id}",
                            "resync.recovered",
                            vc=int(payload.vc), recovered=recovered,
                        )
                    self._kick_pump()
            return
        sender = self.senders.get(cell.vc)
        if sender is None or sender.upstream is None:
            return
        sender.upstream.credit(payload if isinstance(payload, int) else 1)
        self._kick_pump()

    def _accept_signaling(self, message, port: Optional[Port] = None) -> None:
        from repro.core.guaranteed.distributed import (
            ReserveConfirm,
            ReserveReject,
            ReserveRequest,
        )

        from repro.core.routing.multicast import MulticastSetupRequest

        if isinstance(message, SetupRequest):
            self.incoming_circuits[message.vc] = message
            self.setup_received.fire(message)
        elif isinstance(message, MulticastSetupRequest):
            if self.node_id in message.destinations:
                self.incoming_circuits[message.vc] = SetupRequest(
                    vc=message.vc,
                    source=message.source,
                    destination=self.node_id,
                )
                self.setup_received.fire(message)
        elif isinstance(message, TeardownRequest):
            self.incoming_circuits.pop(message.vc, None)
            self.reassembler.abort(message.vc)
        elif isinstance(message, ReserveRequest):
            # We are the destination: the reservation reached us; confirm
            # back along the path.
            self.incoming_circuits[message.vc] = SetupRequest(
                vc=message.vc,
                source=message.source,
                destination=message.destination,
                traffic_class=TrafficClass.GUARANTEED,
            )
            self.setup_received.fire(message)
            if port is not None:
                port.send(
                    Cell(
                        vc=1,
                        kind=CellKind.SIGNALING,
                        payload=ReserveConfirm(message.vc),
                    )
                )
        elif isinstance(message, ReserveConfirm):
            self.reservation_outcomes[message.vc] = "granted"
            self.reservation_decided.fire((message.vc, "granted"))
        elif isinstance(message, ReserveReject):
            self.reservation_outcomes[message.vc] = f"rejected: {message.reason}"
            self.reservation_decided.fire((message.vc, "rejected"))

    # ==================================================================
    def queued_cells(self) -> int:
        return sum(len(s.queue) for s in self.senders.values())

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Host {self.node_id} active=p{self.active_port_index}>"
