"""Assembling and operating a whole AN2 installation.

:class:`Network` instantiates a :class:`~repro.net.topology.Topology`
description into live simulated switches, hosts, and links, then provides
the operator-level verbs the experiments and examples need: boot, wait for
reconfiguration convergence, set up circuits, reserve bandwidth, pull the
plug on links and switches, and read statistics back out.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple

from repro._types import NodeId, NodeRef, parse_node_id
from repro.constants import FAST_LINK_BPS
from repro.core.guaranteed.bandwidth_central import (
    BandwidthCentral,
    Reservation,
)
from repro.core.routing.circuits import (
    CircuitState,
    VcAllocator,
    VirtualCircuit,
)
from repro.core.routing.signaling import SetupRequest
from repro.net.cell import TrafficClass
from repro.net.host import Host, HostConfig
from repro.net.link import Link
from repro.net.topology import Edge, Topology, TopologyView
from repro.sim.kernel import Simulator
from repro.sim.random import RandomStreams
from repro.switch.switch import AN2Switch, SwitchConfig

import repro.obs as obs
from repro.obs import FlightRecorder, MetricsRegistry


class NetworkError(Exception):
    """Operational failure: convergence timeout, unknown node..."""


class Network:
    """A running AN2 installation."""

    def __init__(
        self,
        topology: Topology,
        seed: int = 0,
        switch_config: Optional[SwitchConfig] = None,
        host_config: Optional[HostConfig] = None,
        drift_ppm: float = 0.0,
        batch_cell_trains: bool = False,
        fabric_slot_driver: bool = False,
    ) -> None:
        """Args:
            topology: the connection pattern to instantiate.
            seed: root of all randomness in the installation.
            switch_config / host_config: shared device configurations.
            drift_ppm: if non-zero, each switch's slot clock rate is drawn
                uniformly from [-drift_ppm, +drift_ppm] (the asynchronous-
                network regime of section 4).
            batch_cell_trains: build every link with cell-train delivery
                batching (see :class:`~repro.net.link.Link`).  Delivered
                and dropped cell sets are unchanged; kernel event counts
                drop for bursty traffic.  Off by default because the
                frozen replay digests record the per-cell event schedule.
            fabric_slot_driver: coalesce all drift-free switches' slot
                timers into one :class:`~repro.fastpath.FabricSlotDriver`
                wave event per slot (DESIGN §13).  Switches with clock
                drift keep their private timers.  Off by default: the
                wave models a fabric-wide synchronized slot clock, so
                event schedules (and digests) differ from per-switch
                timing while delivered traffic does not.
        """
        self.topology = topology
        self.sim = Simulator()
        self.registry = MetricsRegistry()
        # Always-on flight recorder: bounded rings of recent protocol
        # events (epochs, verdicts, stalls, resync, link state), read
        # only when something dies or a dump is requested.  Lives on a
        # plain Simulator attribute, so the kernel hot loop is untouched.
        self.recorder = FlightRecorder()
        self.sim.recorder = self.recorder
        cap = obs.active_capture()
        if cap is not None:
            # Built inside an observability capture (e.g. pytest
            # --trace-out): trace into its buffer, report our metrics.
            self.sim.tracer = cap.tracer
            cap.adopt(self.registry)
        self.streams = RandomStreams(seed)
        base_config = switch_config if switch_config is not None else SwitchConfig()
        self.switch_config = base_config
        if host_config is None:
            # Hosts must pace guaranteed circuits against the same frame
            # length the switches schedule with.
            host_config = HostConfig(frame_slots=base_config.frame_slots)
        self.host_config = host_config
        self.switches: Dict[NodeId, AN2Switch] = {}
        self.hosts: Dict[NodeId, Host] = {}
        self.links: Dict[Edge, Link] = {}
        self.vc_allocator = VcAllocator()
        self.circuits: Dict[int, VirtualCircuit] = {}
        drift_rng = self.streams.stream("clock_drift")
        self.slot_driver = None
        if fabric_slot_driver:
            from repro.fastpath.driver import FabricSlotDriver

            self.slot_driver = FabricSlotDriver(
                self.sim, base_config.slot_time_us
            )

        for node in topology.switches():
            config = base_config
            if drift_ppm:
                config = dataclasses.replace(
                    base_config,
                    clock_drift_ppm=drift_rng.uniform(-drift_ppm, drift_ppm),
                )
            self.switches[node] = AN2Switch(
                self.sim,
                node,
                self.streams.fork(str(node)),
                config=config,
                n_ports=topology.ports_of(node),
                registry=self.registry,
            )
            if self.slot_driver is not None:
                self.slot_driver.adopt(self.switches[node])
        for node in topology.hosts():
            self.hosts[node] = Host(
                self.sim,
                node,
                self.streams.fork(str(node)),
                config=self.host_config,
                n_ports=topology.ports_of(node),
                registry=self.registry,
            )
        for spec in topology.cables():
            (node_a, pa), (node_b, pb) = spec.endpoints
            port_a = self.node(node_a).port(pa)
            port_b = self.node(node_b).port(pb)
            link = Link(
                self.sim,
                port_a,
                port_b,
                length_km=spec.length_km,
                bps=spec.bps,
                rng=self.streams.stream(f"link.{node_a}.{pa}.{node_b}.{pb}"),
                batch_trains=batch_cell_trains,
            )
            self.links[spec.endpoints] = link
            self._watch_link(f"link.{node_a}.{pa}-{node_b}.{pb}", link)
        self._started = False

    def _watch_link(self, label: str, link: Link) -> None:
        """Flight-record every state change of ``link`` under ``label``."""

        def observer(_link: Link, state) -> None:
            self.recorder.record(
                self.sim.now, label, "link.state", state=state.value
            )

        link.state_observers.append(observer)

    # ==================================================================
    # access
    # ==================================================================
    def node(self, ref: NodeRef):
        node_id = parse_node_id(ref)
        if node_id.is_switch:
            return self.switches[node_id]
        return self.hosts[node_id]

    def switch(self, ref: NodeRef) -> AN2Switch:
        return self.switches[parse_node_id(ref)]

    def host(self, ref: NodeRef) -> Host:
        return self.hosts[parse_node_id(ref)]

    def link_between(self, a: NodeRef, b: NodeRef) -> Link:
        """The (first) cable between two nodes."""
        node_a, node_b = parse_node_id(a), parse_node_id(b)
        for edge, link in sorted(self.links.items()):
            (na, _), (nb, _) = edge
            if {na, nb} == {node_a, node_b}:
                return link
        raise NetworkError(f"no cable between {node_a} and {node_b}")

    @property
    def now(self) -> float:
        return self.sim.now

    # ==================================================================
    # lifecycle
    # ==================================================================
    def start(self) -> None:
        """Boot every device.  Each switch triggers a reconfiguration once
        its neighbor-discovery pings have answered."""
        if self._started:
            return
        self._started = True
        for switch in self.switches.values():
            switch.start()
        for host in self.hosts.values():
            host.start()

    def run(self, duration_us: float) -> None:
        """Advance simulated time by ``duration_us``."""
        self.sim.run(until=self.sim.now + duration_us)

    def run_until(
        self,
        predicate,
        timeout_us: float = 1_000_000.0,
        check_interval_us: float = 500.0,
    ) -> float:
        """Run until ``predicate()`` holds; returns the time it first held.

        Raises :class:`NetworkError` on timeout.
        """
        deadline = self.sim.now + timeout_us
        while self.sim.now < deadline:
            if predicate():
                return self.sim.now
            self.sim.run(
                until=min(self.sim.now + check_interval_us, deadline)
            )
        if predicate():
            return self.sim.now
        raise NetworkError(f"condition not reached within {timeout_us} us")

    # ==================================================================
    # reconfiguration-level operations
    # ==================================================================
    def converged(self) -> bool:
        """Every switch is idle and every epoch group is self-consistent.

        After a partition, the fragments converge to *different* views;
        each group sharing a view tag must (a) be idle, (b) agree on the
        view, and (c) be exactly the switch set its view describes.  For
        "has the network re-learned reality" (the pull-the-plug demo) use
        :meth:`fully_reconfigured`.
        """
        groups: Dict[object, List] = {}
        for switch in self.switches.values():
            agent = switch.reconfig
            if agent.active or agent.view_tag is None:
                return False
            groups.setdefault(agent.view_tag, []).append(agent)
        for agents in groups.values():
            views = {a.view for a in agents}
            if len(views) != 1:
                return False
            view = agents[0].view
            assert view is not None
            members = {a.node_id for a in agents}
            view_switches = set(view.switches())
            if view_switches:
                if view_switches != members:
                    return False
            elif len(members) != 1:
                return False
        return True

    def main_component_switches(self) -> List[NodeId]:
        """Switches of the largest working partition (ground truth)."""
        adjacency: Dict[NodeId, List[NodeId]] = {
            s: [] for s in self.switches
        }
        for edge, link in self.links.items():
            (na, _), (nb, _) = edge
            if link.working and na.is_switch and nb.is_switch:
                adjacency[na].append(nb)
                adjacency[nb].append(na)
        seen: Dict[NodeId, int] = {}
        components: List[List[NodeId]] = []
        for start in sorted(adjacency):
            if start in seen:
                continue
            component = [start]
            seen[start] = len(components)
            frontier = [start]
            while frontier:
                node = frontier.pop()
                for neighbor in adjacency[node]:
                    if neighbor not in seen:
                        seen[neighbor] = len(components)
                        component.append(neighbor)
                        frontier.append(neighbor)
            components.append(component)
        return sorted(max(components, key=len)) if components else []

    def expected_view_for(self, component: List[NodeId]) -> TopologyView:
        """Working edges a given switch partition should discover."""
        members = set(component)
        edges = set()
        for edge, link in self.links.items():
            if not link.working:
                continue
            (na, _), (nb, _) = edge
            switch_ends = [n for n in (na, nb) if n.is_switch]
            if all(n in members for n in switch_ends) and switch_ends:
                edges.add(edge)
        return TopologyView(frozenset(edges))

    def fully_reconfigured(self) -> bool:
        """The largest working partition is idle and its shared view
        matches physical reality -- the success condition of the paper's
        pull-the-plug demo."""
        component = self.main_component_switches()
        if not component:
            return False
        agents = [self.switches[s].reconfig for s in component]
        if any(a.active for a in agents):
            return False
        tags = {a.view_tag for a in agents}
        if len(tags) != 1 or None in tags:
            return False
        views = {a.view for a in agents}
        if len(views) != 1:
            return False
        return agents[0].view == self.expected_view_for(component)

    def run_until_converged(self, timeout_us: float = 1_000_000.0) -> float:
        return self.run_until(self.converged, timeout_us=timeout_us)

    def converged_view(self) -> TopologyView:
        if not self.converged():
            raise NetworkError("network has not converged")
        view = next(iter(self.switches.values())).reconfig.view
        assert view is not None
        return view

    def reconfig_root(self) -> NodeId:
        """The root of the winning reconfiguration's spanning tree."""
        if not self.converged():
            raise NetworkError("network has not converged")
        tag = next(iter(self.switches.values())).reconfig.view_tag
        assert tag is not None
        return tag.initiator

    def expected_view(self) -> TopologyView:
        """Ground truth: the working cables (the oracle for tests)."""
        edges = {
            edge for edge, link in self.links.items() if link.working
        }
        return TopologyView(frozenset(edges))

    # ==================================================================
    # circuits
    # ==================================================================
    def setup_circuit(
        self,
        source: NodeRef,
        destination: NodeRef,
        wait: bool = True,
        timeout_us: float = 100_000.0,
    ) -> VirtualCircuit:
        """Open a best-effort circuit; optionally run until established."""
        src, dst = parse_node_id(source), parse_node_id(destination)
        vc = self.vc_allocator.allocate()
        circuit = VirtualCircuit(
            vc=vc,
            source=src,
            destination=dst,
            traffic_class=TrafficClass.BEST_EFFORT,
        )
        self.circuits[vc] = circuit
        self.host(src).open_circuit(vc, dst)
        if wait:
            dst_host = self.host(dst)
            self.run_until(
                lambda: vc in dst_host.incoming_circuits,
                timeout_us=timeout_us,
                check_interval_us=100.0,
            )
            circuit.state = CircuitState.ESTABLISHED
            circuit.established_at = self.sim.now
        return circuit

    def setup_multicast(
        self,
        source: NodeRef,
        destinations,
        wait: bool = True,
        timeout_us: float = 200_000.0,
    ) -> VirtualCircuit:
        """Open a best-effort multicast circuit to a set of hosts.

        A single multicast setup cell branches hop by hop into the
        delivery tree (see :mod:`repro.core.routing.multicast`).
        """
        from repro.core.routing.multicast import MulticastSetupRequest
        from repro.net.cell import Cell, CellKind

        src = parse_node_id(source)
        group = frozenset(parse_node_id(d) for d in destinations)
        if not group:
            raise ValueError("multicast needs at least one destination")
        if src in group:
            raise ValueError("source cannot be in its own group")
        vc = self.vc_allocator.allocate()
        circuit = VirtualCircuit(
            vc=vc,
            source=src,
            destination=min(group),
            group=group,
            traffic_class=TrafficClass.BEST_EFFORT,
        )
        self.circuits[vc] = circuit
        host = self.host(src)
        host.open_circuit(vc, min(group), send_setup=False)
        host.active_port.send(
            Cell(
                vc=1,
                kind=CellKind.SIGNALING,
                payload=MulticastSetupRequest(
                    vc=vc, source=src, destinations=group
                ),
            )
        )
        if wait:
            members = [self.host(d) for d in sorted(group)]
            self.run_until(
                lambda: all(vc in m.incoming_circuits for m in members),
                timeout_us=timeout_us,
                check_interval_us=100.0,
            )
            circuit.state = CircuitState.ESTABLISHED
            circuit.established_at = self.sim.now
        return circuit

    def reserve_bandwidth(
        self,
        source: NodeRef,
        destination: NodeRef,
        cells_per_frame: int,
        central: Optional[BandwidthCentral] = None,
    ) -> Tuple[VirtualCircuit, Reservation]:
        """Admit and install a guaranteed circuit.

        Bandwidth central runs at a switch chosen during reconfiguration;
        its decisions reach the on-path switches as control messages.  We
        model the notification latency as one control delay per hop from
        the central switch (the bookkeeping itself is exact -- see
        DESIGN.md's substitution table).
        """
        src, dst = parse_node_id(source), parse_node_id(destination)
        if central is None:
            central = self.bandwidth_central()
        reservation = central.request(src, dst, cells_per_frame)
        vc = self.vc_allocator.allocate()
        circuit = VirtualCircuit(
            vc=vc,
            source=src,
            destination=dst,
            traffic_class=TrafficClass.GUARANTEED,
            cells_per_frame=cells_per_frame,
        )
        self.circuits[vc] = circuit
        delay = self.switch_config.control_delay_us

        # Install frame-schedule reservations and routing entries at each
        # hop, with increasing notification latency along the path.
        for hop_index, (switch_id, in_port, out_port) in enumerate(
            reservation.switch_hops
        ):
            switch = self.switches[switch_id]
            request = SetupRequest(
                vc=vc,
                source=src,
                destination=dst,
                traffic_class=TrafficClass.GUARANTEED,
            )
            notify_at = delay * (hop_index + 1)
            self.sim.schedule(
                notify_at, switch.add_reservation, in_port, out_port,
                cells_per_frame,
            )
            self.sim.schedule(
                notify_at, switch.install_circuit, vc, in_port, out_port,
                request,
            )
        # The sending host paces at the reserved rate; the receiving host
        # learns of the circuit like any setup.
        self.host(src).open_circuit(
            vc,
            dst,
            traffic_class=TrafficClass.GUARANTEED,
            cells_per_frame=cells_per_frame,
            send_setup=False,
        )
        dst_host = self.host(dst)
        setup = SetupRequest(
            vc=vc, source=src, destination=dst,
            traffic_class=TrafficClass.GUARANTEED,
        )
        self.sim.schedule(
            delay * (len(reservation.switch_hops) + 1),
            dst_host._accept_signaling,
            setup,
        )
        circuit.state = CircuitState.ESTABLISHED
        circuit.established_at = self.sim.now
        return circuit, reservation

    def reserve_bandwidth_distributed(
        self,
        source: NodeRef,
        destination: NodeRef,
        cells_per_frame: int,
        wait: bool = True,
        timeout_us: float = 200_000.0,
    ) -> Tuple[VirtualCircuit, str]:
        """Admit a guaranteed circuit with NO central service.

        A ``ReserveRequest`` walks the path hop by hop; each switch
        admits against its own local ledger (see
        :mod:`repro.core.guaranteed.distributed`).  Returns the circuit
        and the outcome string ("granted" or "rejected: <reason>").
        """
        from repro.core.guaranteed.distributed import ReserveRequest
        from repro.net.cell import Cell, CellKind

        src, dst = parse_node_id(source), parse_node_id(destination)
        vc = self.vc_allocator.allocate()
        circuit = VirtualCircuit(
            vc=vc,
            source=src,
            destination=dst,
            traffic_class=TrafficClass.GUARANTEED,
            cells_per_frame=cells_per_frame,
        )
        self.circuits[vc] = circuit
        host = self.host(src)
        host.open_circuit(
            vc,
            dst,
            traffic_class=TrafficClass.GUARANTEED,
            cells_per_frame=cells_per_frame,
            send_setup=False,
        )
        host.active_port.send(
            Cell(
                vc=1,
                kind=CellKind.SIGNALING,
                payload=ReserveRequest(
                    vc=vc,
                    source=src,
                    destination=dst,
                    cells_per_frame=cells_per_frame,
                ),
            )
        )
        if not wait:
            return circuit, "pending"
        self.run_until(
            lambda: vc in host.reservation_outcomes,
            timeout_us=timeout_us,
            check_interval_us=100.0,
        )
        outcome = host.reservation_outcomes[vc]
        if outcome == "granted":
            circuit.state = CircuitState.ESTABLISHED
            circuit.established_at = self.sim.now
        else:
            circuit.state = CircuitState.TORN_DOWN
            host.close_circuit(vc, send_teardown=False)
        return circuit, outcome

    def bandwidth_central(
        self, heuristic: str = "widest_shortest"
    ) -> BandwidthCentral:
        """Build the admission service over the current converged view.

        "For the first realization of AN2, network central resides at a
        single switch, chosen during reconfiguration" -- the root.  Its
        identity only affects notification latency in this model.
        """
        view = self.converged_view()
        capacities: Dict[Edge, int] = {}
        frame_slots = self.switch_config.frame_slots
        for edge, link in self.links.items():
            capacities[edge] = max(
                1, int(frame_slots * link.bps / FAST_LINK_BPS)
            )
        return BandwidthCentral(
            view,
            frame_slots=frame_slots,
            heuristic=heuristic,
            capacities=capacities,
        )

    # ==================================================================
    # fault injection
    # ==================================================================
    def fail_link(self, a: NodeRef, b: NodeRef) -> Link:
        link = self.link_between(a, b)
        link.fail()
        return link

    def restore_link(self, a: NodeRef, b: NodeRef) -> Link:
        link = self.link_between(a, b)
        link.restore()
        return link

    def crash_switch(self, ref: NodeRef) -> List[Link]:
        """Pull the plug on a switch: every cable to it goes dark."""
        node = parse_node_id(ref)
        failed = []
        for edge, link in self.links.items():
            (na, _), (nb, _) = edge
            if node in (na, nb) and link.working:
                link.fail()
                failed.append(link)
        return failed

    def restore_switch(self, ref: NodeRef) -> List[Link]:
        node = parse_node_id(ref)
        restored = []
        for edge, link in self.links.items():
            (na, _), (nb, _) = edge
            if node in (na, nb) and not link.working:
                link.restore()
                restored.append(link)
        return restored

    # ==================================================================
    def metrics_snapshot(self) -> Dict[str, dict]:
        """Plain-dict state of every registered probe (see
        :class:`~repro.obs.registry.MetricsRegistry`)."""
        return self.registry.snapshot()

    def total_cells_forwarded(self) -> int:
        return sum(s.stats.cells_forwarded for s in self.switches.values())

    def total_cells_dropped(self) -> int:
        """User-visible loss: switch-level drops plus DATA cells lost on
        dead links.  Control cells dying on a dead link (the monitors
        keep pinging it) are telemetry, not service loss."""
        switch_drops = sum(s.stats.cells_dropped for s in self.switches.values())
        link_drops = sum(l.data_cells_dropped for l in self.links.values())
        return switch_drops + link_drops

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<Network {len(self.switches)} switches, {len(self.hosts)} "
            f"hosts, {len(self.links)} links, t={self.sim.now:.1f}us>"
        )
