"""Topology descriptions and generators.

AN1/AN2 switches "can be connected in an arbitrary topology; network
software detects the connection pattern and determines the paths to be
used" (section 1).  Two representations live here:

- :class:`Topology` -- a *declarative* connection pattern (which switches,
  which hosts, which cables) used to instantiate simulated networks and as
  ground truth in tests,
- :class:`TopologyView` -- a *snapshot* of the connection pattern as
  discovered at runtime; this is the value the reconfiguration algorithm
  computes and distributes, and the routing layer consumes.

Generators cover the shapes the experiments need: lines, rings, grids,
random connected graphs with redundancy, and an SRC-style installation in
the spirit of the paper's Figure 1 (dual-homed hosts, richly-connected
switch core).
"""

from __future__ import annotations

import random
import warnings
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro._types import NodeId, NodeRef, host_id, parse_node_id, switch_id
from repro.constants import AN2_SWITCH_PORTS, FAST_LINK_BPS, SLOW_LINK_BPS
from repro.sim.random import derived_stream


class TopologyError(Exception):
    """Invalid topology construction (port exhaustion, self-loop...)."""


#: One end of a cable: (node, port index).
Endpoint = Tuple[NodeId, int]
#: A cable, with endpoints in sorted order for canonical representation.
Edge = Tuple[Endpoint, Endpoint]


def _normalize(a: Endpoint, b: Endpoint) -> Edge:
    return (a, b) if a <= b else (b, a)


@dataclass
class CableSpec:
    """Physical parameters for one cable."""

    endpoints: Edge
    length_km: float = 0.1
    bps: float = FAST_LINK_BPS


class Topology:
    """A mutable description of an installation."""

    def __init__(self) -> None:
        self._switch_ports: Dict[NodeId, int] = {}
        self._hosts: Set[NodeId] = set()
        self._cables: Dict[Edge, CableSpec] = {}
        self._used_ports: Dict[NodeId, Set[int]] = {}
        #: Set by :meth:`random_connected`: how many redundant cables were
        #: requested and how many actually landed (port exhaustion can
        #: leave a shortfall; scale experiments must be able to see it).
        self.extra_edges_requested: int = 0
        self.extra_edges_added: int = 0

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_switch(self, num: int, ports: int = AN2_SWITCH_PORTS) -> NodeId:
        node = switch_id(num)
        if node in self._switch_ports:
            raise TopologyError(f"switch {node} already present")
        self._switch_ports[node] = ports
        self._used_ports[node] = set()
        return node

    def add_host(self, num: int, ports: int = 2) -> NodeId:
        """Hosts default to two ports: an active link and an alternate."""
        node = host_id(num)
        if node in self._hosts:
            raise TopologyError(f"host {node} already present")
        self._hosts.add(node)
        self._switch_ports[node] = ports
        self._used_ports[node] = set()
        return node

    def connect(
        self,
        a: NodeRef,
        b: NodeRef,
        length_km: float = 0.1,
        bps: Optional[float] = None,
        port_a: Optional[int] = None,
        port_b: Optional[int] = None,
    ) -> Edge:
        """Cable ``a`` to ``b``, auto-assigning free ports unless given.

        Host links default to the 155 Mbit/s rate and switch-to-switch
        trunks to 622 Mbit/s, per section 1.
        """
        node_a, node_b = parse_node_id(a), parse_node_id(b)
        if node_a == node_b:
            raise TopologyError(f"self-loop on {node_a}")
        for node in (node_a, node_b):
            if node not in self._switch_ports:
                raise TopologyError(f"unknown node {node}")
        pa = self._claim_port(node_a, port_a)
        pb = self._claim_port(node_b, port_b)
        edge = _normalize((node_a, pa), (node_b, pb))
        if bps is None:
            host_link = node_a.is_host or node_b.is_host
            bps = SLOW_LINK_BPS if host_link else FAST_LINK_BPS
        self._cables[edge] = CableSpec(edge, length_km=length_km, bps=bps)
        return edge

    def _claim_port(self, node: NodeId, port: Optional[int]) -> int:
        used = self._used_ports[node]
        capacity = self._switch_ports[node]
        if port is None:
            for candidate in range(capacity):
                if candidate not in used:
                    port = candidate
                    break
            else:
                raise TopologyError(f"{node} has no free ports")
        if not 0 <= port < capacity:
            raise TopologyError(f"{node} has no port {port}")
        if port in used:
            raise TopologyError(f"{node} port {port} already cabled")
        used.add(port)
        return port

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def switches(self) -> List[NodeId]:
        return sorted(n for n in self._switch_ports if n.is_switch)

    def hosts(self) -> List[NodeId]:
        return sorted(self._hosts)

    def ports_of(self, node: NodeRef) -> int:
        return self._switch_ports[parse_node_id(node)]

    def cables(self) -> List[CableSpec]:
        return [self._cables[e] for e in sorted(self._cables)]

    def switch_edges(self) -> List[Edge]:
        """Cables whose both ends are switches."""
        return [
            e
            for e in sorted(self._cables)
            if e[0][0].is_switch and e[1][0].is_switch
        ]

    def host_attachments(self) -> List[Edge]:
        """Cables with a host on one end."""
        return [
            e
            for e in sorted(self._cables)
            if e[0][0].is_host or e[1][0].is_host
        ]

    def neighbors(self, node: NodeRef) -> List[NodeId]:
        target = parse_node_id(node)
        found: List[NodeId] = []
        for (na, _), (nb, _) in self._cables:
            if na == target:
                found.append(nb)
            elif nb == target:
                found.append(na)
        return sorted(found)

    def is_switch_connected(self) -> bool:
        """True when the switch-to-switch graph is connected."""
        switches = self.switches()
        if len(switches) <= 1:
            return True
        adjacency: Dict[NodeId, Set[NodeId]] = {s: set() for s in switches}
        for (na, _), (nb, _) in self.switch_edges():
            adjacency[na].add(nb)
            adjacency[nb].add(na)
        seen = {switches[0]}
        frontier = [switches[0]]
        while frontier:
            current = frontier.pop()
            for neighbor in adjacency[current]:
                if neighbor not in seen:
                    seen.add(neighbor)
                    frontier.append(neighbor)
        return len(seen) == len(switches)

    def view(self) -> "TopologyView":
        """The ground-truth snapshot (what a perfect discovery would find)."""
        return TopologyView(frozenset(self._cables))

    # ------------------------------------------------------------------
    # generators
    # ------------------------------------------------------------------
    @classmethod
    def line(cls, n_switches: int, length_km: float = 0.1) -> "Topology":
        """Switches in a chain: the reconfiguration worst case."""
        topo = cls()
        for i in range(n_switches):
            topo.add_switch(i)
        for i in range(n_switches - 1):
            topo.connect(switch_id(i), switch_id(i + 1), length_km=length_km)
        return topo

    @classmethod
    def ring(cls, n_switches: int, length_km: float = 0.1) -> "Topology":
        if n_switches < 3:
            # The closing cable would be a duplicate (n=2) or a self-loop
            # (n=1); silently returning a line here used to mask broken
            # experiment setups, so refuse instead.
            raise TopologyError(
                f"ring needs at least 3 switches, got {n_switches} "
                "(use Topology.line for smaller chains)"
            )
        topo = cls.line(n_switches, length_km=length_km)
        topo.connect(switch_id(n_switches - 1), switch_id(0), length_km=length_km)
        return topo

    @classmethod
    def star(cls, n_leaves: int, length_km: float = 0.1) -> "Topology":
        """One hub switch with ``n_leaves`` leaf switches."""
        topo = cls()
        hub = topo.add_switch(0)
        for i in range(1, n_leaves + 1):
            leaf = topo.add_switch(i)
            topo.connect(hub, leaf, length_km=length_km)
        return topo

    @classmethod
    def grid(cls, rows: int, cols: int, length_km: float = 0.1) -> "Topology":
        """A rows x cols mesh of switches (redundant paths everywhere)."""
        topo = cls()
        for r in range(rows):
            for c in range(cols):
                topo.add_switch(r * cols + c)
        for r in range(rows):
            for c in range(cols):
                here = switch_id(r * cols + c)
                if c + 1 < cols:
                    topo.connect(here, switch_id(r * cols + c + 1), length_km=length_km)
                if r + 1 < rows:
                    topo.connect(here, switch_id((r + 1) * cols + c), length_km=length_km)
        return topo

    @classmethod
    def random_connected(
        cls,
        n_switches: int,
        extra_edges: int = 0,
        rng: Optional[random.Random] = None,
        length_km: float = 0.1,
    ) -> "Topology":
        """A random spanning tree plus ``extra_edges`` redundant cables.

        With no explicit ``rng``, a deterministic per-generator substream
        from :func:`repro.sim.random.derived_stream` is used.  (The old
        fallback was a shared ``random.Random(0)``, which correlated the
        default topology with every other component's default draws;
        passing an explicit ``rng`` is unchanged and preferred.)

        When the attempt budget or the port supply runs out before all
        ``extra_edges`` redundant cables land, the shortfall is recorded
        on the returned topology (``extra_edges_requested`` vs
        ``extra_edges_added``) and a :class:`RuntimeWarning` is issued --
        a scale experiment asking for a fat fabric must not silently run
        on a thin one.
        """
        rng = rng if rng is not None else derived_stream("topology.random_connected")
        topo = cls()
        for i in range(n_switches):
            topo.add_switch(i)
        # Random spanning tree: attach each new switch to a random earlier one.
        for i in range(1, n_switches):
            parent = rng.randrange(i)
            topo.connect(switch_id(parent), switch_id(i), length_km=length_km)
        present: Set[FrozenSet[int]] = {
            frozenset((a[0].num, b[0].num)) for a, b in topo.switch_edges()
        }
        attempts = 0
        added = 0
        while added < extra_edges and attempts < extra_edges * 50 + 100:
            attempts += 1
            a, b = rng.sample(range(n_switches), 2)
            key = frozenset((a, b))
            if key in present:
                continue
            try:
                topo.connect(switch_id(a), switch_id(b), length_km=length_km)
            except TopologyError:
                continue  # a node ran out of ports
            present.add(key)
            added += 1
        topo.extra_edges_requested = extra_edges
        topo.extra_edges_added = added
        if added < extra_edges:
            warnings.warn(
                f"random_connected({n_switches}): only {added} of "
                f"{extra_edges} requested redundant cables were added "
                "(port supply or attempt budget exhausted); the fabric is "
                "thinner than requested",
                RuntimeWarning,
                stacklevel=2,
            )
        return topo

    @classmethod
    def src_lan(
        cls,
        n_switches: int = 12,
        n_hosts: int = 24,
        redundancy: int = 2,
        rng: Optional[random.Random] = None,
    ) -> "Topology":
        """An installation in the style of the paper's Figure 1.

        A redundant switch core (random connected graph with extra edges)
        and dual-homed hosts: "Each host has links to two different
        switches.  Only one link is in active use at any time."

        With no explicit ``rng``, a deterministic per-generator substream
        from :func:`repro.sim.random.derived_stream` is used (see
        :meth:`random_connected` for the deprecation rationale).
        """
        rng = rng if rng is not None else derived_stream("topology.src_lan")
        topo = cls.random_connected(
            n_switches, extra_edges=n_switches * (redundancy - 1), rng=rng
        )
        for h in range(n_hosts):
            host = topo.add_host(h)
            primary, alternate = rng.sample(range(n_switches), 2)
            topo.connect(host, switch_id(primary), port_a=0)
            topo.connect(host, switch_id(alternate), port_a=1)
        return topo


@dataclass(frozen=True)
class TopologyView:
    """An immutable snapshot of the connection pattern.

    This is what the reconfiguration algorithm's distribution phase hands
    to every switch: "At the end of this phase, each switch knows the full
    topology."  Equality is structural, so tests can assert that every
    switch converged to the same view and that it matches ground truth.
    """

    edges: FrozenSet[Edge] = field(default_factory=frozenset)

    def switches(self) -> List[NodeId]:
        nodes: Set[NodeId] = set()
        for (na, _), (nb, _) in self.edges:
            nodes.add(na)
            nodes.add(nb)
        return sorted(n for n in nodes if n.is_switch)

    def hosts(self) -> List[NodeId]:
        nodes: Set[NodeId] = set()
        for (na, _), (nb, _) in self.edges:
            nodes.add(na)
            nodes.add(nb)
        return sorted(n for n in nodes if n.is_host)

    def switch_adjacency(self) -> Dict[NodeId, List[Tuple[int, NodeId, int]]]:
        """switch -> sorted [(local port, neighbor switch, neighbor port)]."""
        adjacency: Dict[NodeId, List[Tuple[int, NodeId, int]]] = {}
        for (na, pa), (nb, pb) in self.edges:
            if na.is_switch and nb.is_switch:
                adjacency.setdefault(na, []).append((pa, nb, pb))
                adjacency.setdefault(nb, []).append((pb, na, pa))
        for entries in adjacency.values():
            entries.sort()
        return adjacency

    def host_ports(self) -> Dict[NodeId, List[Tuple[int, NodeId, int]]]:
        """host -> sorted [(host port, switch, switch port)]."""
        attachments: Dict[NodeId, List[Tuple[int, NodeId, int]]] = {}
        for (na, pa), (nb, pb) in self.edges:
            if na.is_host and nb.is_switch:
                attachments.setdefault(na, []).append((pa, nb, pb))
            elif nb.is_host and na.is_switch:
                attachments.setdefault(nb, []).append((pb, na, pa))
        for entries in attachments.values():
            entries.sort()
        return attachments

    def without_edge(self, edge: Edge) -> "TopologyView":
        return TopologyView(self.edges - {edge})

    def with_edge(self, edge: Edge) -> "TopologyView":
        return TopologyView(self.edges | {edge})

    def merge(self, other: "TopologyView") -> "TopologyView":
        return TopologyView(self.edges | other.edges)

    def __len__(self) -> int:
        return len(self.edges)


@dataclass(frozen=True)
class TopologyDelta:
    """The difference between two topology views: cables added/removed.

    This is the unit of *incremental* route recomputation: a
    reconfiguration epoch whose view differs from the previous one by a
    delta can repair the up*/down* orientation instead of rebuilding it
    (see :meth:`repro.core.routing.updown.UpDownOrientation.apply_delta`).
    Edges are canonical (endpoint-sorted), matching
    :class:`TopologyView`'s representation.
    """

    added: FrozenSet[Edge] = field(default_factory=frozenset)
    removed: FrozenSet[Edge] = field(default_factory=frozenset)

    @classmethod
    def between(cls, old: TopologyView, new: TopologyView) -> "TopologyDelta":
        """The delta that turns ``old`` into ``new``."""
        return cls(
            added=new.edges - old.edges, removed=old.edges - new.edges
        )

    @property
    def is_empty(self) -> bool:
        return not self.added and not self.removed

    def __len__(self) -> int:
        return len(self.added) + len(self.removed)

    def switch_endpoints(self) -> Set[NodeId]:
        """Switches incident to any added or removed cable."""
        nodes: Set[NodeId] = set()
        for (na, _), (nb, _) in self.added | self.removed:
            if na.is_switch:
                nodes.add(na)
            if nb.is_switch:
                nodes.add(nb)
        return nodes

    def invert(self) -> "TopologyDelta":
        return TopologyDelta(added=self.removed, removed=self.added)

    def apply_to(self, view: TopologyView) -> TopologyView:
        """``view`` with this delta applied; validates applicability.

        Every removed cable must exist, no added cable may already exist,
        and an added cable may not claim a (node, port) slot another
        surviving cable occupies -- the same physical rules
        :class:`Topology` enforces at construction time.
        """
        missing = self.removed - view.edges
        if missing:
            raise TopologyError(
                f"delta removes {len(missing)} edge(s) not in the view "
                f"(e.g. {sorted(missing)[0]})"
            )
        present = self.added & view.edges
        if present:
            raise TopologyError(
                f"delta adds {len(present)} edge(s) already in the view "
                f"(e.g. {sorted(present)[0]})"
            )
        surviving = (view.edges - self.removed)
        occupied: Set[Endpoint] = set()
        for (a, b) in surviving:
            occupied.add(a)
            occupied.add(b)
        for edge in sorted(self.added):
            for endpoint in edge:
                if endpoint in occupied:
                    raise TopologyError(
                        f"delta edge {edge} reuses occupied port {endpoint}"
                    )
                occupied.add(endpoint)
        return TopologyView(surviving | self.added)


def view_from_edges(edges: Iterable[Edge]) -> TopologyView:
    """Build a view from raw edges, normalizing endpoint order."""
    return TopologyView(frozenset(_normalize(a, b) for a, b in edges))
