"""Switch and host ports: the endpoints of links.

Each AN2 switch has up to 16 ports, "each of which may be connected to a
host or to the port of another switch" (section 1).  A :class:`Port`
belongs to a :class:`~repro.net.node.Node`, may be cabled to a link, and
hands every arriving cell to its node.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro._types import PortIndex
from repro.net.cell import Cell

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.link import Link
    from repro.net.node import Node


class PortError(Exception):
    """Port misuse: double-cabling, sending on an unconnected port, etc."""


class Port:
    """One port of a node."""

    def __init__(self, node: "Node", index: PortIndex) -> None:
        self.node = node
        self.index = index
        self.link: Optional["Link"] = None
        self._direction: Optional[int] = None
        self.cells_sent = 0
        self.cells_received = 0

    # ------------------------------------------------------------------
    @property
    def connected(self) -> bool:
        return self.link is not None

    @property
    def label(self) -> str:
        return f"{self.node.node_id}.p{self.index}"

    def attach(self, link: "Link", direction: int) -> None:
        """Called by :class:`Link` when the cable is plugged in."""
        if self.link is not None:
            raise PortError(f"{self.label} already cabled")
        self.link = link
        self._direction = direction

    def detach(self) -> None:
        """Unplug the cable (used when rebuilding topologies)."""
        self.link = None
        self._direction = None

    def can_transmit_at(self, now: float, slack: float = 1e-9) -> bool:
        """Is the outbound direction of the cable idle (and alive)?

        The switch's crossbar loop uses this as the "output port busy"
        test: a matched output must be able to start serializing its cell
        this slot, otherwise cells would pile up inside the link model
        (which has no queue in the real hardware).
        """
        if self.link is None or self._direction is None:
            return False
        if not self.link.working:
            return False
        return self.link.next_free(self._direction) <= now + slack

    def peer(self) -> Optional["Port"]:
        """The port at the other end of the cable, if any."""
        if self.link is None:
            return None
        return self.link.other_port(self)

    # ------------------------------------------------------------------
    def send(self, cell: Cell, bits: Optional[int] = None) -> None:
        """Transmit a cell out this port.

        Sending on an unconnected port raises; sending on a dead link
        silently loses the cell (that is the physical reality the
        fault-monitoring software must detect).  ``bits`` overrides the
        serialization length for variable-length (AN1 packet) frames.
        """
        if self.link is None or self._direction is None:
            raise PortError(f"{self.label} is not connected")
        self.cells_sent += 1
        self.link.transmit(self._direction, cell, bits=bits)

    def deliver(self, cell: Cell) -> None:
        """Called by the link when a cell arrives here."""
        self.cells_received += 1
        self.node.on_cell(self, cell)

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Port {self.label}{' (cabled)' if self.connected else ''}>"
