"""Segmentation and reassembly (the controller's SAR function).

The AN2 controller "disassembles [packets] into cells to transmit to the
network" and "re-assemble[s] the cells into packets" at the receiver
(section 1).  We follow the AAL5 idea: cells of a packet travel in order on
one virtual circuit, the last cell carries an end-of-packet flag, and the
trailer records the true payload length so padding can be stripped.

Cells of *different* packets never interleave on one VC (AN2 virtual
circuits are FIFO per hop), but the reassembler still checks sequence
numbers so that corruption and loss are detected rather than silently
mis-assembled.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional

from repro._types import VcId
from repro.constants import CELL_PAYLOAD_BYTES
from repro.net.cell import Cell, CellKind, TrafficClass
from repro.net.packet import Packet


class ReassemblyError(Exception):
    """A cell arrived that cannot extend the partial packet on its VC."""


class Segmenter:
    """Splits packets into data cells for one virtual circuit."""

    def __init__(
        self,
        vc: VcId,
        traffic_class: TrafficClass = TrafficClass.BEST_EFFORT,
    ) -> None:
        self.vc = vc
        self.traffic_class = traffic_class

    def cell_count(self, packet: Packet) -> int:
        """How many cells ``packet`` occupies (at least one)."""
        assert packet.size is not None
        return max(1, math.ceil(packet.size / CELL_PAYLOAD_BYTES))

    def segment(self, packet: Packet, now: float = 0.0) -> List[Cell]:
        """Disassemble ``packet`` into its cells.

        The final cell's payload carries ``(chunk, packet)`` so that the
        matching :class:`Reassembler` can recover packet metadata; real
        hardware would carry the AAL5 trailer instead.
        """
        assert packet.size is not None
        count = self.cell_count(packet)
        cells: List[Cell] = []
        for index in range(count):
            start = index * CELL_PAYLOAD_BYTES
            chunk = packet.payload[start : start + CELL_PAYLOAD_BYTES]
            last = index == count - 1
            cells.append(
                Cell(
                    vc=self.vc,
                    kind=CellKind.DATA,
                    traffic_class=self.traffic_class,
                    payload=(chunk, packet if last else None),
                    end_of_packet=last,
                    seq=index,
                    packet_id=packet.uid,
                    created_at=now,
                )
            )
        return cells


class Reassembler:
    """Rebuilds packets from in-order cells, one partial packet per VC."""

    def __init__(self) -> None:
        self._partial: Dict[VcId, List[Cell]] = {}
        self.packets_completed = 0
        self.cells_accepted = 0
        #: stale partials discarded when a *new* packet's first cell
        #: resynchronized the stream (each is one corrupted packet the
        #: caller must account for, even though no error was raised).
        self.packets_aborted = 0

    def pending_cells(self, vc: VcId) -> int:
        """Cells buffered for an incomplete packet on ``vc``."""
        return len(self._partial.get(vc, []))

    def accept(self, cell: Cell) -> Optional[Packet]:
        """Feed one cell; returns the completed packet, if any.

        Raises :class:`ReassemblyError` on sequence gaps (a dropped or
        reordered cell) so callers can count corrupted packets instead of
        delivering garbage.  When the offending cell is the seq-0 head of
        a *different* packet, the stale partial is charged to
        :attr:`packets_aborted` and the cell is re-accepted into a fresh
        buffer instead of raising, so one lost tail cell costs exactly
        one packet.
        """
        if not cell.is_data:
            raise ReassemblyError(f"non-data cell {cell!r} fed to reassembler")
        partial = self._partial.setdefault(cell.vc, [])
        if cell.seq != len(partial):
            expected = len(partial)
            self._partial[cell.vc] = []
            if (
                cell.seq == 0
                and partial
                and cell.packet_id != partial[0].packet_id
            ):
                # The previous packet's tail was lost and this cell opens
                # the *next* packet.  Discard the stale partial (exactly
                # one packet charged, via ``packets_aborted``) and
                # resynchronize on this cell instead of also discarding
                # it -- otherwise its own seq-1 cell would mismatch the
                # emptied buffer and a single lost cell would corrupt two
                # packets.
                self.packets_aborted += 1
                return self.accept(cell)
            raise ReassemblyError(
                f"vc {cell.vc}: expected cell seq {expected}, got {cell.seq}"
            )
        if partial and cell.packet_id != partial[0].packet_id:
            self._partial[cell.vc] = []
            raise ReassemblyError(
                f"vc {cell.vc}: cell of packet {cell.packet_id} interleaved "
                f"with packet {partial[0].packet_id}"
            )
        partial.append(cell)
        self.cells_accepted += 1
        if not cell.end_of_packet:
            return None
        del self._partial[cell.vc]
        chunk, original = cell.payload
        assert original is not None, "end-of-packet cell lost its trailer"
        payload = b"".join(
            c.payload[0] for c in partial[:-1]
        ) + chunk
        rebuilt = Packet(
            source=original.source,
            destination=original.destination,
            payload=payload,
            size=original.size,
            created_at=original.created_at,
            uid=original.uid,
        )
        self.packets_completed += 1
        return rebuilt

    def abort(self, vc: VcId) -> int:
        """Discard any partial packet on ``vc``; returns cells dropped."""
        dropped = len(self._partial.pop(vc, []))
        return dropped
