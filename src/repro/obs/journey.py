"""Causal cell-journey tracing: per-hop records for sampled cells.

A :class:`JourneyContext` rides on a :class:`~repro.net.cell.Cell` (its
``trace_ctx`` field) from host segmentation to reassembly.  Every
instrumented hop -- host transmit, VOQ enqueue, matcher grant, link
arrival, delivery -- calls :meth:`JourneyContext.record`, which bumps a
Lamport-style hop counter and emits a ``journey``-category trace record
carrying ``(cell, packet, vc, hop)`` plus the hop's own payload.  The
hop counter gives a causal order even when several hops share a
simulated timestamp (segmentation and VOQ enqueue are synchronous with
the triggering event), so the critical-path analyzer in
``tools/trace_report.py`` can walk each cell's journey unambiguously.

Propagation rules:

- Contexts are attached only at the *source host*, by
  :func:`attach_journey`, and only when the simulator's tracer has the
  ``journey`` category enabled.  Every 1-in-``journey_every`` packet is
  sampled (``Tracer.journey_every``, default 1: every packet while the
  category is enabled).
- Every downstream instrumentation site guards with a single
  ``cell.trace_ctx is not None`` attribute check; unsampled cells (and
  all cells in untraced runs) pay exactly that check and nothing else.
- Multicast fanout copies a cell with ``dataclasses.replace``, so
  branch copies *share* one context: the journey shows the union of all
  branches' hops, interleaved in time order.

Stages emitted by the built-in instrumentation::

    segment      cell created by AAL segmentation at the source host
    tx           source host put the cell on its access link
    wire.arrive  cell crossed a link (payload: the link's endpoints)
    wire.drop    link dropped it (dead link, drop filter, bit error)
    voq.enqueue  switch accepted it into a VOQ (payload: in/out port)
    grant        crossbar grant let it leave the switch
    deliver      destination host accepted it for reassembly
    packet.done  the whole packet reassembled (last cell only)
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, List

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs.trace import Tracer


class JourneyContext:
    """The trace context one sampled cell carries hop to hop."""

    __slots__ = ("tracer", "cell_uid", "packet_id", "vc", "hops")

    def __init__(
        self, tracer: "Tracer", cell_uid: int, packet_id: int, vc: int
    ) -> None:
        self.tracer = tracer
        self.cell_uid = cell_uid
        self.packet_id = packet_id
        self.vc = int(vc)
        self.hops = 0

    def record(
        self, t: float, component: str, stage: str, **payload: Any
    ) -> None:
        """Emit one per-hop record and advance the hop counter."""
        self.hops += 1
        self.tracer.emit(
            t,
            "journey",
            component,
            stage,
            cell=self.cell_uid,
            packet=self.packet_id,
            vc=self.vc,
            hop=self.hops,
            **payload,
        )


def attach_journey(
    tracer: "Tracer", cells: List[Any], now: float, component: str
) -> bool:
    """Maybe attach journey contexts to one packet's worth of cells.

    Applies the tracer's 1-in-``journey_every`` packet sampling; when the
    packet is sampled, every cell gets its own context and an immediate
    ``segment`` record.  Returns whether the packet was sampled.
    """
    seen = tracer._journey_seen
    tracer._journey_seen = seen + 1
    every = tracer.journey_every
    if every > 1 and seen % every:
        return False
    for cell in cells:
        ctx = JourneyContext(tracer, cell.uid, cell.packet_id, cell.vc)
        cell.trace_ctx = ctx
        ctx.record(
            now, component, "segment",
            seq=cell.seq, eop=cell.end_of_packet,
        )
    return True
