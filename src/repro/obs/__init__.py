"""Observability: tracing, flight recording, profiling, and metrics.

The cooperating pieces:

- :class:`~repro.obs.trace.Tracer` -- timestamped structured events
  (category, component, name, payload) with span support, serialized to
  JSON Lines and rendered by ``tools/trace_report.py``;
- :class:`~repro.obs.journey.JourneyContext` -- causal per-hop records
  for sampled cells, segmentation to reassembly, feeding the
  critical-path analyzer (``trace_report.py --section journey``);
- :class:`~repro.obs.flight.FlightRecorder` -- always-on bounded rings
  of recent protocol events per switch/link/host, dumped to JSONL when
  an invariant fails, an exception escapes the kernel, or a digest
  mismatch is detected;
- :class:`~repro.obs.profiler.SubsystemProfiler` -- deterministic
  kernel-dispatch event counts (plus optional wall time) attributed to
  subsystems;
- :class:`~repro.obs.registry.MetricsRegistry` -- hierarchical
  ownership of the :class:`~repro.sim.monitor.ProbeSet` probes that the
  switch, host, and fabric models feed, snapshot-able to JSON.

A process-wide *capture* ties the two together for the benchmark escape
hatch: ``pytest benchmarks/ --trace-out=DIR`` opens a capture around each
experiment, every :class:`~repro.net.network.Network` (and
:class:`~repro.switch.an1.An1Network`) built inside it attaches the
capture's tracer to its simulator and contributes its registry, and the
trace + metrics snapshot land in ``DIR`` afterwards.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional

from repro.obs.flight import FlightRecorder, next_dump_path
from repro.obs.journey import JourneyContext, attach_journey
from repro.obs.profiler import SubsystemProfiler
from repro.obs.registry import MetricsRegistry
from repro.obs.trace import Span, TraceRecord, Tracer, read_jsonl

__all__ = [
    "Capture",
    "FlightRecorder",
    "JourneyContext",
    "MetricsRegistry",
    "Span",
    "SubsystemProfiler",
    "TraceRecord",
    "Tracer",
    "active_capture",
    "attach_journey",
    "begin_capture",
    "capture",
    "end_capture",
    "next_dump_path",
    "read_jsonl",
]


class Capture:
    """One tracer plus every registry that reported in while it was active."""

    def __init__(self, tracer: Optional[Tracer] = None) -> None:
        self.tracer = tracer if tracer is not None else Tracer()
        self.registries: List[MetricsRegistry] = []

    def adopt(self, registry: MetricsRegistry) -> None:
        if registry not in self.registries:
            self.registries.append(registry)

    def snapshot(self) -> Dict[str, Any]:
        """Merged metrics snapshot.  With several registries (several
        networks in one experiment) node paths are prefixed ``netK.`` to
        keep them distinct."""
        if len(self.registries) == 1:
            return self.registries[0].snapshot()
        merged: Dict[str, Any] = {}
        for index, registry in enumerate(self.registries):
            for path, node in registry.snapshot().items():
                merged[f"net{index}.{path}"] = node
        return merged


_stack: List[Capture] = []


def active_capture() -> Optional[Capture]:
    """The capture networks should report to, or ``None``."""
    return _stack[-1] if _stack else None


def begin_capture(tracer: Optional[Tracer] = None) -> Capture:
    """Open a process-wide capture.

    Captures nest as a stack: a new capture shadows the enclosing one
    until its matching :func:`end_capture` (networks built meanwhile
    report only to the innermost capture).  This lets an explicit
    ``obs.capture()`` in a test coexist with the ambient capture that
    ``pytest --trace-out=DIR`` opens around every test.
    """
    cap = Capture(tracer)
    _stack.append(cap)
    return cap


def end_capture() -> Optional[Capture]:
    """Close the innermost capture and return it (``None`` if none open)."""
    return _stack.pop() if _stack else None


@contextmanager
def capture(tracer: Optional[Tracer] = None) -> Iterator[Capture]:
    cap = begin_capture(tracer)
    try:
        yield cap
    finally:
        end_capture()
