"""Always-on flight recorder: bounded rings of recent protocol events.

A :class:`FlightRecorder` keeps one ``deque(maxlen=capacity)`` ring per
component (per switch, per link, per host, the fault injector, the
kernel) holding the most recent *protocol-level* events: epoch
transitions, skeptic verdicts, credit stall episodes, resync rounds and
recoveries, link state changes, reassembly errors, injected faults.
Unlike the :class:`~repro.obs.trace.Tracer` it is wired into every
:class:`~repro.net.network.Network` unconditionally -- which is only
tenable because it records *transitions*, never per-cell traffic:

- steady-state cost is near zero (a healthy converged network emits no
  protocol transitions, so the hot cell path never touches it);
- memory is bounded at ``capacity`` records per component, oldest
  evicted first -- a black box, not a log;
- the kernel never consults it per event: it lives on a plain
  ``Simulator.recorder`` attribute (not the tracer slot, which would
  swap in the instrumented event loop), and is only read when a run
  dies or a dump is requested.

Dumps are JSON Lines in the same ``{t, cat, comp, name, data}`` shape
as tracer output (category ``flight``), prefixed with one
``flight.meta`` record carrying the dump reason, so
``tools/trace_report.py --section flight`` renders them directly.

Dump triggers wired up elsewhere:

- a :mod:`repro.faults` invariant fails
  (:class:`~repro.faults.runner.ScenarioRunner` with a ``flight_dir``);
- an exception escapes the kernel's run loop (``Simulator.run`` calls
  :meth:`on_kernel_exception`; set :attr:`auto_dump_dir` or the
  ``REPRO_FLIGHT_DIR`` environment variable to get a file);
- the conformance gate sees a digest mismatch
  (``tools/run_conformance.py``).
"""

from __future__ import annotations

import itertools
import json
import os
from collections import deque
from pathlib import Path
from typing import Any, Deque, Dict, List, Optional, Tuple, Union

from repro.obs.trace import _jsonable

#: process-wide dump sequence numbers, so several dumps in one run (or
#: one test session) never collide on a filename.
_dump_ids = itertools.count(1)

PathLike = Union[str, "os.PathLike[str]"]


class FlightRecorder:
    """Bounded per-component rings of recent protocol events."""

    def __init__(self, capacity: int = 256) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._rings: Dict[str, Deque[Tuple[float, str, Dict[str, Any]]]] = {}
        #: total records ever recorded (including ones since evicted).
        self.records_total = 0
        #: when set, :meth:`on_kernel_exception` dumps here; otherwise it
        #: falls back to the ``REPRO_FLIGHT_DIR`` environment variable.
        self.auto_dump_dir: Optional[str] = None

    # ------------------------------------------------------------------
    def record(
        self, t: float, component: str, name: str, **fields: Any
    ) -> None:
        """Append one event to ``component``'s ring (evicting the oldest)."""
        ring = self._rings.get(component)
        if ring is None:
            ring = self._rings[component] = deque(maxlen=self.capacity)
        ring.append((t, name, fields))
        self.records_total += 1

    def components(self) -> List[str]:
        return sorted(self._rings)

    def __len__(self) -> int:
        return sum(len(ring) for ring in self._rings.values())

    # ------------------------------------------------------------------
    def snapshot(self) -> List[Dict[str, Any]]:
        """Every retained record as a plain dict, in time order.

        Ties on ``t`` keep per-component append order (rings are FIFO),
        then sort by component name for a stable, replayable output.
        """
        rows = [
            {
                "t": t,
                "cat": "flight",
                "comp": component,
                "name": name,
                "data": {k: _jsonable(v) for k, v in fields.items()},
            }
            for component, ring in sorted(self._rings.items())
            for t, name, fields in ring
        ]
        rows.sort(key=lambda row: (row["t"], row["comp"]))
        return rows

    def dump(self, path: PathLike, reason: str = "") -> Path:
        """Write the rings as JSON Lines; returns the resolved path.

        The first line is a ``flight.meta`` record carrying the dump
        reason and totals; the rest are the retained events in time
        order, in the tracer's record shape (category ``flight``).
        """
        rows = self.snapshot()
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        with open(target, "w", encoding="utf-8") as stream:
            meta = {
                "t": rows[-1]["t"] if rows else 0.0,
                "cat": "flight.meta",
                "comp": "recorder",
                "name": "dump",
                "data": {
                    "reason": reason,
                    "retained": len(rows),
                    "recorded_total": self.records_total,
                    "capacity": self.capacity,
                    "components": len(self._rings),
                },
            }
            stream.write(json.dumps(meta, sort_keys=True) + "\n")
            for row in rows:
                stream.write(json.dumps(row, sort_keys=True) + "\n")
        return target

    # ------------------------------------------------------------------
    def on_kernel_exception(self, sim: Any, exc: BaseException) -> Optional[Path]:
        """Record an exception that escaped the kernel; maybe auto-dump.

        Called by ``Simulator.run`` on the way out of a dying run loop.
        Always folds the exception into the ``kernel`` ring (so a later
        explicit dump shows it); writes a file only when
        :attr:`auto_dump_dir` or ``REPRO_FLIGHT_DIR`` names a directory.
        """
        self.record(
            sim.now,
            "kernel",
            "exception",
            type=type(exc).__name__,
            message=str(exc),
            events_executed=sim.events_executed,
        )
        directory = self.auto_dump_dir or os.environ.get("REPRO_FLIGHT_DIR")
        if not directory:
            return None
        path = Path(directory) / f"flight-kernel-exception-{next(_dump_ids)}.jsonl"
        try:
            return self.dump(
                path, reason=f"kernel exception: {type(exc).__name__}: {exc}"
            )
        except OSError:  # pragma: no cover - dump dir unwritable
            return None


def next_dump_path(directory: PathLike, label: str) -> Path:
    """A collision-free dump filename under ``directory``."""
    return Path(directory) / f"flight-{label}-{next(_dump_ids)}.jsonl"
