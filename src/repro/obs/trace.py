"""Structured event tracing for the simulator and its protocols.

A :class:`Tracer` accumulates timestamped :class:`TraceRecord`\\ s --
(time, category, component, name, payload) tuples -- and serializes them
to JSON Lines for post-hoc analysis by ``tools/trace_report.py``.

Design constraints, in order of importance:

1. **Disabled means free.**  Nothing in this module is on any hot path;
   instrumentation sites guard every emission with a single
   ``sim.tracer is not None`` (or local ``tracer is not None``) check, and
   the kernel swaps in traced step/run implementations only while a
   tracer is attached, so the untraced event loop never references
   tracing at all.
2. **Explicit time.**  Records carry the timestamp the *caller* supplies
   (simulated microseconds for event-driven models, the slot index for
   the slot-synchronous fabrics).  The tracer itself is clockless, so one
   tracer can serve several simulators without ambiguity.
3. **Plain data out.**  Payload values that are not JSON-native are
   stringified on export, so protocol code can attach ``NodeId``\\ s,
   ``EpochTag``\\ s, and enums without ceremony.

Categories used by the built-in instrumentation:

- ``kernel``       event executions (traced :class:`~repro.sim.kernel.Simulator`)
- ``reconfig``     epoch lifecycle, skeptic verdicts, port-monitor timeouts
- ``flowcontrol``  credit grants, stall/unstall transitions, resync rounds
- ``fabric``       per-slot match rounds and VOQ active/idle transitions
- ``journey``      per-hop causal records for sampled cells
  (:mod:`repro.obs.journey`; sampling via :attr:`Tracer.journey_every`)
"""

from __future__ import annotations

import json
import os
from typing import (
    Any,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Set,
    TextIO,
    Union,
)


class TraceRecord:
    """One structured trace event."""

    __slots__ = ("time", "category", "component", "name", "payload")

    def __init__(
        self,
        time: float,
        category: str,
        component: str,
        name: str,
        payload: Dict[str, Any],
    ) -> None:
        self.time = time
        self.category = category
        self.component = component
        self.name = name
        self.payload = payload

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-serializable dict (payload values coerced if needed)."""
        return {
            "t": self.time,
            "cat": self.category,
            "comp": self.component,
            "name": self.name,
            "data": {k: _jsonable(v) for k, v in self.payload.items()},
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<TraceRecord t={self.time:.3f} {self.category}/"
            f"{self.component} {self.name} {self.payload}>"
        )


def _jsonable(value: Any) -> Any:
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    return str(value)


class Span:
    """An open interval; :meth:`end` emits the closing record.

    Created through :meth:`Tracer.span`, which emits ``<name>.begin``
    immediately; ``end`` emits ``<name>.end`` carrying ``duration``.
    Ending twice is a no-op, so abort paths can close defensively.
    """

    __slots__ = ("_tracer", "started_at", "category", "component", "name", "_open")

    def __init__(
        self, tracer: "Tracer", started_at: float, category: str,
        component: str, name: str,
    ) -> None:
        self._tracer = tracer
        self.started_at = started_at
        self.category = category
        self.component = component
        self.name = name
        self._open = True

    def end(self, t: float, **payload: Any) -> None:
        if not self._open:
            return
        self._open = False
        self._tracer.emit(
            t,
            self.category,
            self.component,
            f"{self.name}.end",
            duration=t - self.started_at,
            **payload,
        )


class Tracer:
    """An in-memory trace buffer with category filtering.

    Args:
        categories: if given, only these categories are recorded (cheap
            way to keep e.g. ``kernel`` event firehoses out of a
            protocol-level trace).
        max_records: optional bound; once reached, further emissions are
            counted in :attr:`dropped` instead of stored.
        journey_every: cell-journey packet sampling rate -- hosts attach
            a :class:`~repro.obs.journey.JourneyContext` to every
            1-in-``journey_every`` packet (default 1: every packet while
            the ``journey`` category is enabled).
    """

    def __init__(
        self,
        categories: Optional[Iterable[str]] = None,
        max_records: Optional[int] = None,
        journey_every: int = 1,
    ) -> None:
        self.records: List[TraceRecord] = []
        self.categories: Optional[Set[str]] = (
            set(categories) if categories is not None else None
        )
        self.max_records = max_records
        self.dropped = 0
        if journey_every < 1:
            raise ValueError(f"journey_every must be >= 1, got {journey_every}")
        self.journey_every = journey_every
        #: packets considered for journey sampling so far (all hosts).
        self._journey_seen = 0

    # ------------------------------------------------------------------
    def enabled(self, category: str) -> bool:
        return self.categories is None or category in self.categories

    def emit(
        self, t: float, category: str, component: str, name: str,
        **payload: Any,
    ) -> None:
        """Record one event at time ``t``."""
        if self.categories is not None and category not in self.categories:
            return
        if self.max_records is not None and len(self.records) >= self.max_records:
            self.dropped += 1
            return
        self.records.append(TraceRecord(t, category, component, name, payload))

    def span(
        self, t: float, category: str, component: str, name: str,
        **payload: Any,
    ) -> Span:
        """Open a span: emits ``<name>.begin`` now, returns the handle."""
        self.emit(t, category, component, f"{name}.begin", **payload)
        return Span(self, t, category, component, name)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.records)

    def filter(
        self,
        category: Optional[str] = None,
        component: Optional[str] = None,
        name: Optional[str] = None,
    ) -> List[TraceRecord]:
        """Records matching every given field exactly."""
        return [
            r
            for r in self.records
            if (category is None or r.category == category)
            and (component is None or r.component == component)
            and (name is None or r.name == name)
        ]

    def clear(self) -> None:
        self.records.clear()
        self.dropped = 0

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------
    def dump_jsonl(self, stream: TextIO) -> int:
        """Write one JSON object per line; returns the record count."""
        for record in self.records:
            stream.write(json.dumps(record.to_dict(), sort_keys=True))
            stream.write("\n")
        return len(self.records)

    def write_jsonl(self, path: Union[str, "os.PathLike[str]"]) -> int:
        with open(path, "w", encoding="utf-8") as stream:
            return self.dump_jsonl(stream)


def read_jsonl(path: Union[str, "os.PathLike[str]"]) -> List[Dict[str, Any]]:
    """Load a trace written by :meth:`Tracer.write_jsonl` as plain dicts."""
    records: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as stream:
        for line in stream:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


PathLike = Union[str, "os.PathLike[str]"]
