"""A hierarchical registry of measurement probes.

Components used to hand-roll their own ``Tally``/``Counter`` instances,
which left every experiment to rediscover where the numbers lived.  The
:class:`MetricsRegistry` owns one
:class:`~repro.sim.monitor.ProbeSet` per *component node* -- a
dot-separated path such as ``switch.3.crossbar`` or ``host.h0`` -- and
every probe inside a node is addressed as ``<node path>.<probe name>``
(``switch.3.crossbar.iterations_to_maximal``).

The registry is pull-based: components register probes (or gauges over
their existing plain-int counters) at construction time and mutate them
on their hot paths exactly as before; :meth:`snapshot` walks the tree
only when an experiment asks for it, so registration costs nothing per
cell.
"""

from __future__ import annotations

import json
import os
from typing import Callable, Dict, Optional, Union

from repro.sim.monitor import ProbeSet, Tally


def _validate_path(path: str) -> str:
    if not path or any(not segment for segment in path.split(".")):
        raise ValueError(f"invalid registry path {path!r}")
    return path


class MetricsRegistry:
    """Hierarchical, snapshot-able probe ownership."""

    def __init__(self) -> None:
        self._nodes: Dict[str, ProbeSet] = {}

    # ------------------------------------------------------------------
    # structure
    # ------------------------------------------------------------------
    def node(self, path: str) -> ProbeSet:
        """The :class:`ProbeSet` at ``path``, created on first use."""
        probes = self._nodes.get(path)
        if probes is None:
            probes = self._nodes[_validate_path(path)] = ProbeSet()
        return probes

    def nodes(self) -> Dict[str, ProbeSet]:
        """A copy of the node map (path -> probe set)."""
        return dict(self._nodes)

    def __contains__(self, path: str) -> bool:
        return path in self._nodes

    def __len__(self) -> int:
        return len(self._nodes)

    # ------------------------------------------------------------------
    # probe addressing: "<node path>.<probe name>"
    # ------------------------------------------------------------------
    def _split(self, path: str) -> tuple:
        _validate_path(path)
        node_path, _, name = path.rpartition(".")
        if not node_path:
            raise ValueError(
                f"probe path {path!r} needs at least 'node.probe'"
            )
        return node_path, name

    def counter(self, path: str):
        node_path, name = self._split(path)
        return self.node(node_path).counter(name)

    def tally(self, path: str, max_samples: Optional[int] = None) -> Tally:
        node_path, name = self._split(path)
        return self.node(node_path).tally(name, max_samples=max_samples)

    def time_series(self, path: str):
        node_path, name = self._split(path)
        return self.node(node_path).time_series(name)

    def gauge(self, path: str, fn: Callable[[], float]):
        node_path, name = self._split(path)
        return self.node(node_path).gauge(name, fn)

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, dict]:
        """Plain-dict state of every node, keyed by node path."""
        return {
            path: probes.snapshot()
            for path, probes in sorted(self._nodes.items())
        }

    def write_json(self, path: Union[str, "os.PathLike[str]"]) -> None:
        with open(path, "w", encoding="utf-8") as stream:
            json.dump(self.snapshot(), stream, indent=2, sort_keys=True)
            stream.write("\n")

    def reset(self) -> None:
        """Zero every probe in every node (gauges are left alone: they
        read live component state)."""
        for probes in self._nodes.values():
            probes.reset()
