"""Deterministic subsystem profiler for the event kernel.

Attach a :class:`SubsystemProfiler` to ``Simulator.profiler`` and the
kernel (which swaps in its instrumented loop, exactly as for the tracer)
routes every dispatched event through :meth:`dispatch`, which classifies
the callback into a *subsystem* -- matcher, routing, flowcontrol, links,
aal, reconfig, monitor, traffic, fastpath (the whole-fabric slot
driver's coalesced wave ticks) -- and counts it.  Event counts are a
pure function of the dispatch order, so for a fixed seed they are as
deterministic as the run digest: two runs of the same scenario produce
identical count tables, which makes profiles diffable across commits.

With ``wall_time=True`` each event's callback is also wrapped in a
``perf_counter`` pair, attributing real elapsed time to subsystems.
Wall times are *not* deterministic (they measure this machine, now) and
are reported separately from the counts; leave the flag off when only
the reproducible shape of the workload matters.

Classification is by callback identity: the bound method's underlying
function (``__func__``) is looked up once and cached, so steady-state
dispatch cost is one dict hit.  Qualname rules distinguish subsystems
that share a module (the switch's ``_slot_tick`` is matcher work, its
``_resync_tick`` is flow control); module-prefix rules catch the rest.
"""

from __future__ import annotations

from time import perf_counter
from typing import Any, Callable, Dict, List, Tuple

#: (qualname prefix, subsystem) -- checked first, in order.
QUALNAME_RULES: Tuple[Tuple[str, str], ...] = (
    ("FabricSlotDriver._fire", "fastpath"),
    ("AN2Switch._slot_tick", "matcher"),
    ("AN2Switch._resync_tick", "flowcontrol"),
    ("AN2Switch._handle_signaling", "routing"),
    ("AN2Switch._reroute_port", "routing"),
    ("AN2Switch._repair_broken_circuits", "routing"),
    ("AN2Switch._handle_reconfig", "reconfig"),
    ("AN2Switch._boot_trigger", "reconfig"),
    ("AN2Switch._reply_ping", "monitor"),
    ("Host._reply_ping", "monitor"),
)

#: (module prefix, subsystem) -- fallback when no qualname rule matches.
MODULE_RULES: Tuple[Tuple[str, str], ...] = (
    ("repro.core.reconfig.monitor", "monitor"),
    ("repro.core.reconfig", "reconfig"),
    ("repro.core.routing", "routing"),
    ("repro.core.signaling", "routing"),
    ("repro.core.flowcontrol", "flowcontrol"),
    ("repro.core.matching", "matcher"),
    ("repro.fastpath", "fastpath"),
    ("repro.net.link", "links"),
    ("repro.net.host", "aal"),
    ("repro.net.aal", "aal"),
    ("repro.traffic", "traffic"),
    ("repro.switch", "switch"),
)


def classify_callback(func: Callable[..., Any]) -> str:
    """Subsystem label for one callback's underlying function."""
    qualname = getattr(func, "__qualname__", "") or ""
    for prefix, subsystem in QUALNAME_RULES:
        if qualname.startswith(prefix):
            return subsystem
    module = getattr(func, "__module__", "") or ""
    for prefix, subsystem in MODULE_RULES:
        if module.startswith(prefix):
            return subsystem
    return "other"


class SubsystemProfiler:
    """Deterministic event counts (and optional wall time) per subsystem."""

    def __init__(self, wall_time: bool = False) -> None:
        self.wall_time = wall_time
        self.events: Dict[str, int] = {}
        self.wall_seconds: Dict[str, float] = {}
        self._cache: Dict[Any, str] = {}

    # ------------------------------------------------------------------
    def classify(self, callback: Callable[..., Any]) -> str:
        func = getattr(callback, "__func__", callback)
        try:
            subsystem = self._cache.get(func)
        except TypeError:  # unhashable callable; classify every time
            return classify_callback(func)
        if subsystem is None:
            subsystem = self._cache[func] = classify_callback(func)
        return subsystem

    def dispatch(self, callback: Callable[..., Any], args: tuple) -> None:
        """Count (and optionally time) one event dispatch, then run it."""
        subsystem = self.classify(callback)
        self.events[subsystem] = self.events.get(subsystem, 0) + 1
        if self.wall_time:
            started = perf_counter()
            try:
                callback(*args)
            finally:
                self.wall_seconds[subsystem] = (
                    self.wall_seconds.get(subsystem, 0.0)
                    + (perf_counter() - started)
                )
        else:
            callback(*args)

    # ------------------------------------------------------------------
    @property
    def total_events(self) -> int:
        return sum(self.events.values())

    def clear(self) -> None:
        self.events.clear()
        self.wall_seconds.clear()

    def rows(self) -> List[Tuple[str, int, float]]:
        """(subsystem, events, wall seconds), most events first."""
        return sorted(
            (
                (name, count, self.wall_seconds.get(name, 0.0))
                for name, count in self.events.items()
            ),
            key=lambda row: (-row[1], row[0]),
        )

    def report(self) -> str:
        """A rendered table of the profile so far."""
        total = self.total_events
        total_wall = sum(self.wall_seconds.values())
        lines = ["subsystem    | events     | share  | wall s  | wall share"]
        lines.append("-" * len(lines[0]))
        for name, count, wall in self.rows():
            share = count / total if total else 0.0
            wall_share = wall / total_wall if total_wall else 0.0
            lines.append(
                f"{name:<12} | {count:>10} | {share:>5.1%} |"
                f" {wall:>7.3f} | {wall_share:>5.1%}"
            )
        lines.append(
            f"{'total':<12} | {total:>10} | {'':>6} | {total_wall:>7.3f} |"
        )
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<SubsystemProfiler events={self.total_events} "
            f"subsystems={len(self.events)}>"
        )
