"""Optional numpy backend for the whole-fabric slot engine.

The runtime package keeps ``dependencies = []``: numpy is a ``dev``
extra, never a requirement.  This module is the single place that
decides whether the vectorized backend exists:

- ``load_numpy()`` returns the numpy module, or ``None`` when numpy is
  not importable **or** when ``REPRO_FASTPATH_FORCE_PYTHON`` is set to a
  non-empty value other than ``0`` (the no-numpy CI job sets it, and the
  fallback tests force it per-test).
- ``Tables`` packages the precomputed 16-bit lookup arrays the
  vectorized match rounds index into.  They are built once per process,
  lazily, from the same ``_BITS16`` dynamic program the scalar bitmask
  kernels use (:mod:`repro.core.matching.bitmask`), so a table bug
  cannot diverge between the scalar and vectorized paths.

Tables (all indexed by a 16-bit mask):

- ``pop[m]``   -- popcount of ``m`` (the contender count ``k``).
- ``select[m, j]`` -- the ``j``-th set bit of ``m`` in ascending order
  (the draw ``blist[j]``); undefined columns (``j >= pop[m]``) hold 0
  and are never selected.
- ``rotate[m, p]`` -- first set bit of ``m`` at or after position ``p``,
  wrapping (``BitmaskIslip._rotate_pick``); 0 for ``m == 0``.
- ``pow2``     -- ``pow2[i] == 1 << i`` as an int32 vector, used to pack
  boolean (S, N, N) request cubes into stacked row/column masks with a
  single ``einsum``.
"""

from __future__ import annotations

import os
from typing import Optional

FORCE_PYTHON_ENV = "REPRO_FASTPATH_FORCE_PYTHON"


def python_forced() -> bool:
    """True when the environment pins the pure-Python fallback."""
    value = os.environ.get(FORCE_PYTHON_ENV, "")
    return value not in ("", "0")


def load_numpy():
    """The numpy module, or ``None`` (absent or forced off)."""
    if python_forced():
        return None
    try:
        import numpy
    except ImportError:
        return None
    return numpy


class Tables:
    """Precomputed 16-bit mask tables for the vectorized match rounds."""

    _instance: Optional["Tables"] = None

    def __init__(self, np) -> None:
        self.np = np
        bits = (
            (np.arange(65536, dtype=np.uint32)[:, None]
             >> np.arange(16, dtype=np.uint32)) & 1
        ).astype(bool)  # bits[m, i] == bit i of m
        self.pop = bits.sum(axis=1).astype(np.int64)
        # Stable argsort of ~bits puts the set-bit positions first, in
        # ascending order: exactly the _BITS16 tuple as an array row.
        self.select = np.argsort(~bits, axis=1, kind="stable").astype(np.int8)
        # rotate[m, p]: first set bit >= p, wrapping (iSLIP pointer pick).
        lowest = self.select[:, 0].astype(np.int64)  # lowest set bit (0 for m=0)
        masks = np.arange(65536, dtype=np.int64)
        rotate = np.empty((65536, 16), dtype=np.int8)
        for pointer in range(16):
            upper = masks >> pointer
            rotate[:, pointer] = np.where(
                upper != 0, pointer + lowest[upper], lowest
            ).astype(np.int8)
        self.rotate = rotate
        self.pow2 = (np.int64(1) << np.arange(16, dtype=np.int64)).astype(
            np.int64
        )
        # float64 copy for weighted-bincount mask packing: each packed
        # bit is a distinct power of two < 2**16, so float addition is
        # exact and "sum of distinct bits" equals "bitwise or".
        self.pow2f = self.pow2.astype(np.float64)
        self.arange16 = np.arange(16, dtype=np.int64)

    @classmethod
    def get(cls, np) -> "Tables":
        instance = cls._instance
        if instance is None or instance.np is not np:
            instance = cls._instance = cls(np)
        return instance
